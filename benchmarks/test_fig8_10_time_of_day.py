"""Figures 8-10: forecast accuracy by time of day (EMD, KL, JS).

The paper aggregates h=1, s=6 test accuracy of FC, BF, AF into 3-hour
blocks and plots it against the share of data per block.  Shape checks:

* AF is the best of the three methods on the day-time blocks where the
  bulk of the data lives;
* accuracy correlates with data volume — blocks with more data are
  forecast at least as well as the starved night blocks (the paper's
  [03:00, 06:00) NYC spike);
* for CD the 00:00-06:00 blocks carry (almost) no data at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import time_of_day_analysis

from conftest import SMOKE, run_once

DEEP = ("fc", "bf", "af")


@pytest.mark.parametrize("metric", ["emd", "kl", "js"])
@pytest.mark.parametrize("city_name", ["nyc", "cd"])
def test_fig8_10_time_of_day(benchmark, metric, city_name, nyc_s6, cd_s6):
    data, comparison = nyc_s6 if city_name == "nyc" else cd_s6

    out = run_once(benchmark,
                   lambda: time_of_day_analysis(data, comparison,
                                                metric=metric))

    print(f"\nFig 8-10 — {city_name.upper()}, {metric.upper()} per "
          "3-hour block (block 0 = 00:00-03:00):")
    shares = out["af"]["share"]
    header = "  block:  " + " ".join(f"{b:>7d}" for b in range(8))
    print(header)
    print("  share:  " + " ".join(f"{s:>7.2%}" for s in shares))
    for name in DEEP:
        if name not in out:
            continue
        row = " ".join("    n/a" if np.isnan(v) else f"{v:7.3f}"
                       for v in out[name]["value"])
        print(f"  {name:4s}:   {row}")

    assert out["af"]["share"].sum() == pytest.approx(1.0)

    # AF best on the data-rich blocks.
    busy = np.argsort(shares)[-3:]
    for block in busy:
        af = out["af"]["value"][block]
        fc = out["fc"]["value"][block]
        if np.isnan(af) or np.isnan(fc):
            continue
        assert af <= fc * 1.1, (
            f"AF worse than FC on busy block {block}: {af} vs {fc}")


def test_fig8_cd_night_gap(benchmark, cd_s6):
    """CD has no data between 00:00 and 06:00 (its figures start at 6)."""
    data, comparison = cd_s6

    out = run_once(benchmark,
                   lambda: time_of_day_analysis(data, comparison,
                                                metric="emd"))
    night_share = out["af"]["share"][:2].sum()
    print(f"\nCD data share in [00:00, 06:00): {night_share:.3%}")
    if not SMOKE:
        assert night_share < 0.01
