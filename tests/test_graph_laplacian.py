"""Tests for Laplacians and the Chebyshev basis."""

import numpy as np
import pytest

from repro.graph import (build_proximity, chebyshev_basis, laplacian,
                         max_eigenvalue, normalized_laplacian,
                         scaled_laplacian)


@pytest.fixture
def weights(rng):
    pts = rng.uniform(0, 4, size=(10, 2))
    return build_proximity(pts)


class TestLaplacian:
    def test_rows_sum_to_zero(self, weights):
        lap = laplacian(weights)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_positive_semidefinite(self, weights):
        eigenvalues = np.linalg.eigvalsh(laplacian(weights))
        assert eigenvalues.min() > -1e-10

    def test_constant_vector_in_nullspace(self, weights):
        lap = laplacian(weights)
        assert np.allclose(lap @ np.ones(len(lap)), 0.0)

    def test_quadratic_form_is_edge_sum(self, weights, rng):
        x = rng.normal(size=len(weights))
        lap = laplacian(weights)
        direct = 0.5 * sum(
            weights[i, j] * (x[i] - x[j]) ** 2
            for i in range(len(x)) for j in range(len(x)))
        assert x @ lap @ x == pytest.approx(direct)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            laplacian(np.array([[0.0, 1.0], [0.5, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            laplacian(np.zeros((2, 3)))


class TestNormalizedLaplacian:
    def test_spectrum_bounded_by_two(self, weights):
        eigenvalues = np.linalg.eigvalsh(normalized_laplacian(weights))
        assert eigenvalues.max() <= 2.0 + 1e-9
        assert eigenvalues.min() >= -1e-9

    def test_isolated_node_identity_row(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        lap = normalized_laplacian(w)
        assert lap[2, 2] == pytest.approx(1.0)
        assert np.allclose(lap[2, :2], 0.0)


class TestScaledLaplacian:
    def test_spectrum_in_unit_interval(self, weights):
        scaled = scaled_laplacian(weights)
        eigenvalues = np.linalg.eigvalsh(scaled)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_max_eigenvalue_matches(self, weights):
        lam = max_eigenvalue(laplacian(weights))
        scaled = scaled_laplacian(weights, lambda_max=lam)
        assert np.linalg.eigvalsh(scaled).max() == pytest.approx(1.0)

    def test_edgeless_graph_degenerates_gracefully(self):
        scaled = scaled_laplacian(np.zeros((4, 4)))
        assert np.allclose(scaled, -np.eye(4))


class TestChebyshevBasis:
    def test_shapes_and_first_terms(self, weights, rng):
        scaled = scaled_laplacian(weights)
        x = rng.normal(size=(len(weights), 3))
        basis = chebyshev_basis(scaled, x, order=4)
        assert basis.shape == (4, len(weights), 3)
        assert np.allclose(basis[0], x)
        assert np.allclose(basis[1], scaled @ x)

    def test_recursion(self, weights, rng):
        scaled = scaled_laplacian(weights)
        x = rng.normal(size=len(weights))
        basis = chebyshev_basis(scaled, x, order=5)
        for s in range(2, 5):
            expected = 2 * scaled @ basis[s - 1] - basis[s - 2]
            assert np.allclose(basis[s], expected)

    def test_order_one(self, weights, rng):
        x = rng.normal(size=len(weights))
        basis = chebyshev_basis(scaled_laplacian(weights), x, order=1)
        assert basis.shape == (1, len(weights))

    def test_invalid_order(self, weights):
        with pytest.raises(ValueError):
            chebyshev_basis(scaled_laplacian(weights),
                            np.zeros(len(weights)), order=0)
