"""Tests for differentiable functional ops."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, ops


class TestElementwise:
    def test_exp_log_sqrt_values(self):
        x = Tensor([1.0, 4.0])
        assert np.allclose(ops.exp(x).data, np.exp([1, 4]))
        assert np.allclose(ops.log(x).data, np.log([1, 4]))
        assert np.allclose(ops.sqrt(x).data, [1, 2])

    def test_exp_log_sqrt_grads(self, rng):
        x = Tensor(np.abs(rng.normal(size=(3, 2))) + 0.5,
                   requires_grad=True)
        check_gradients(lambda x: ops.exp(x).sum(), [x])
        check_gradients(lambda x: ops.log(x).sum(), [x])
        check_gradients(lambda x: ops.sqrt(x).sum(), [x])

    def test_sigmoid_range_and_grad(self, rng):
        x = Tensor(rng.normal(size=(4, 3)) * 3, requires_grad=True)
        s = ops.sigmoid(x)
        assert ((s.data > 0) & (s.data < 1)).all()
        check_gradients(lambda x: (ops.sigmoid(x) ** 2).sum(), [x])

    def test_sigmoid_extreme_values_stable(self):
        s = ops.sigmoid(Tensor([-1000.0, 0.0, 1000.0]))
        assert np.allclose(s.data, [0.0, 0.5, 1.0])
        assert np.isfinite(s.data).all()

    def test_tanh_relu(self, rng):
        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        check_gradients(lambda x: ops.tanh(x).sum(), [x])
        assert (ops.relu(Tensor([-1.0, 2.0])).data == [0.0, 2.0]).all()
        check_gradients(lambda x: (ops.relu(x) * 3.0).sum(), [x])

    def test_abs_and_clip_min(self, rng):
        x = Tensor(rng.normal(size=(6,)) + 0.1, requires_grad=True)
        check_gradients(lambda x: ops.abs_(x).sum(), [x])
        clipped = ops.clip_min(Tensor([-2.0, 0.5]), 0.0)
        assert (clipped.data == [0.0, 0.5]).all()

    def test_maximum(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = ops.maximum(a, b)
        assert np.allclose(out.data, np.maximum(a.data, b.data))
        check_gradients(lambda a, b: (ops.maximum(a, b) ** 2).sum(), [a, b])

    def test_where(self, rng):
        cond = np.array([True, False, True])
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        out = ops.where(cond, a, b)
        assert out.data[0] == a.data[0] and out.data[1] == b.data[1]
        check_gradients(lambda a, b: (ops.where(cond, a, b) ** 2).sum(),
                        [a, b])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)) * 5)
        s = ops.softmax(x, axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)
        assert (s.data > 0).all()

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5))
        a = ops.softmax(Tensor(x)).data
        b = ops.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_large_logits_stable(self):
        s = ops.softmax(Tensor([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(s.data).all()
        assert s.data[0, 0] == pytest.approx(1.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        w = rng.normal(size=(3, 5))
        check_gradients(lambda x: (ops.softmax(x, axis=-1)
                                   * Tensor(w)).sum(), [x])

    def test_axis_argument(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        s = ops.softmax(x, axis=1)
        assert np.allclose(s.data.sum(axis=1), 1.0)
        check_gradients(lambda x: (ops.softmax(x, axis=1) ** 2).sum(), [x])


class TestStructural:
    def test_concat_values_and_grads(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 8)
        check_gradients(lambda a, b: (ops.concat([a, b], axis=1) ** 2).sum(),
                        [a, b])

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = ops.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda a, b: (ops.stack([a, b], axis=1) ** 2).sum(),
                        [a, b])

    def test_pad_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        out = ops.pad_axis(x, 0, 1, 2)
        assert out.shape == (6, 2)
        assert np.allclose(out.data[0], 0) and np.allclose(out.data[-1], 0)
        check_gradients(lambda x: (ops.pad_axis(x, 0, 1, 2) ** 2).sum(), [x])

    def test_take_axis_with_repeats(self, rng):
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        idx = np.array([1, 1, 3])
        out = ops.take_axis(x, idx, 0)
        assert out.shape == (3, 2)
        out.sum().backward()
        assert np.allclose(x.grad[1], 2.0)
        assert np.allclose(x.grad[0], 0.0)

    def test_take_axis_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([4, 0, 0, 2])
        check_gradients(lambda x: (ops.take_axis(x, idx, 0) ** 2).sum(), [x])


class TestPooling:
    def test_mean_pool_values(self):
        x = Tensor(np.arange(8.0).reshape(8, 1))
        out = ops.mean_pool_axis(x, 0, 2)
        assert np.allclose(out.data[:, 0], [0.5, 2.5, 4.5, 6.5])

    def test_max_pool_values(self):
        x = Tensor(np.array([[3.0], [1.0], [0.0], [5.0]]))
        out = ops.max_pool_axis(x, 0, 2)
        assert np.allclose(out.data[:, 0], [3.0, 5.0])

    def test_pool_requires_divisible(self):
        with pytest.raises(ValueError):
            ops.mean_pool_axis(Tensor(np.zeros((5, 2))), 0, 2)

    def test_mean_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        check_gradients(lambda x: (ops.mean_pool_axis(x, 0, 3) ** 2).sum(),
                        [x])

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        check_gradients(lambda x: (ops.max_pool_axis(x, 0, 2) ** 2).sum(),
                        [x])

    def test_pool_other_axis(self, rng):
        x = Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        out = ops.mean_pool_axis(x, 1, 2)
        assert out.shape == (2, 3, 3)
        check_gradients(lambda x: (ops.mean_pool_axis(x, 1, 2) ** 2).sum(),
                        [x])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = ops.dropout(x, 0.0, np.random.default_rng(0), training=True)
        assert out is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones(200_00))
        out = ops.dropout(x, 0.3, np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor([1.0]), 1.0, np.random.default_rng(0))

    def test_grad_masked(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = ops.dropout(x, 0.5, np.random.default_rng(3))
        out.sum().backward()
        dropped = out.data == 0
        assert np.allclose(x.grad[dropped], 0.0)
        assert np.allclose(x.grad[~dropped], 2.0)
