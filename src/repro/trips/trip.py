"""Trip records.

A trip (paper §III) is ``p = (o, d, t, l, τ)``: origin point, destination
point, departure time, trip distance, and travel time; the average speed
is derived as ``v = l / τ``.  :class:`TripTable` is the columnar container
used throughout the pipeline — millions of trips stay as flat numpy
arrays, with :class:`Trip` as the per-record view for ergonomic access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class Trip:
    """A single vehicle trip.

    Attributes
    ----------
    origin, destination:
        Planar km coordinates of pickup and dropoff.
    departure_min:
        Departure time in minutes since the dataset epoch.
    distance_km:
        Travelled distance (not straight-line).
    duration_min:
        Travel time in minutes.
    """

    origin: tuple
    destination: tuple
    departure_min: float
    distance_km: float
    duration_min: float

    @property
    def speed_kmh(self) -> float:
        """Average speed in km/h (``l / τ``)."""
        return self.distance_km / (self.duration_min / 60.0)

    @property
    def speed_ms(self) -> float:
        """Average speed in m/s — the unit of the paper's histograms."""
        return self.distance_km * 1000.0 / (self.duration_min * 60.0)


class TripTable:
    """Columnar set of trips backed by flat numpy arrays.

    Columns: ``origin_xy (n, 2)``, ``dest_xy (n, 2)``,
    ``departure_min (n,)``, ``distance_km (n,)``, ``duration_min (n,)``.
    """

    def __init__(self, origin_xy: np.ndarray, dest_xy: np.ndarray,
                 departure_min: np.ndarray, distance_km: np.ndarray,
                 duration_min: np.ndarray):
        self.origin_xy = np.asarray(origin_xy, dtype=np.float64)
        self.dest_xy = np.asarray(dest_xy, dtype=np.float64)
        self.departure_min = np.asarray(departure_min, dtype=np.float64)
        self.distance_km = np.asarray(distance_km, dtype=np.float64)
        self.duration_min = np.asarray(duration_min, dtype=np.float64)
        n = len(self.departure_min)
        for name, column in [("origin_xy", self.origin_xy),
                             ("dest_xy", self.dest_xy),
                             ("distance_km", self.distance_km),
                             ("duration_min", self.duration_min)]:
            if len(column) != n:
                raise ValueError(f"column {name} has length {len(column)}, "
                                 f"expected {n}")
        if (self.duration_min <= 0).any():
            raise ValueError("durations must be positive")
        if (self.distance_km < 0).any():
            raise ValueError("distances must be non-negative")

    def __len__(self) -> int:
        return len(self.departure_min)

    @property
    def speed_ms(self) -> np.ndarray:
        """Average speeds in m/s for every trip."""
        return self.distance_km * 1000.0 / (self.duration_min * 60.0)

    @property
    def speed_kmh(self) -> np.ndarray:
        return self.distance_km / (self.duration_min / 60.0)

    def __getitem__(self, index) -> "TripTable":
        """Row subset (mask or index array) as a new table."""
        return TripTable(self.origin_xy[index], self.dest_xy[index],
                         self.departure_min[index], self.distance_km[index],
                         self.duration_min[index])

    def iter_trips(self) -> Iterator[Trip]:
        """Row-wise view as :class:`Trip` objects (for small tables)."""
        for i in range(len(self)):
            yield Trip(origin=tuple(self.origin_xy[i]),
                       destination=tuple(self.dest_xy[i]),
                       departure_min=float(self.departure_min[i]),
                       distance_km=float(self.distance_km[i]),
                       duration_min=float(self.duration_min[i]))

    @staticmethod
    def concatenate(tables: list) -> "TripTable":
        if not tables:
            raise ValueError("cannot concatenate zero tables")
        return TripTable(
            np.concatenate([t.origin_xy for t in tables]),
            np.concatenate([t.dest_xy for t in tables]),
            np.concatenate([t.departure_min for t in tables]),
            np.concatenate([t.distance_km for t in tables]),
            np.concatenate([t.duration_min for t in tables]))

    @staticmethod
    def empty() -> "TripTable":
        return TripTable(np.empty((0, 2)), np.empty((0, 2)),
                         np.empty(0), np.empty(0), np.empty(0))
