"""Sharded execution of the AF's stage-1 factor computation.

The stage-1 bottleneck scales with ``N²``: every origin (and every
destination) contributes one GCNN slice encoding, so a batch of ``B``
tensors over ``N`` regions runs ``2·B·N`` slice encodings whose
activations alone dwarf memory at metro scale.  The slice axis is
embarrassingly partitionable — each origin slice is an independent
signal over the *destination* graph — so a :class:`~repro.graph.sharding.ShardPlan`
splits the R side along origin clusters and the C side along
destination clusters, and this module runs one shard's slices at a
time, with a strict per-shard memory budget measured by tracemalloc.

Because the graph convolutions propagate along the *other* side's
graph, slicing the shard axis never crosses a convolution: per-shard
forwards are bit-identical rows of the dense forward (row-partitioned
GEMMs and batch-partitioned ``np.matmul`` are exact on this BLAS).  The
plan's halos therefore stay empty-handed here — they document what a
graph-axis sharding *would* exchange — and the only parity hazard is
the backward weight reduction, which motivates the two modes:

``exact``
    Per-shard forward, but the per-stage caches are scattered into
    full dense-order buffers and the backward runs the dense math
    (single full-size GEMMs per parameter).  Bit-identical losses,
    gradients, weights and RNG versus the dense path — the parity mode
    the benchmark gate verifies — at the price of dense-sized caches.

``blocked``
    Per-shard backward accumulating into per-parameter buffers in
    fixed shard order, plus **zero-slice collapse**: at metro scale
    most OD slices are entirely empty, all empty slices share one
    forward state (the bias response), so they are computed once
    forward and their output gradients are summed into a single
    pseudo-shard backward — exact by linearity.  Deterministic
    run-to-run, memory bounded by the occupied slices of one shard,
    and the source of the wall-clock win on sparse cities; weight
    gradients match dense to float round-off (not bitwise) because
    the reduction is chunked.

:func:`repro.core.spatial.sharded_factorize_tensor_batch` is the entry
point the model uses; :meth:`ShardedExecution.factorize_arrays` is the
raw-numpy inference twin (no autodiff, optional fork fan-out across
shards for multi-core hosts).
"""

from __future__ import annotations

import multiprocessing
import tracemalloc
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff.ops import _cheb_adjoint, _cheb_feats, _cheb_terms
from ..autodiff.tensor import Tensor, _record, _run_forward
from ..graph.sharding import Shard, ShardPlan

__all__ = ["ShardedExecution", "ShardMemoryBudgetError",
           "DataParallelUnit"]


class ShardMemoryBudgetError(RuntimeError):
    """One shard's working set exceeded the configured memory budget."""

    def __init__(self, side: str, shard_index: int, used: int,
                 budget: int):
        super().__init__(
            f"shard {shard_index} ({side} side) used {used} bytes, over "
            f"the per-shard budget of {budget} bytes; use more shards or "
            f"raise memory_budget_bytes")
        self.side = side
        self.shard_index = shard_index
        self.used = used
        self.budget = budget


@dataclass(frozen=True)
class DataParallelUnit:
    """One schedulable unit of sharded stage-1 work.

    A unit is (side, shard): the slices of one origin shard encoded
    over the destination graph (side ``"r"``), or one destination
    shard's slices over the origin graph (side ``"c"``).  Units share
    parameters and reduce gradients into them; they own disjoint slice
    rows, so any subset can run on any worker in any order (the
    ``exact`` mode reduction is order-free, ``blocked`` fixes the
    order for determinism).
    """

    side: str
    shard: Shard
    slices_per_sample: int
    graph_nodes: int

    @property
    def index(self) -> int:
        return self.shard.index

    def slice_rows(self, batch: int) -> np.ndarray:
        """Rows of this unit in the flattened ``(B·N, nodes, K)`` slice
        batch (slice ``b·N + region`` for each owned region)."""
        n = self.slices_per_sample_total
        return (np.arange(batch)[:, None] * n
                + self.shard.owned[None, :]).ravel()

    # Total slices per sample on this side (the shard axis length);
    # set post-construction by the execution that builds the unit.
    slices_per_sample_total: int = 0


# ----------------------------------------------------------------------
# Per-stage execution constants (mirrors ops.fused_gcnn_stage exactly)
# ----------------------------------------------------------------------
@dataclass
class _Stage:
    lap: np.ndarray
    lap_t: np.ndarray
    weight: Tensor
    bias: Tensor
    order: int
    n_nodes: int
    channels: int
    q: int
    stride: int
    perm: Optional[np.ndarray]
    real: Optional[np.ndarray]
    perm_real: Optional[np.ndarray]
    cluster_of_node: np.ndarray
    scale: Optional[np.ndarray]


@dataclass
class _Head:
    w_buckets: Tensor
    b_buckets: Tensor
    w_latent: Tensor
    b_latent: Tensor
    k: int
    rank: int

    @property
    def params(self) -> Tuple[Tensor, ...]:
        return (self.w_buckets, self.b_buckets, self.w_latent,
                self.b_latent)


def _lap_array(scaled_lap) -> np.ndarray:
    return scaled_lap.data if isinstance(scaled_lap, Tensor) \
        else np.asarray(scaled_lap)


def _side_stages(factorizer) -> Tuple[List[_Stage], _Head]:
    """Derive the per-stage constants from a SpatialFactorizer.

    Requires mean pooling (``factorizer._fused_specs`` is the same
    per-stage constant set the fused kernels use); max pooling has no
    sharded path — callers check :meth:`ShardedExecution.supports`.
    """
    if factorizer._fused_specs is None:
        raise ValueError(
            "sharded execution requires mean pooling (the factorizer "
            "has no fused stage constants)")
    stages: List[_Stage] = []
    for conv, spec in zip(factorizer.convs, factorizer._fused_specs):
        lap = _lap_array(conv._scaled_lap)
        n = lap.shape[0]
        order = conv.order
        stride = spec["stride"]
        perm = spec["perm"]
        if perm is not None:
            real = perm < n
            perm_real = perm[real]
            inverse = np.empty(n, dtype=np.intp)
            inverse[perm_real] = np.nonzero(real)[0]
            cluster_of_node = inverse // stride
        else:
            real = perm_real = None
            cluster_of_node = np.arange(n, dtype=np.intp) // stride
        scale = spec["inv_counts"][:, None] if stride > 1 else None
        stages.append(_Stage(
            lap=lap, lap_t=lap.T, weight=conv.weight, bias=conv.bias,
            order=order, n_nodes=n,
            channels=conv.weight.shape[0] // order,
            q=conv.weight.shape[-1], stride=stride, perm=perm, real=real,
            perm_real=perm_real, cluster_of_node=cluster_of_node,
            scale=scale))
    head = _Head(w_buckets=factorizer.to_buckets.weight,
                 b_buckets=factorizer.to_buckets.bias,
                 w_latent=factorizer.latent_proj.weight,
                 b_latent=factorizer.latent_proj.bias,
                 k=factorizer.n_buckets, rank=factorizer.rank)
    return stages, head


# ----------------------------------------------------------------------
# Raw-array forward / backward over a chunk of slice rows.  The array
# op sequences mirror ops.fused_gcnn_stage / ops.fused_latent_head
# line for line: per-shard results are bit-identical rows of the dense
# computation (row-partitioned GEMMs are exact), which is what makes
# the exact mode's reassembled backward bit-identical overall.
# ----------------------------------------------------------------------
def _forward_chunk(x_rows: np.ndarray, stages: Sequence[_Stage],
                   head: _Head, need_caches: bool = True):
    m = x_rows.shape[0]
    cur = x_rows
    stage_caches = [] if need_caches else None
    for st in stages:
        terms = _cheb_terms(st.lap, cur, st.order)
        feats = _cheb_feats(terms, st.order)
        act = (feats @ st.weight.data).reshape(m, st.n_nodes, st.q)
        act += st.bias.data
        np.maximum(act, 0.0, out=act)
        if st.perm is not None:
            pooled_src = np.zeros((m, st.perm.size, st.q),
                                  dtype=act.dtype)
            pooled_src[:, st.real] = act[:, st.perm_real]
        else:
            pooled_src = act
        if st.stride > 1:
            width = pooled_src.shape[1]
            out = pooled_src.reshape(m, width // st.stride, st.stride,
                                     st.q).sum(axis=2)
            out *= st.scale
        else:
            out = pooled_src
        if need_caches:
            stage_caches.append((feats, act))
        cur = out
    x_head = cur                                        # (m, P, C)
    t = x_head @ head.w_buckets.data + head.b_buckets.data
    tt = t.transpose(0, 2, 1)                           # (m, K, P)
    z = tt @ head.w_latent.data + head.b_latent.data    # (m, K, R)
    out = np.ascontiguousarray(z.transpose(0, 2, 1))    # (m, R, K)
    caches = (stage_caches, x_head, tt) if need_caches else None
    return out, caches


def _backward_chunk(grad: np.ndarray, caches, stages: Sequence[_Stage],
                    head: _Head, sink: "_GradSink",
                    need_input_grad: bool) -> Optional[np.ndarray]:
    stage_caches, x_head, tt = caches
    gz = grad.transpose(0, 2, 1)                        # (m, K, R)
    gz2 = gz.reshape(-1, head.rank)
    sink.add(head.w_latent, tt.reshape(-1, tt.shape[-1]).T @ gz2)
    sink.add(head.b_latent, gz2.sum(axis=0))
    dt = np.matmul(gz, head.w_latent.data.T).transpose(0, 2, 1)
    dt2 = dt.reshape(-1, head.k)
    sink.add(head.w_buckets,
             x_head.reshape(-1, x_head.shape[-1]).T @ dt2)
    sink.add(head.b_buckets, dt2.sum(axis=0))
    g = np.matmul(dt, head.w_buckets.data.T)            # (m, P, C)
    for index in range(len(stages) - 1, -1, -1):
        st = stages[index]
        feats, act = stage_caches[index]
        m = act.shape[0]
        if st.stride > 1:
            scaled = g * st.scale
            dact = scaled[:, st.cluster_of_node]
            dact *= act > 0
        elif st.perm is not None:
            dact = g[:, st.cluster_of_node]
            dact *= act > 0
        else:
            dact = g * (act > 0)
        gm = dact.reshape(m * st.n_nodes, st.q)
        sink.add(st.weight, feats.T @ gm)
        sink.add(st.bias, gm.sum(axis=0))
        if index > 0 or need_input_grad:
            g = _cheb_adjoint(st.lap_t, gm, st.weight.data,
                              (m, st.n_nodes, st.channels), st.order)
    return g if need_input_grad else None


class _GradSink:
    """Accumulates gradient contributions per parameter.

    ``direct=True`` forwards each contribution straight to the
    parameter (exact mode touches every parameter exactly once, with
    the full-size dense GEMM); ``direct=False`` sums contributions
    locally in call order and flushes once, so the blocked mode's
    reduction order is the fixed shard order regardless of how shards
    were scheduled.
    """

    def __init__(self, direct: bool):
        self.direct = direct
        self._params: Dict[int, Tensor] = {}
        self._totals: Dict[int, np.ndarray] = {}

    def add(self, param: Tensor, value: np.ndarray) -> None:
        if not param.requires_grad:
            return
        if self.direct:
            param._accumulate(value)
            return
        key = id(param)
        if key in self._totals:
            self._totals[key] += value
        else:
            self._params[key] = param
            self._totals[key] = value

    def flush(self) -> None:
        for key, total in self._totals.items():
            self._params[key]._accumulate(total)
        self._totals.clear()
        self._params.clear()


# ----------------------------------------------------------------------
def _forked_entry(conn, thunk):
    try:
        conn.send(("ok", thunk()))
    except Exception as exc:                    # pragma: no cover
        conn.send(("err", repr(exc)))
    finally:
        conn.close()


def _run_thunks(thunks: List, n_jobs: int) -> List:
    """Run thunks serially or across forked workers (``n_jobs`` at a
    time).  Fork start method required for parallelism — the thunks
    close over live numpy state; only results cross the pipe."""
    if n_jobs <= 1 or len(thunks) <= 1 \
            or "fork" not in multiprocessing.get_all_start_methods():
        return [thunk() for thunk in thunks]
    ctx = multiprocessing.get_context("fork")
    results = [None] * len(thunks)
    pending = deque(enumerate(thunks))
    active: deque = deque()
    while pending or active:
        while pending and len(active) < n_jobs:
            index, thunk = pending.popleft()
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_forked_entry, args=(child, thunk))
            proc.start()
            child.close()
            active.append((index, proc, parent))
        index, proc, parent = active.popleft()
        status, payload = parent.recv()
        proc.join()
        parent.close()
        if status != "ok":
            raise RuntimeError(
                f"sharded inference worker {index} failed: {payload}")
        results[index] = payload
    return results


# ----------------------------------------------------------------------
class ShardedExecution:
    """Executes stage-1 factorization shard by shard under a plan.

    Parameters
    ----------
    plan:
        Validated :class:`~repro.graph.sharding.ShardPlan`; origin
        shards drive the R side, destination shards the C side.
    mode:
        ``"exact"`` (bit-identical to dense; dense-sized backward
        caches) or ``"blocked"`` (zero-slice collapse + per-shard
        reduction; memory bounded, deterministic, float-level parity).
    memory_budget_bytes:
        Optional hard cap on one shard's incremental working set,
        enforced with tracemalloc on profiled forwards (the first
        forward after construction or :meth:`arm_profile`).
    n_jobs:
        Fork fan-out for :meth:`factorize_arrays` (inference only;
        training stays single-process for determinism).
    """

    MODES = ("exact", "blocked")

    def __init__(self, plan: ShardPlan, mode: str = "blocked",
                 memory_budget_bytes: Optional[int] = None,
                 n_jobs: int = 1):
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        plan.validate()
        self.plan = plan
        self.mode = mode
        self.memory_budget_bytes = memory_budget_bytes
        self.n_jobs = int(n_jobs)
        self.shard_peaks: Dict[str, List[int]] = {"r": [], "c": []}
        self.last_occupancy: Dict[str, dict] = {}
        self._profile_pending = True
        self._profiling = False
        self._started_tracing = False

    # ------------------------------------------------------------------
    def supports(self, model) -> Tuple[bool, str]:
        """Whether this execution can run ``model``'s stage 1."""
        for name in ("factor_r", "factor_c"):
            factorizer = getattr(model, name, None)
            if factorizer is None:
                return False, f"model has no {name} factorizer"
            if factorizer._fused_specs is None:
                return False, (f"{name} uses max pooling; the sharded "
                               f"path needs mean pooling")
        if self.plan.n_origins != model.n_origins \
                or self.plan.n_destinations != model.n_destinations:
            return False, (
                f"plan covers {self.plan.n_origins}x"
                f"{self.plan.n_destinations} regions but the model has "
                f"{model.n_origins}x{model.n_destinations}")
        return True, "ok"

    def data_parallel_units(self) -> List[DataParallelUnit]:
        """The schedulable (side, shard) units this plan defines."""
        units = []
        for shard in self.plan.origin_shards:
            units.append(DataParallelUnit(
                side="r", shard=shard,
                slices_per_sample=shard.size,
                graph_nodes=self.plan.n_destinations,
                slices_per_sample_total=self.plan.n_origins))
        for shard in self.plan.dest_shards:
            units.append(DataParallelUnit(
                side="c", shard=shard,
                slices_per_sample=shard.size,
                graph_nodes=self.plan.n_origins,
                slices_per_sample_total=self.plan.n_destinations))
        return units

    def arm_profile(self) -> None:
        """Profile (and budget-check) the next forward's shards."""
        self._profile_pending = True

    @property
    def max_shard_peak_bytes(self) -> int:
        peaks = self.shard_peaks["r"] + self.shard_peaks["c"]
        return max(peaks) if peaks else 0

    def describe(self) -> dict:
        """Summary for telemetry and benchmark reports."""
        return {"mode": self.mode,
                "memory_budget_bytes": self.memory_budget_bytes,
                "n_jobs": self.n_jobs,
                "max_shard_peak_bytes": self.max_shard_peak_bytes,
                "occupancy": self.last_occupancy,
                "plan": self.plan.describe()}

    # ------------------------------------------------------------------
    def factorize(self, factorizer_r, factorizer_c,
                  tensors: Tensor) -> Tuple[Tensor, Tensor]:
        """Sharded twin of
        :func:`repro.core.spatial.factorize_tensor_batch`:
        ``(B, N, N', K)`` → ``R (B, N, β, K)``, ``C (B, β, N', K)``."""
        batch, n_origins, n_dests, k = tensors.shape
        if n_origins != self.plan.n_origins \
                or n_dests != self.plan.n_destinations:
            raise ValueError(
                f"tensor batch is {n_origins}x{n_dests} regions but the "
                f"plan covers {self.plan.n_origins}x"
                f"{self.plan.n_destinations}")
        r_slices = tensors.reshape(batch * n_origins, n_dests, k)
        c_slices = tensors.transpose((0, 2, 1, 3)).reshape(
            batch * n_dests, n_origins, k)
        profiled = self._profile_pending
        if profiled:
            self._profile_pending = False
            self.shard_peaks = {"r": [], "c": []}
            self._profiling = True
            self._started_tracing = not tracemalloc.is_tracing()
            if self._started_tracing:
                tracemalloc.start()
        try:
            r = self._side_node(r_slices, factorizer_r, "r", batch,
                                self.plan.origin_shards)
            c = self._side_node(c_slices, factorizer_c, "c", batch,
                                self.plan.dest_shards)
        finally:
            if profiled:
                self._profiling = False
                if self._started_tracing:
                    tracemalloc.stop()
                    self._started_tracing = False
        r = r.reshape(batch, n_origins, factorizer_r.rank, k)
        c = c.reshape(batch, n_dests, factorizer_c.rank, k)
        return r, c.transpose((0, 2, 1, 3))

    # ------------------------------------------------------------------
    def _shard_rows(self, shard: Shard, batch: int,
                    n_side: int) -> np.ndarray:
        return (np.arange(batch)[:, None] * n_side
                + shard.owned[None, :]).ravel()

    def _measure(self, side: str, shard_index: int, fn):
        """Run ``fn`` under a per-shard tracemalloc measurement."""
        if not self._profiling:
            return fn()
        baseline = tracemalloc.get_traced_memory()[0]
        tracemalloc.reset_peak()
        result = fn()
        peak = tracemalloc.get_traced_memory()[1]
        used = max(int(peak - baseline), 0)
        self.shard_peaks[side].append(used)
        budget = self.memory_budget_bytes
        if budget is not None and used > budget:
            raise ShardMemoryBudgetError(side, shard_index, used, budget)
        return result

    def _side_node(self, x: Tensor, factorizer, side: str, batch: int,
                   shards: Tuple[Shard, ...]) -> Tensor:
        stages, head = _side_stages(factorizer)
        if self.mode == "blocked" and x.requires_grad:
            raise NotImplementedError(
                "blocked mode does not propagate gradients into the "
                "history input (zero-slice collapse shares forward "
                "state); use mode='exact' or detach the input")
        params: List[Tensor] = []
        for st in stages:
            params.extend((st.weight, st.bias))
        params.extend(head.params)
        n_side = self.plan.n_origins if side == "r" \
            else self.plan.n_destinations
        state: dict = {}
        if self.mode == "exact":
            run = self._exact_run(x, stages, head, side, batch, shards,
                                  n_side, state)
            backward = self._exact_backward(x, stages, head, state)
        else:
            run = self._blocked_run(x, stages, head, side, batch,
                                    shards, n_side, state)
            backward = self._blocked_backward(x, stages, head, state)
        out = Tensor._make(_run_forward(run), (x,) + tuple(params),
                           backward)
        _record(out, run)
        return out

    # ------------------------------------------------------------------
    # exact mode: per-shard forward, dense-order caches, dense backward
    # ------------------------------------------------------------------
    def _exact_run(self, x, stages, head, side, batch, shards, n_side,
                   state):
        def run() -> np.ndarray:
            x3 = x.data
            total = x3.shape[0]
            dtype = x3.dtype
            feats_full = [np.empty((total, st.n_nodes,
                                    st.channels * st.order), dtype=dtype)
                          for st in stages]
            act_full = [np.empty((total, st.n_nodes, st.q), dtype=dtype)
                        for st in stages]
            head_in = None
            tt_full = None
            out_full = np.empty((total, head.rank, head.k), dtype=dtype)
            for shard in shards:
                rows = self._shard_rows(shard, batch, n_side)

                def one_shard(rows=rows):
                    return _forward_chunk(x3[rows], stages, head)

                out, (stage_caches, x_head, tt) = self._measure(
                    side, shard.index, one_shard)
                if head_in is None:
                    head_in = np.empty((total,) + x_head.shape[1:],
                                       dtype=dtype)
                    tt_full = np.empty((total,) + tt.shape[1:],
                                       dtype=dtype)
                for i, (feats, act) in enumerate(stage_caches):
                    feats_full[i][rows] = feats.reshape(
                        rows.size, stages[i].n_nodes, -1)
                    act_full[i][rows] = act
                head_in[rows] = x_head
                tt_full[rows] = tt
                out_full[rows] = out
            stage_caches_full = [
                (feats_full[i].reshape(total * stages[i].n_nodes, -1),
                 act_full[i]) for i in range(len(stages))]
            state["caches"] = (stage_caches_full, head_in, tt_full)
            return out_full
        return run

    def _exact_backward(self, x, stages, head, state):
        def backward(grad: np.ndarray) -> None:
            sink = _GradSink(direct=True)
            g = _backward_chunk(grad, state.pop("caches"), stages, head,
                                sink, need_input_grad=x.requires_grad)
            if x.requires_grad:
                x._accumulate(g)
        return backward

    # ------------------------------------------------------------------
    # blocked mode: zero-slice collapse + per-shard backward reduction
    # ------------------------------------------------------------------
    def _blocked_run(self, x, stages, head, side, batch, shards, n_side,
                     state):
        def run() -> np.ndarray:
            x3 = x.data
            total = x3.shape[0]
            occupied = x3.reshape(total, -1).any(axis=1)
            # All-empty slices share one forward state: the network's
            # bias response.  Compute it once from a single zero slice.
            zero = np.zeros((1,) + x3.shape[1:], dtype=x3.dtype)
            out_zero, caches_zero = _forward_chunk(zero, stages, head)
            out_full = np.empty((total, head.rank, head.k),
                                dtype=x3.dtype)
            empty = ~occupied
            out_full[empty] = out_zero
            shard_caches = []
            for shard in shards:
                rows = self._shard_rows(shard, batch, n_side)
                rows = rows[occupied[rows]]
                if rows.size == 0:
                    if self._profiling:
                        self.shard_peaks[side].append(0)
                    continue

                def one_shard(rows=rows):
                    return _forward_chunk(x3[rows], stages, head)

                out, caches = self._measure(side, shard.index, one_shard)
                out_full[rows] = out
                shard_caches.append((rows, caches))
            state["shards"] = shard_caches
            state["empty"] = empty
            state["caches_zero"] = caches_zero
            self.last_occupancy[side] = {
                "slices": int(total),
                "occupied": int(occupied.sum()),
                "occupancy": float(occupied.mean())}
            return out_full
        return run

    def _blocked_backward(self, x, stages, head, state):
        def backward(grad: np.ndarray) -> None:
            sink = _GradSink(direct=False)
            for rows, caches in state.pop("shards"):
                _backward_chunk(grad[rows], caches, stages, head, sink,
                                need_input_grad=False)
            empty = state.pop("empty")
            caches_zero = state.pop("caches_zero")
            if empty.any():
                # The collapse pseudo-shard: every empty slice has the
                # same forward caches, and the backward is linear in the
                # output gradient given those caches, so one backward of
                # the summed gradient equals the sum of backwards.
                grad_empty = grad[empty].sum(axis=0, keepdims=True)
                _backward_chunk(grad_empty, caches_zero, stages, head,
                                sink, need_input_grad=False)
            sink.flush()
        return backward

    # ------------------------------------------------------------------
    # Raw-array inference path (serving): forward only, zero-slice
    # collapse always on, optional fork fan-out across shards.
    # ------------------------------------------------------------------
    def factorize_arrays(self, factorizer_r, factorizer_c,
                         tensors: np.ndarray,
                         n_jobs: Optional[int] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward-only sharded factorization of raw arrays.

        Returns ``(R, C)`` numpy arrays with the same shapes as
        :meth:`factorize`.  ``n_jobs > 1`` fans shards out across
        forked workers (results-only pipe transport); the default
        (``self.n_jobs``) keeps it serial, where the zero-slice
        collapse is still the wall-clock win on sparse cities.
        """
        tensors = np.asarray(tensors)
        batch, n_origins, n_dests, k = tensors.shape
        n_jobs = self.n_jobs if n_jobs is None else int(n_jobs)
        r_slices = tensors.reshape(batch * n_origins, n_dests, k)
        c_slices = np.ascontiguousarray(
            tensors.transpose(0, 2, 1, 3)).reshape(
                batch * n_dests, n_origins, k)
        r = self._side_arrays(r_slices, factorizer_r, batch,
                              self.plan.origin_shards, n_origins, n_jobs)
        c = self._side_arrays(c_slices, factorizer_c, batch,
                              self.plan.dest_shards, n_dests, n_jobs)
        r = r.reshape(batch, n_origins, factorizer_r.rank, k)
        c = c.reshape(batch, n_dests, factorizer_c.rank, k)
        return r, c.transpose(0, 2, 1, 3)

    def _side_arrays(self, x3, factorizer, batch, shards, n_side,
                     n_jobs):
        stages, head = _side_stages(factorizer)
        total = x3.shape[0]
        occupied = x3.reshape(total, -1).any(axis=1)
        zero = np.zeros((1,) + x3.shape[1:], dtype=x3.dtype)
        out_zero, _ = _forward_chunk(zero, stages, head,
                                     need_caches=False)
        out_full = np.empty((total, head.rank, head.k), dtype=x3.dtype)
        out_full[~occupied] = out_zero
        row_sets = []
        thunks = []
        for shard in shards:
            rows = self._shard_rows(shard, batch, n_side)
            rows = rows[occupied[rows]]
            if rows.size == 0:
                continue
            row_sets.append(rows)
            thunks.append(lambda rows=rows: _forward_chunk(
                x3[rows], stages, head, need_caches=False)[0])
        for rows, out in zip(row_sets, _run_thunks(thunks, n_jobs)):
            out_full[rows] = out
        return out_full
