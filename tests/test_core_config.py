"""Tests for the Table I model configurations."""

import numpy as np
import pytest

from repro.core.config import (PaperHyperParameters,
                               PracticalHyperParameters, paper_af,
                               paper_bf, practical_af, practical_bf)
from repro.regions import toy_city


class TestPaperHyperParameters:
    def test_published_values(self):
        hp = PaperHyperParameters()
        assert hp.rank == 5           # factorization rank r
        assert hp.n_buckets == 7      # speed buckets K
        assert hp.dropout == 0.2
        assert hp.learning_rate == pytest.approx(1e-3)
        assert hp.decay_factor == 0.8 and hp.decay_every == 5

    def test_paper_bf_builds(self):
        model = paper_bf(n_regions=20)
        assert model.rank == 5
        history = np.random.default_rng(0).uniform(size=(1, 3, 20, 20, 7))
        pred, r, c = model(history, horizon=1)
        assert pred.shape == (1, 1, 20, 20, 7)

    def test_paper_af_builds_at_scale(self):
        city = toy_city(seed=0, n_regions=24)
        weights = city.proximity()
        model = paper_af(weights, weights)
        history = np.random.default_rng(0).uniform(size=(1, 3, 24, 24, 7))
        pred, r, c = model(history, horizon=1)
        assert pred.shape == (1, 1, 24, 24, 7)
        assert np.allclose(pred.numpy().sum(-1), 1.0)

    def test_paper_af_pools_16x(self):
        """Table I: two pool-4 stages condense each slice 16x before the
        rank projection."""
        city = toy_city(seed=0, n_regions=40)
        weights = city.proximity()
        model = paper_af(weights, weights)
        assert model.factor_r.pooled_size <= max(40 // 16 + 2, 3) + 2


class TestPracticalConstructors:
    def test_practical_bf(self):
        model = practical_bf(10, 12, 7, seed=1)
        assert model.n_origins == 10 and model.n_destinations == 12

    def test_practical_af(self):
        city = toy_city(seed=2, n_regions=14)
        weights = city.proximity()
        model = practical_af(weights, weights, 7, seed=1)
        assert model.n_origins == 14

    def test_seeds_differentiate_weights(self):
        a = practical_bf(8, 8, 7, seed=1)
        b = practical_bf(8, 8, 7, seed=2)
        assert not np.allclose(a.encode_r.weight.data,
                               b.encode_r.weight.data)

    def test_same_seed_same_weights(self):
        a = practical_bf(8, 8, 7, seed=3)
        b = practical_bf(8, 8, 7, seed=3)
        assert np.allclose(a.encode_r.weight.data, b.encode_r.weight.data)
