"""Focused tests for the experiment runner internals."""

import numpy as np
import pytest

from repro.experiments import make_nh, prepare, run_comparison
from repro.experiments.runner import ComparisonResult, MethodResult
from repro.metrics.evaluation import EvaluationResult


@pytest.fixture(scope="module")
def data(dataset):
    return prepare(dataset, s=3, h=2)


class TestRunComparison:
    def test_fit_seconds_recorded(self, data):
        result = run_comparison(data, {"nh": make_nh}, max_test_windows=4)
        assert result.methods["nh"].fit_seconds >= 0.0

    def test_test_window_thinning_even(self, data):
        result = run_comparison(data, {"nh": make_nh}, max_test_windows=5)
        test = result.methods["nh"].test_indices
        assert len(test) == 5
        # Thinned windows span the whole test range, not just its head.
        assert test[0] == data.split.test[0]
        assert test[-1] == data.split.test[-1]

    def test_no_thinning_when_small(self, data):
        n = len(data.split.test)
        result = run_comparison(data, {"nh": make_nh},
                                max_test_windows=n + 10)
        assert len(result.methods["nh"].test_indices) == n

    def test_predictions_dropped_by_default(self, data):
        result = run_comparison(data, {"nh": make_nh}, max_test_windows=4)
        assert result.methods["nh"].predictions is None

    def test_kept_predictions_are_float32(self, data):
        result = run_comparison(data, {"nh": make_nh},
                                keep_predictions=True, max_test_windows=4)
        assert result.methods["nh"].predictions.dtype == np.float32


class TestComparisonResultTable:
    def _fake(self):
        evaluation = EvaluationResult(
            per_step={"kl": np.array([1.0, 2.0]),
                      "js": np.array([0.1, 0.2]),
                      "emd": np.array([0.5, 0.6])},
            n_cells=np.array([10.0, 8.0]))
        result = ComparisonResult(s=3, h=2)
        result.methods["xx"] = MethodResult(name="xx",
                                            evaluation=evaluation)
        return result

    def test_table_values(self):
        rows = self._fake().table()
        assert rows[0] == {"method": "xx", "step": 1, "kl": 1.0,
                           "js": 0.1, "emd": 0.5}
        assert rows[1]["step"] == 2

    def test_metric_subset(self):
        rows = self._fake().table(metrics=("emd",))
        assert set(rows[0]) == {"method", "step", "emd"}

    def test_format_contains_all_methods(self):
        text = self._fake().format_table()
        assert "xx" in text and "s=3" in text


class TestCompareMethods:
    def test_bootstrap_between_methods(self, data):
        from repro.experiments import make_nh, make_gp, run_comparison
        result = run_comparison(data, {"nh": make_nh, "gp": make_gp},
                                keep_predictions=True, max_test_windows=6)
        outcome = result.compare_methods(data.windows, "nh", "gp",
                                         n_resamples=100)
        assert outcome.n_cells > 0
        assert np.isfinite(outcome.mean_difference)

    def test_requires_kept_predictions(self, data):
        from repro.experiments import make_nh, run_comparison
        result = run_comparison(data, {"nh": make_nh},
                                max_test_windows=4)
        with pytest.raises(ValueError):
            result.compare_methods(data.windows, "nh", "nh")
