"""Saving and loading models, checkpoints, tensor sequences, and results.

Everything serializes to plain ``.npz``/JSON files so artifacts remain
readable without this library:

* model weights — ``save_model`` / ``load_model`` wrap the Module
  state-dict as an npz archive;
* training checkpoints — ``save_checkpoint`` / ``load_checkpoint``
  bundle model + optimizer + scheduler + learning curves + RNG state +
  epoch into one atomic ``.npz`` artifact (arrays as npz entries, all
  scalar/structured state as an embedded JSON record under the
  ``__meta__`` key), written temp-then-rename so a crash mid-write
  never corrupts the previous checkpoint;
* per-method results — ``save_method_result`` / ``load_method_result``
  make roster runs resumable (see ``run_comparison(artifact_dir=...)``);
* OD tensor sequences — the expensive aggregation output can be cached
  to disk and reloaded for repeated experiments;
* comparison results — exported as JSON rows for external plotting.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .autodiff.module import Module
from .contracts import ContractPolicy, check_finite, validate_sequence
from .experiments.runner import ComparisonResult, MethodResult
from .histograms.histogram import HistogramSpec
from .histograms.tensor_builder import ODTensorSequence
from .metrics.evaluation import EvaluationResult

PathLike = Union[str, Path]

#: Bumped when the on-disk checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointCorruptError(ValueError):
    """A checkpoint file is unreadable or fails its integrity checks.

    Raised for truncated archives, bit-flipped payloads (zip CRC or
    embedded SHA-256 mismatch), and files that are not checkpoints at
    all — never the raw ``zipfile``/``KeyError`` tracebacks those would
    otherwise surface as.  Subclasses :class:`ValueError` so existing
    ``except ValueError`` callers keep working.
    """


def _state_digest(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape, and bytes.

    Iteration is name-sorted so the digest is layout-independent; the
    ``__meta__`` entry is excluded (the digest is stored inside it).
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == "__meta__":
            continue
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _meta_json(meta: dict) -> np.ndarray:
    """Encode a metadata dict as a uint8 JSON blob for an npz entry."""
    def coerce(value):
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
        raise TypeError(f"not JSON serializable: {type(value).__name__}")
    return np.frombuffer(json.dumps(meta, default=coerce).encode("utf-8"),
                         dtype=np.uint8)


def _atomic_savez(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: temp file in-dir, then rename."""
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
def save_model(model: Module, path: PathLike) -> None:
    """Write a module's weights to an ``.npz`` archive (atomically)."""
    state = model.state_dict()
    _atomic_savez(Path(path), state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load weights saved by :func:`save_model` into ``model`` (strict).

    The module must already be constructed with matching architecture;
    returns the same module for chaining.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model


# ----------------------------------------------------------------------
# training checkpoints
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """A loaded training checkpoint (see :func:`save_checkpoint`)."""

    epoch: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Optional[dict] = None
    scheduler_state: Optional[dict] = None
    rng_state: Optional[dict] = None
    result_state: Optional[dict] = None
    best_state: Optional[Dict[str, np.ndarray]] = None
    extra: dict = field(default_factory=dict)


def save_checkpoint(path: PathLike, model: Module, optimizer=None,
                    scheduler=None, epoch: int = -1, result=None,
                    rng_state: Optional[dict] = None,
                    best_state: Optional[Dict[str, np.ndarray]] = None,
                    extra: Optional[dict] = None) -> None:
    """Bundle the full training state into one atomic ``.npz`` artifact.

    Layout: model weights under ``model/<name>``, best-so-far weights
    under ``best/<name>``, per-parameter optimizer slots under
    ``optim/<slot>/<index>``, and everything scalar or structured
    (epoch, optimizer/scheduler scalars, the shuffle RNG's
    ``bit_generator.state``, the :class:`~repro.core.trainer.TrainResult`
    fields, caller extras) as a JSON document in the ``__meta__`` entry.
    The file is written to a temp name and renamed into place, so an
    interrupted save leaves the previous checkpoint intact.

    ``result`` may be a dataclass (e.g. ``TrainResult``) or a plain
    dict; ``rng_state`` is ``rng.bit_generator.state``.
    """
    arrays: Dict[str, np.ndarray] = {}
    meta: dict = {"format_version": CHECKPOINT_FORMAT_VERSION,
                  "epoch": int(epoch)}
    for name, value in model.state_dict().items():
        arrays[f"model/{name}"] = value
    if best_state is not None:
        for name, value in best_state.items():
            arrays[f"best/{name}"] = value
    if optimizer is not None:
        state = optimizer.state_dict()
        scalars = {}
        for key, value in state.items():
            if isinstance(value, (list, tuple)):       # per-param slots
                for i, slot in enumerate(value):
                    arrays[f"optim/{key}/{i}"] = np.asarray(slot)
            else:
                scalars[key] = value
        meta["optimizer"] = {"type": type(optimizer).__name__,
                             "scalars": scalars}
    if scheduler is not None:
        meta["scheduler"] = scheduler.state_dict()
    if rng_state is not None:
        meta["rng_state"] = rng_state
    if result is not None:
        if not isinstance(result, dict):
            from dataclasses import asdict
            result = asdict(result)
        meta["result"] = result
    if extra:
        meta["extra"] = extra
    # Embedded integrity checksum: recomputed on load so silent on-disk
    # corruption (bit flips that keep the zip structure intact) is
    # caught as CheckpointCorruptError instead of restoring garbage.
    meta["checksum"] = _state_digest(arrays)
    arrays["__meta__"] = _meta_json(meta)
    _atomic_savez(Path(path), arrays)


def _read_npz_entries(path: PathLike, kind: str) -> Dict[str, np.ndarray]:
    """Read every array of an ``.npz``, mapping low-level failures
    (truncated file, bad zip, CRC mismatch, mangled pickle headers) to
    :class:`CheckpointCorruptError`."""
    try:
        with np.load(str(path)) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, KeyError,
            ValueError) as exc:
        raise CheckpointCorruptError(
            f"{path} is not a readable {kind} "
            f"({type(exc).__name__}: {exc})") from exc


def load_checkpoint(path: PathLike, model: Optional[Module] = None,
                    optimizer=None, scheduler=None) -> Checkpoint:
    """Read a checkpoint; restore any of model/optimizer/scheduler in place.

    Returns the full :class:`Checkpoint` so callers can also recover the
    epoch counter, RNG state, learning curves, and best-so-far weights.
    Raises :class:`CheckpointCorruptError` for truncated/bit-flipped/
    wrong-schema files (see :class:`~repro.core.trainer.Trainer`, whose
    resume path falls back to ``best.npz`` on corruption).
    """
    entries = _read_npz_entries(path, "checkpoint")
    if "__meta__" not in entries:
        raise CheckpointCorruptError(
            f"{path} is not a checkpoint (missing __meta__ entry; "
            f"found {sorted(entries)[:5]})")
    try:
        meta = json.loads(bytes(entries.pop("__meta__")).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"{path} has an unreadable __meta__ record "
            f"({type(exc).__name__}: {exc})") from exc
    if not isinstance(meta, dict):
        raise CheckpointCorruptError(
            f"{path} __meta__ is {type(meta).__name__}, expected a dict")
    expected = meta.get("checksum")
    if expected is not None and _state_digest(entries) != expected:
        raise CheckpointCorruptError(
            f"{path} failed its integrity check: embedded SHA-256 does "
            f"not match the stored arrays (file corrupted on disk?)")
    version = meta.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})")
    if "epoch" not in meta:
        raise CheckpointCorruptError(
            f"{path} has checkpoint metadata but no epoch record "
            f"(keys: {sorted(meta)})")
    model_state, best_state, optim_slots = {}, {}, {}
    for name, value in entries.items():
        kind, _, rest = name.partition("/")
        if kind == "model":
            model_state[rest] = value
        elif kind == "best":
            best_state[rest] = value
        elif kind == "optim":
            slot, _, index = rest.partition("/")
            optim_slots.setdefault(slot, {})[int(index)] = value
    optimizer_state = None
    if "optimizer" in meta:
        optimizer_state = dict(meta["optimizer"]["scalars"])
        optimizer_state["type"] = meta["optimizer"]["type"]
        for slot, indexed in optim_slots.items():
            optimizer_state[slot] = [indexed[i]
                                     for i in sorted(indexed)]
    for name, value in model_state.items():
        check_finite(value, f"model/{name}", "load_checkpoint")
    checkpoint = Checkpoint(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        scheduler_state=meta.get("scheduler"),
        rng_state=meta.get("rng_state"),
        result_state=meta.get("result"),
        best_state=best_state or None,
        extra=meta.get("extra", {}))
    if model is not None:
        model.load_state_dict(checkpoint.model_state)
    if optimizer is not None:
        if optimizer_state is None:
            raise ValueError(f"{path} holds no optimizer state")
        expected = type(optimizer).__name__
        if optimizer_state["type"] != expected:
            raise ValueError(
                f"checkpoint optimizer is {optimizer_state['type']}, "
                f"got a {expected} to restore into")
        optimizer.load_state_dict(
            {k: v for k, v in optimizer_state.items() if k != "type"})
    if scheduler is not None:
        if checkpoint.scheduler_state is None:
            raise ValueError(f"{path} holds no scheduler state")
        scheduler.load_state_dict(checkpoint.scheduler_state)
    return checkpoint


# ----------------------------------------------------------------------
# per-method roster artifacts
# ----------------------------------------------------------------------
def save_method_result(result: MethodResult, path: PathLike) -> None:
    """Persist one roster method's evaluation for later resumption."""
    arrays: Dict[str, np.ndarray] = {}
    meta = {"format_version": CHECKPOINT_FORMAT_VERSION,
            "name": result.name,
            "fit_seconds": float(result.fit_seconds),
            "error": result.error}
    if result.evaluation is not None:
        meta["metrics"] = sorted(result.evaluation.per_step)
        for metric, values in result.evaluation.per_step.items():
            arrays[f"per_step/{metric}"] = np.asarray(values)
        arrays["n_cells"] = np.asarray(result.evaluation.n_cells)
    if result.predictions is not None:
        arrays["predictions"] = result.predictions
    if result.test_indices is not None:
        arrays["test_indices"] = np.asarray(result.test_indices)
    arrays["__meta__"] = _meta_json(meta)
    _atomic_savez(Path(path), arrays)


def load_method_result(path: PathLike) -> MethodResult:
    """Read back a method result saved by :func:`save_method_result`."""
    with np.load(str(path)) as archive:
        entries = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(entries.pop("__meta__")).decode("utf-8"))
    evaluation = None
    if "metrics" in meta:
        evaluation = EvaluationResult(
            per_step={metric: entries[f"per_step/{metric}"]
                      for metric in meta["metrics"]},
            n_cells=entries["n_cells"])
    return MethodResult(
        name=meta["name"], evaluation=evaluation,
        fit_seconds=meta["fit_seconds"],
        predictions=entries.get("predictions"),
        test_indices=entries.get("test_indices"),
        error=meta.get("error"))


# ----------------------------------------------------------------------
# OD tensor sequences
# ----------------------------------------------------------------------
def save_sequence(sequence: ODTensorSequence, path: PathLike) -> None:
    """Persist an OD tensor sequence (tensors, mask, counts, metadata).

    Tensors and counts are stored as **float32** to halve the artifact
    size: histogram cells live in [0, 1] where float32 keeps ~7
    significant digits, far below the sampling noise of the counts that
    produced them.  The round-trip is therefore lossy at the ~1e-7
    level — in particular, histograms that summed to exactly 1.0 in
    float64 may be off by a few ULPs after reload, which is why
    :func:`load_sequence` renormalizes them.
    """
    np.savez_compressed(
        str(path),
        tensors=sequence.tensors.astype(np.float32),
        mask=sequence.mask,
        counts=sequence.counts.astype(np.float32),
        edges=np.asarray(sequence.spec.edges, dtype=np.float64),
        interval_minutes=np.float64(sequence.interval_minutes))


def load_sequence(path: PathLike,
                  policy: Optional[ContractPolicy] = None
                  ) -> ODTensorSequence:
    """Load a sequence saved by :func:`save_sequence`.

    Restores float64 and renormalizes each observed cell's histogram to
    sum to exactly 1 again, undoing the float32 quantization of
    :func:`save_sequence` (empty cells — all-zero histograms — are left
    untouched).  The reloaded sequence then passes through the full
    data contract (:func:`repro.contracts.validate_sequence`, boundary
    ``"load_sequence"``) under ``policy`` (default: the process-wide
    :func:`~repro.contracts.get_contract_policy`), so NaN payloads
    hard-error and malformed cells are quarantined rather than fed to
    training.
    """
    entries = _read_npz_entries(path, "tensor-sequence archive")
    for key in ("tensors", "mask", "counts", "edges", "interval_minutes"):
        if key not in entries:
            raise CheckpointCorruptError(
                f"{path} is not a tensor-sequence archive "
                f"(missing {key!r}; found {sorted(entries)[:6]})")
    spec = HistogramSpec(edges=tuple(entries["edges"]))
    tensors = entries["tensors"].astype(np.float64)
    totals = tensors.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore"):
        np.divide(tensors, totals, out=tensors, where=totals > 0)
    sequence = ODTensorSequence(
        tensors=tensors,
        mask=entries["mask"].astype(bool),
        counts=entries["counts"].astype(np.float64),
        spec=spec,
        interval_minutes=float(entries["interval_minutes"]),
        _validated=True)    # validated just below, with the caller's policy
    return validate_sequence(sequence, "load_sequence", policy)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def export_comparison(result: ComparisonResult, path: PathLike) -> None:
    """Dump a comparison's per-step metric rows as JSON."""
    payload = {
        "s": result.s,
        "h": result.h,
        "rows": result.table(),
        "fit_seconds": {name: method.fit_seconds
                        for name, method in result.methods.items()},
        "failures": result.failures(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def import_comparison_rows(path: PathLike) -> list:
    """Read back the rows written by :func:`export_comparison`."""
    payload = json.loads(Path(path).read_text())
    return payload["rows"]
