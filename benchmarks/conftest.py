"""Shared benchmark fixtures: datasets, budgets, trained comparisons.

Every table/figure benchmark draws from the fixtures here so each
(city, s) training sweep happens exactly once per benchmark session.

Scale control
-------------
``REPRO_BENCH_SCALE=full``  (default) — full-size cities (67/79 regions,
    8 days of trips) and real training budgets; the whole suite takes
    tens of minutes on one core.
``REPRO_BENCH_SCALE=smoke`` — 12-region toy cities and tiny budgets for
    a fast end-to-end check of the harness itself (~2 minutes).

Benchmarks run in float32: it halves memory traffic and doubles BLAS
throughput, and forecast quality is unaffected at histogram scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.autodiff as autodiff
from repro.experiments import (MethodBudget, full_roster, prepare,
                               run_comparison)
from repro.trips import chengdu_like_dataset, nyc_like_dataset, toy_dataset

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SMOKE = SCALE == "smoke"


def pytest_report_header(config):
    return f"repro benchmarks: scale={SCALE}"


@pytest.fixture(scope="session", autouse=True)
def float32_mode():
    autodiff.set_default_dtype(np.float32)
    yield
    autodiff.set_default_dtype(np.float64)


@pytest.fixture(scope="session")
def budget():
    """Training budget for the dense deep methods (FC, BF)."""
    if SMOKE:
        return MethodBudget(epochs=2, batch_size=8, max_train_batches=4,
                            max_val_batches=2, patience=2)
    return MethodBudget(epochs=14, batch_size=16, max_train_batches=24,
                        max_val_batches=4, patience=5)


@pytest.fixture(scope="session")
def af_budget():
    """AF's budget: its deeper graph pipeline needs a higher learning
    rate and more optimization steps (found by the tuning sweeps
    documented in EXPERIMENTS.md)."""
    if SMOKE:
        return MethodBudget(epochs=2, batch_size=8, max_train_batches=4,
                            max_val_batches=2, patience=2,
                            learning_rate=3e-3)
    return MethodBudget(epochs=16, batch_size=16, max_train_batches=25,
                        max_val_batches=4, patience=6,
                        learning_rate=3e-3)


@pytest.fixture(scope="session")
def sweep_budget():
    """Cheaper budget for per-point sweeps (Fig. 14, ablations)."""
    if SMOKE:
        return MethodBudget(epochs=1, batch_size=8, max_train_batches=3,
                            max_val_batches=1, patience=1,
                            learning_rate=3e-3)
    return MethodBudget(epochs=5, batch_size=16, max_train_batches=10,
                        max_val_batches=3, patience=3,
                        learning_rate=3e-3)


@pytest.fixture(scope="session")
def nyc_dataset():
    if SMOKE:
        return toy_dataset(n_days=3, n_regions=12, seed=1)
    return nyc_like_dataset(n_days=6, trips_per_interval=450.0, seed=0)


@pytest.fixture(scope="session")
def cd_dataset():
    if SMOKE:
        return toy_dataset(n_days=3, n_regions=14, seed=2)
    return chengdu_like_dataset(n_days=6, trips_per_interval=450.0,
                                seed=100)


MAX_TEST_WINDOWS = 12 if SMOKE else 24


def _comparison(dataset, s, budget, af_budget, keep_predictions):
    data = prepare(dataset, s=s, h=3)
    result = run_comparison(data, full_roster(budget, af_budget),
                            keep_predictions=keep_predictions,
                            max_test_windows=MAX_TEST_WINDOWS)
    return data, result


@pytest.fixture(scope="session")
def nyc_s6(nyc_dataset, budget, af_budget):
    """NYC, s=6: shared by Table II and Figures 8-13."""
    return _comparison(nyc_dataset, 6, budget, af_budget,
                       keep_predictions=True)


@pytest.fixture(scope="session")
def nyc_s3(nyc_dataset, budget, af_budget):
    return _comparison(nyc_dataset, 3, budget, af_budget,
                       keep_predictions=False)


@pytest.fixture(scope="session")
def cd_s6(cd_dataset, budget, af_budget):
    return _comparison(cd_dataset, 6, budget, af_budget,
                       keep_predictions=True)


@pytest.fixture(scope="session")
def cd_s3(cd_dataset, budget, af_budget):
    return _comparison(cd_dataset, 3, budget, af_budget,
                       keep_predictions=False)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Training sweeps are far too heavy for statistical repetition; one
    timed round still registers wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
