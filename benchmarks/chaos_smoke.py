#!/usr/bin/env python3
"""Chaos gate for run_benchmarks.sh: every injected fault must be
repaired, quarantined, or cleanly reported.

Drives :mod:`repro.faultinject` against the robustness stack and exits
non-zero if any fault class slips through:

1.  histogram drift         -> repaired (renormalized + telemetry)
2.  dropped OD cells        -> quarantined (mask cleared + telemetry)
3.  NaN in tensors          -> hard ContractViolation, never repaired
4.  NaN gradients           -> skip policy trains on; abort policy
                               raises NonFiniteGradError
5.  truncated checkpoint    -> CheckpointCorruptError; Trainer resume
                               falls back to best.npz with a warning
6.  bit-flipped checkpoint  -> same (SHA-256 integrity check)
7.  killed roster worker    -> run_comparison retries and succeeds
8.  detect_anomaly names the creating op, fused AND reference kernels
9.  contract checks cost < 5% of a Trainer.fit epoch

Usage: PYTHONPATH=src python3 benchmarks/chaos_smoke.py
"""

import os
import sys
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faultinject
from repro.autodiff import AnomalyError, Tensor, detect_anomaly, set_fused
from repro.autodiff.rnn import GRUCell
from repro.contracts import (ContractPolicy, ContractViolation,
                             contract_policy, validate_sequence)
from repro.core import (BasicFramework, NonFiniteGradError, TrainConfig,
                        Trainer, bf_loss)
from repro.core.trainer import BEST_NAME, CHECKPOINT_NAME
from repro.experiments import prepare, run_comparison
from repro.histograms import (WindowDataset, build_od_tensors,
                              chronological_split)
from repro.persistence import CheckpointCorruptError, load_checkpoint
from repro.trips import toy_dataset

CHECKS = []


def check(name):
    def wrap(fn):
        CHECKS.append((name, fn))
        return fn
    return wrap


class Recorder:
    """Minimal telemetry sink collecting events by type."""

    def __init__(self):
        self.events = []

    def __call__(self, event, fields):
        self.events.append((event, fields))

    def of(self, event):
        return [f for e, f in self.events if e == event]


def _sequence(seed=42):
    dataset = toy_dataset(n_days=3, n_regions=12, seed=seed)
    return build_od_tensors(dataset.trips, dataset.city,
                            n_intervals=dataset.field.n_intervals)


def _trainer(epochs=1, **overrides):
    model = BasicFramework(12, 12, 7, np.random.default_rng(7), rank=3,
                           encoder_dim=8, hidden_dim=12, dropout=0.2)
    loss = lambda p, t, m, r, c: bf_loss(p, t, m, r, c, 1e-4, 1e-4)
    cfg = dict(epochs=epochs, batch_size=8, max_train_batches=6,
               patience=10, seed=3)
    cfg.update(overrides)
    return Trainer(model, loss, TrainConfig(**cfg))


def _windows(sequence):
    windows = WindowDataset(sequence, s=3, h=2)
    return windows, chronological_split(windows)


# ----------------------------------------------------------------------
@check("histogram drift repaired")
def check_drift():
    sequence = _sequence()
    n = faultinject.drift_histograms(sequence.tensors, sequence.mask,
                                     seed=1, fraction=0.2)
    assert n > 0, "injector drifted nothing"
    sink = Recorder()
    policy = ContractPolicy(mode="repair", telemetry=sink)
    validate_sequence(sequence, "chaos", policy)
    repairs = sink.of("contract_repair")
    assert repairs and repairs[0]["n_cells"] == n, \
        f"expected a contract_repair event for {n} cells, got {repairs}"
    sums = sequence.tensors[sequence.mask].sum(axis=-1)
    assert np.allclose(sums, 1.0), "repair left unnormalized histograms"


@check("dropped cells quarantined")
def check_drop():
    sequence = _sequence()
    n = faultinject.drop_cells(sequence.tensors, sequence.mask,
                               seed=2, fraction=0.1)
    assert n > 0, "injector dropped nothing"
    sink = Recorder()
    policy = ContractPolicy(mode="repair", telemetry=sink)
    validate_sequence(sequence, "chaos", policy)
    quarantined = sink.of("contract_quarantine")
    assert quarantined and quarantined[0]["n_cells"] == n, \
        f"expected quarantine of {n} cells, got {quarantined}"
    sums = sequence.tensors[sequence.mask].sum(axis=-1)
    assert np.allclose(sums, 1.0), "quarantine left bad observed cells"


@check("NaN data hard-errors")
def check_nan_data():
    sequence = _sequence()
    faultinject.poison_nan(sequence.tensors, seed=3, n_cells=4)
    try:
        validate_sequence(sequence, "chaos", ContractPolicy(mode="repair"))
    except ContractViolation as exc:
        assert exc.kind == "non_finite", exc.kind
    else:
        raise AssertionError("NaN tensors were accepted")


@check("NaN gradient: skip policy trains on")
def check_nan_grad_skip():
    sequence = _sequence()
    windows, split = _windows(sequence)
    trainer = _trainer(on_nonfinite_grad="skip")
    injector = faultinject.NaNGradInjector(at=[(0, 1)], seed=4)
    sink = Recorder()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = trainer.fit(windows, split, horizon=2, telemetry=sink,
                             after_backward=injector)
    assert injector.injected == [(0, 1)], "injector never fired"
    events = sink.of("nonfinite_grad")
    assert events and events[0]["action"] == "skip", events
    assert all(np.isfinite(loss) for loss in result.train_losses), \
        "NaN leaked into the loss curve despite skip policy"
    state = trainer.model.state_dict()
    assert all(np.isfinite(v).all() for v in state.values()), \
        "NaN leaked into the weights despite skip policy"


@check("NaN gradient: abort policy raises")
def check_nan_grad_abort():
    sequence = _sequence()
    windows, split = _windows(sequence)
    trainer = _trainer(on_nonfinite_grad="abort")
    injector = faultinject.NaNGradInjector(at=[(0, 0)], seed=5)
    try:
        trainer.fit(windows, split, horizon=2, after_backward=injector)
    except NonFiniteGradError as exc:
        assert exc.epoch == 0 and exc.batch == 0, (exc.epoch, exc.batch)
    else:
        raise AssertionError("abort policy did not raise")


def _corrupt_checkpoint_roundtrip(mode):
    sequence = _sequence()
    windows, split = _windows(sequence)
    with tempfile.TemporaryDirectory() as tmp:
        trainer = _trainer(epochs=1)
        trainer.fit(windows, split, horizon=2, checkpoint_dir=tmp)
        rolling = Path(tmp) / CHECKPOINT_NAME
        faultinject.corrupt_file(rolling, seed=6, mode=mode)
        try:
            load_checkpoint(rolling)
        except CheckpointCorruptError:
            pass
        else:
            raise AssertionError(
                f"{mode} checkpoint loaded without complaint")
        # The trainer must fall back to best.npz instead of crashing.
        resumed = _trainer(epochs=1)
        assert (Path(tmp) / BEST_NAME).exists()
        sink = Recorder()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed.fit(windows, split, horizon=2, checkpoint_dir=tmp,
                        resume=True, telemetry=sink)
        fallbacks = sink.of("checkpoint_fallback")
        assert fallbacks and "best" in fallbacks[0]["fallback"], fallbacks


@check("truncated checkpoint: clean error + best.npz fallback")
def check_truncated_checkpoint():
    _corrupt_checkpoint_roundtrip("truncate")


@check("bit-flipped checkpoint: clean error + best.npz fallback")
def check_bitflipped_checkpoint():
    _corrupt_checkpoint_roundtrip("bitflip")


@check("killed roster worker retried to success")
def check_worker_kill():
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        print("    (skipped: no fork start method)")
        return
    dataset = toy_dataset(n_days=2, n_regions=8, seed=0)
    data = prepare(dataset, s=3, h=1)
    from repro.baselines import NaiveHistogram
    with tempfile.TemporaryDirectory() as tmp:
        marker = Path(tmp) / "killed.marker"
        roster = {"nh": faultinject.kill_once(
            lambda d: NaiveHistogram(), marker)}
        sink = Recorder()
        result = run_comparison(data, roster, n_jobs=2, retries=1,
                                max_test_windows=8, telemetry=sink)
        assert marker.exists(), "worker was never killed"
        fails = sink.of("method_fail")
        assert fails and fails[0].get("will_retry"), \
            f"no retried failure recorded: {sink.events}"
        assert not result.methods["nh"].failed, \
            f"method did not recover: {result.methods['nh'].error}"


@check("detect_anomaly names the op (fused + reference)")
def check_anomaly_naming():
    for fused in (True, False):
        set_fused(fused)
        try:
            cell = GRUCell(4, 3, np.random.default_rng(0))
            cell.w_reset.data[0, 0] = np.nan
            x = Tensor(np.ones((2, 4)))
            h = cell.initial_state(2)
            with detect_anomaly():
                try:
                    cell(x, h)
                except AnomalyError as exc:
                    assert exc.op and exc.op != "?", \
                        f"anomaly lost the op name (fused={fused})"
                    assert exc.phase == "forward", exc.phase
                else:
                    raise AssertionError(
                        f"NaN forward undetected (fused={fused})")
        finally:
            set_fused(True)


@check("contract overhead < 5% of a Trainer.fit epoch")
def check_overhead():
    sequence = _sequence()
    windows, split = _windows(sequence)

    def epoch_seconds(mode):
        best = float("inf")
        for _ in range(5):
            with contract_policy(mode):
                trainer = _trainer(epochs=1)
                start = time.perf_counter()
                trainer.fit(windows, split, horizon=2)
                best = min(best, time.perf_counter() - start)
        return best

    epoch_seconds("off")                      # warm caches
    off = epoch_seconds("off")
    on = epoch_seconds("repair")
    overhead = (on - off) / off
    print(f"    (epoch {off * 1e3:.0f} ms off, {on * 1e3:.0f} ms repair, "
          f"overhead {overhead:+.1%})")
    assert overhead < 0.05, \
        f"contract checks cost {overhead:.1%} of an epoch (budget 5%)"


def main() -> int:
    failures = 0
    for name, fn in CHECKS:
        try:
            fn()
        except Exception as exc:
            failures += 1
            print(f"chaos {name}: FAIL ({type(exc).__name__}: {exc})")
        else:
            print(f"chaos {name}: OK")
    if failures:
        print(f"chaos smoke: FAIL ({failures}/{len(CHECKS)} checks)")
        return 1
    print(f"chaos smoke: OK ({len(CHECKS)} fault classes handled)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
