"""Paired bootstrap comparison of two forecasters.

Table II differences between methods can be small; a responsible
reproduction should say whether "AF beats BF" survives resampling noise.
:func:`paired_bootstrap` resamples the *observed test cells* with
replacement and reports the distribution of the per-cell metric
difference between two prediction sets evaluated on identical cells —
the standard paired design that cancels cell-difficulty variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .divergence import METRICS


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison (A vs B, lower=better).

    Attributes
    ----------
    mean_difference:
        Mean of ``metric(A) - metric(B)`` over observed cells (negative
        means A is better).
    ci_low, ci_high:
        Percentile bootstrap confidence interval of the difference.
    p_better:
        Fraction of bootstrap resamples in which A's mean metric is
        strictly lower than B's.
    n_cells:
        Number of observed cells compared.
    """

    mean_difference: float
    ci_low: float
    ci_high: float
    p_better: float
    n_cells: int

    @property
    def significant(self) -> bool:
        """True when the confidence interval excludes zero."""
        return self.ci_high < 0.0 or self.ci_low > 0.0


def paired_bootstrap(truth: np.ndarray,
                     predictions_a: np.ndarray,
                     predictions_b: np.ndarray,
                     mask: np.ndarray,
                     metric: str = "emd",
                     n_resamples: int = 2000,
                     confidence: float = 0.95,
                     seed: int = 0) -> BootstrapResult:
    """Compare two prediction sets on the same observed cells.

    ``truth``/``predictions_*`` are ``(..., K)`` tensors of identical
    shape; ``mask`` selects the observed cells (matching the leading
    axes).  Returns the bootstrap distribution summary of
    ``metric(A) - metric(B)``.
    """
    truth = np.asarray(truth, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if predictions_a.shape != truth.shape \
            or predictions_b.shape != truth.shape:
        raise ValueError("all tensors must share the truth's shape")
    if mask.shape != truth.shape[:-1]:
        raise ValueError("mask must match the cell axes")
    fn = METRICS[metric]
    cells_truth = truth[mask]
    scores_a = fn(cells_truth, np.asarray(predictions_a,
                                          dtype=np.float64)[mask])
    scores_b = fn(cells_truth, np.asarray(predictions_b,
                                          dtype=np.float64)[mask])
    paired = scores_a - scores_b
    n = len(paired)
    if n == 0:
        raise ValueError("no observed cells to compare")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, n, size=(n_resamples, n))
    resampled = paired[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        mean_difference=float(paired.mean()),
        ci_low=float(np.quantile(resampled, alpha)),
        ci_high=float(np.quantile(resampled, 1.0 - alpha)),
        p_better=float((resampled < 0).mean()),
        n_cells=n)
