"""Dirichlet energy: the graph-smoothness norm used by the AF loss.

The advanced framework regularizes the predicted factor tensors with the
Dirichlet norm under the proximity matrix (paper Eq. 11): nearby regions
should carry similar latent features.  For a signal ``x`` with nodes on
one axis, the energy is ``x^T L x`` summed over all remaining axes, which
equals ``1/2 * sum_ij W_ij (x_i - x_j)^2``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor, _record, _run_forward
from .laplacian import laplacian


def dirichlet_energy(x: Tensor, weights: np.ndarray,
                     node_axis: int = 0) -> Tensor:
    """Differentiable Dirichlet energy of ``x`` on the graph ``weights``.

    Parameters
    ----------
    x:
        Signal tensor; ``node_axis`` indexes graph nodes.
    weights:
        Symmetric adjacency/proximity matrix.
    node_axis:
        Axis of ``x`` holding the node dimension.

    Returns
    -------
    Scalar tensor ``sum(x^T L x)`` over all feature axes.

    Evaluates as a single fused graph node when the fused kernels are
    enabled (``repro.autodiff.ops.fused_enabled``); the primitive
    composition is kept in :func:`dirichlet_energy_reference`.
    """
    if not ops.fused_enabled():
        return dirichlet_energy_reference(x, weights, node_axis)
    lap = laplacian(weights)
    axis = node_axis % x.ndim
    if x.shape[axis] != lap.shape[0]:
        raise ValueError(
            f"signal has {x.shape[axis]} nodes on axis {axis}, graph has "
            f"{lap.shape[0]}")
    moved_shape = None
    flat = lx = None

    def run() -> np.ndarray:
        nonlocal moved_shape, flat, lx
        moved = np.moveaxis(x.data, axis, 0)
        moved_shape = moved.shape
        flat = moved.reshape(moved.shape[0], -1)
        lx = lap @ flat
        return np.asarray((flat * lx).sum())

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # d(xᵀLx) = (L + Lᵀ)x; the graph Laplacian is symmetric but the
        # general adjoint costs the same here.
        dflat = float(grad) * (lx + lap.T @ flat)
        x._accumulate(np.moveaxis(
            dflat.reshape(moved_shape), 0, axis))

    out = Tensor._make(_run_forward(run), (x,), backward)
    _record(out, run)
    return out


def dirichlet_energy_reference(x: Tensor, weights: np.ndarray,
                               node_axis: int = 0) -> Tensor:
    """Unfused Dirichlet energy from primitive ops (ground truth)."""
    lap = Tensor(laplacian(weights))
    axis = node_axis % x.ndim
    if x.shape[axis] != lap.shape[0]:
        raise ValueError(
            f"signal has {x.shape[axis]} nodes on axis {axis}, graph has "
            f"{lap.shape[0]}")
    if axis != 0:
        order = [axis] + [i for i in range(x.ndim) if i != axis]
        x = x.transpose(order)
    flat = x.reshape(x.shape[0], -1)
    return (flat * lap.matmul(flat)).sum()


def dirichlet_energy_numpy(x: np.ndarray, weights: np.ndarray,
                           node_axis: int = 0) -> float:
    """Non-differentiable reference implementation (for tests/metrics)."""
    x = np.moveaxis(np.asarray(x, dtype=np.float64), node_axis, 0)
    flat = x.reshape(x.shape[0], -1)
    lap = laplacian(weights)
    return float((flat * (lap @ flat)).sum())
