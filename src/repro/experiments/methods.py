"""Standard method roster for the experiments.

Factories building each of the paper's seven methods (five baselines plus
BF and AF) against a prepared :class:`ExperimentData`.  Training budgets
are configurable so unit tests, examples, and full benchmark runs can use
the same roster at different scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..baselines import (FCBaseline, Forecaster, GaussianProcessForecaster,
                         MRForecaster, NaiveHistogram, NeuralForecaster,
                         VARForecaster, plain_loss)
from ..core import (AdvancedFramework, BasicFramework, TrainConfig, af_loss,
                    bf_loss)
from ..core.config import PracticalHyperParameters
from .runner import ExperimentData, MethodFactory


@dataclass(frozen=True)
class MethodBudget:
    """Training budget applied to the deep methods."""

    epochs: int = 20
    batch_size: int = 16
    max_train_batches: Optional[int] = None
    max_val_batches: Optional[int] = 8
    patience: int = 6
    learning_rate: float = 1e-3
    seed: int = 0
    verbose: bool = False
    #: Training-step execution engine (``"eager"``/``"replay"``); replay
    #: is bit-for-bit identical and faster on fixed-shape batches (see
    #: docs/EXECUTION.md).
    engine: str = "eager"

    def train_config(self) -> TrainConfig:
        return TrainConfig(epochs=self.epochs, batch_size=self.batch_size,
                           learning_rate=self.learning_rate,
                           max_train_batches=self.max_train_batches,
                           max_val_batches=self.max_val_batches,
                           patience=self.patience, seed=self.seed,
                           verbose=self.verbose, engine=self.engine)


QUICK_BUDGET = MethodBudget(epochs=4, batch_size=8, max_train_batches=8,
                            max_val_batches=3, patience=4)
BENCH_BUDGET = MethodBudget(epochs=12, batch_size=16, max_train_batches=24,
                            max_val_batches=6, patience=5)


def make_nh(_: ExperimentData) -> Forecaster:
    return NaiveHistogram()


def make_gp(_: ExperimentData) -> Forecaster:
    return GaussianProcessForecaster()


def make_var(data: ExperimentData) -> Forecaster:
    n_comp = min(40, data.city.n_regions)
    return VARForecaster(lag=min(3, data.windows.s), n_components=n_comp)


def make_mr(_: ExperimentData) -> Forecaster:
    return MRForecaster(epochs=6)


def make_fc(data: ExperimentData,
            budget: MethodBudget = QUICK_BUDGET,
            hp: PracticalHyperParameters = PracticalHyperParameters()
            ) -> Forecaster:
    rng = np.random.default_rng(budget.seed)
    n = data.city.n_regions
    model = FCBaseline(n, n, data.sequence.n_buckets, rng,
                       encoder_dim=hp.encoder_dim, hidden_dim=hp.gru_units,
                       dropout=hp.dropout)
    return NeuralForecaster("fc", model, plain_loss, budget.train_config())


def make_bf(data: ExperimentData,
            budget: MethodBudget = QUICK_BUDGET,
            hp: PracticalHyperParameters = PracticalHyperParameters(),
            lambda_r: float = 1e-4, lambda_c: float = 1e-4) -> Forecaster:
    rng = np.random.default_rng(budget.seed)
    n = data.city.n_regions
    model = BasicFramework(n, n, data.sequence.n_buckets, rng,
                           rank=hp.rank, encoder_dim=hp.encoder_dim,
                           hidden_dim=hp.gru_units, dropout=hp.dropout)

    def loss(pred, truth, mask, r, c):
        return bf_loss(pred, truth, mask, r, c,
                       lambda_r=lambda_r, lambda_c=lambda_c)

    return NeuralForecaster("bf", model, loss, budget.train_config())


def make_af(data: ExperimentData,
            budget: MethodBudget = QUICK_BUDGET,
            hp: PracticalHyperParameters = PracticalHyperParameters(),
            lambda_r: float = 1e-4, lambda_c: float = 1e-4,
            origin_weights: Optional[np.ndarray] = None,
            dest_weights: Optional[np.ndarray] = None,
            cluster_pooling: bool = True,
            dirichlet: bool = True,
            rank: Optional[int] = None,
            rnn_order: Optional[int] = None) -> Forecaster:
    rng = np.random.default_rng(budget.seed)
    w_origin = origin_weights if origin_weights is not None \
        else data.origin_proximity()
    w_dest = dest_weights if dest_weights is not None \
        else data.dest_proximity()
    model = AdvancedFramework(w_origin, w_dest, data.sequence.n_buckets,
                              rng,
                              rank=rank if rank is not None else hp.rank,
                              blocks=hp.gcnn_blocks,
                              rnn_hidden=hp.cnrnn_hidden,
                              rnn_order=(rnn_order if rnn_order is not None
                                         else hp.cnrnn_order),
                              cluster_pooling=cluster_pooling,
                              dropout=hp.dropout)

    if dirichlet:
        def loss(pred, truth, mask, r, c):
            return af_loss(pred, truth, mask, r, c, w_origin, w_dest,
                           lambda_r=lambda_r, lambda_c=lambda_c)
    else:
        # Ablation: Frobenius regularizers (the BF loss) on the AF model.
        def loss(pred, truth, mask, r, c):
            return bf_loss(pred, truth, mask, r, c,
                           lambda_r=lambda_r, lambda_c=lambda_c)

    return NeuralForecaster("af", model, loss, budget.train_config())


def full_roster(budget: MethodBudget = QUICK_BUDGET,
                af_budget: Optional[MethodBudget] = None
                ) -> Dict[str, MethodFactory]:
    """All seven methods of Table II.

    ``af_budget`` optionally gives AF its own training budget — its
    deeper graph pipeline benefits from a higher learning rate and more
    optimization steps than the dense models need.
    """
    af_budget = af_budget or budget
    return {
        "nh": make_nh,
        "gp": make_gp,
        "var": make_var,
        "mr": make_mr,
        "fc": lambda data: make_fc(data, budget),
        "bf": lambda data: make_bf(data, budget),
        "af": lambda data: make_af(data, af_budget),
    }


def deep_roster(budget: MethodBudget = QUICK_BUDGET,
                af_budget: Optional[MethodBudget] = None
                ) -> Dict[str, MethodFactory]:
    """The three deep methods compared in the paper's figures (FC/BF/AF)."""
    af_budget = af_budget or budget
    return {
        "fc": lambda data: make_fc(data, budget),
        "bf": lambda data: make_bf(data, budget),
        "af": lambda data: make_af(data, af_budget),
    }
