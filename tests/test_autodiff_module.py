"""Tests for Module/Parameter infrastructure."""

import numpy as np
import pytest

from repro.autodiff import Linear, Module, Parameter, Sequential, Tensor


class _Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.layer1 = Linear(3, 4, rng)
        self.layer2 = Linear(4, 2, rng)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.layer2(self.layer1(x)) * self.scale


@pytest.fixture
def net(rng):
    return _Net(rng)


class TestParameters:
    def test_named_parameters_recursive(self, net):
        names = dict(net.named_parameters())
        assert "layer1.weight" in names
        assert "layer2.bias" in names
        assert "scale" in names
        assert len(names) == 5

    def test_parameters_in_lists_found(self, rng):
        class ListNet(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2, rng), Linear(2, 2, rng)]

            def forward(self, x):
                return x

        names = dict(ListNet().named_parameters())
        assert "blocks.0.weight" in names and "blocks.1.bias" in names

    def test_num_parameters(self, net):
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 2

    def test_zero_grad(self, net, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        (net(x) ** 2).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestModes:
    def test_train_eval_propagate(self, net):
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_modules_in_lists(self, rng):
        seq = Sequential(Linear(2, 2, rng), Linear(2, 2, rng))
        assert len(list(seq.modules())) == 3

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestSharedParameters:
    """Weight tying: shared objects must be discovered exactly once."""

    def _tied_param_net(self):
        shared = Parameter(np.ones(3))

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.embed = shared
                self.project = shared            # same object, two names

            def forward(self, x):
                return x * self.embed * self.project

        return Net(), shared

    def test_shared_parameter_yielded_once(self):
        net, shared = self._tied_param_net()
        names = list(net.named_parameters())
        assert len(names) == 1
        assert names[0][0] == "embed"            # first attribute wins
        assert names[0][1] is shared

    def test_num_parameters_not_double_counted(self):
        net, _ = self._tied_param_net()
        assert net.num_parameters() == 3

    def test_optimizer_single_steps_tied_weight(self):
        from repro.autodiff import SGD
        net, shared = self._tied_param_net()
        opt = SGD(net.parameters(), lr=1.0)
        shared.grad = np.ones(3)
        opt.step()
        # One parameter slot -> exactly one lr*grad update, not two.
        assert np.allclose(shared.data, 0.0)

    def test_shared_module_visited_once(self, rng):
        tied = Linear(2, 2, rng)

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.encoder = tied
                self.decoder = tied

            def forward(self, x):
                return self.decoder(self.encoder(x))

        net = Net()
        assert len(list(net.modules())) == 2     # net + the one Linear
        assert len(list(net.named_parameters())) == 2   # weight + bias

    def test_state_dict_round_trip_with_tied_weights(self):
        net, shared = self._tied_param_net()
        state = net.state_dict()
        assert set(state) == {"embed"}
        shared.data += 5.0
        net.load_state_dict(state)
        assert np.allclose(shared.data, 1.0)


class TestStateDict:
    def test_round_trip(self, net, rng):
        state = net.state_dict()
        x = Tensor(rng.normal(size=(4, 3)))
        before = net(x).data.copy()
        for p in net.parameters():
            p.data += 1.0
        assert not np.allclose(net(x).data, before)
        net.load_state_dict(state)
        assert np.allclose(net(x).data, before)

    def test_state_dict_is_copy(self, net):
        state = net.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(net.scale.data, 99.0)

    def test_missing_key_raises(self, net):
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self, net):
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, net):
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_preserves_float32_dtype(self, rng):
        """A float32 model must stay float32 through a state-dict restore
        (early stopping, ``load_model``), not be clobbered to float64."""
        from repro.autodiff import set_default_dtype
        set_default_dtype(np.float32)
        try:
            net = _Net(rng)
            state = net.state_dict()
            net.load_state_dict(state)
        finally:
            set_default_dtype(np.float64)
        assert all(p.data.dtype == np.float32 for p in net.parameters())

    def test_load_preserves_float64_against_narrow_saved(self, net):
        """A float64 model loading float32-saved weights stays float64."""
        state = {name: value.astype(np.float32)
                 for name, value in net.state_dict().items()}
        net.load_state_dict(state)
        assert all(p.data.dtype == np.float64 for p in net.parameters())
