"""Differentiable Cheby-Net graph convolution and cluster-aware pooling.

:class:`ChebConv` implements the paper's Eq. 5: ``Q`` filters, each a
vector of ``S`` Chebyshev coefficients per input channel, summed over
input channels, plus bias and nonlinearity (the nonlinearity is left to
the caller so gates can pick sigmoid/tanh).

:class:`GraphPool` implements the paper's geometrical pooling (§V-A2): the
signal is permuted into cluster order (computed by
:mod:`repro.graph.coarsening`) and pooled with non-overlapping windows so
each pooled value summarizes one spatial cluster of regions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import init, ops
from ..autodiff.module import Module, Parameter
from ..autodiff.tensor import Tensor
from .coarsening import Coarsening
from .laplacian import scaled_laplacian


class ChebConv(Module):
    """Chebyshev-polynomial spectral graph convolution.

    Parameters
    ----------
    in_channels, out_channels:
        Signal channels before/after the convolution (the paper's K and Q).
    order:
        Number of Chebyshev terms ``S`` (the paper's filter size).
    weights:
        Proximity/adjacency matrix of the graph the signal lives on.
    rng:
        Generator for weight initialization.
    lambda_max:
        Optional precomputed top Laplacian eigenvalue.

    Input/output
    ------------
    ``x`` of shape ``(..., N, in_channels)`` → ``(..., N, out_channels)``.
    """

    def __init__(self, in_channels: int, out_channels: int, order: int,
                 weights: np.ndarray, rng: np.random.Generator,
                 lambda_max: Optional[float] = None,
                 normalized: bool = False):
        super().__init__()
        if order < 1:
            raise ValueError(f"Chebyshev order must be >= 1, got {order}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.order = order
        self._scaled_lap = Tensor(
            scaled_laplacian(weights, lambda_max=lambda_max,
                             normalized=normalized))
        self.weight = Parameter(init.xavier_uniform(
            (in_channels * order, out_channels), rng,
            gain=1.0 / np.sqrt(order)))
        self.bias = Parameter(np.zeros(out_channels))
        self._basis = None      # lazy (order·N, N) polynomial basis

    @property
    def n_nodes(self) -> int:
        return self._scaled_lap.shape[0]

    def polynomial_basis(self) -> Optional[np.ndarray]:
        """The stacked Chebyshev matrices ``[T_0(L); …; T_{S-1}(L)]``.

        Computed once per layer and cached: the scaled Laplacian is a
        structural constant, so the ``(order·N, N)`` basis lets every
        forward evaluate all Chebyshev terms with a single GEMM (and the
        backward with one more) instead of re-running the ``S``-step
        recursion — the dominant win at small signal widths, and what
        the replay engine captures per signature.  Returns ``None`` for
        ``order < 2``, where the recursion is already a no-op.
        """
        if self.order < 2:
            return None
        lap = self._scaled_lap.data
        if self._basis is None or self._basis.dtype != lap.dtype:
            n = lap.shape[0]
            terms = [np.eye(n, dtype=lap.dtype), lap]
            for _ in range(2, self.order):
                terms.append(2.0 * (lap @ terms[-1]) - terms[-2])
            self._basis = np.ascontiguousarray(
                np.concatenate(terms, axis=0))
        return self._basis

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(
                f"ChebConv expects (batch, N, C) input, got {x.shape}")
        if x.shape[-2] != self.n_nodes:
            raise ValueError(
                f"signal has {x.shape[-2]} nodes, graph has {self.n_nodes}")
        if x.shape[-1] != self.in_channels:
            raise ValueError(
                f"signal has {x.shape[-1]} channels, expected "
                f"{self.in_channels}")
        # The whole convolution — node-first relayout, Chebyshev
        # recursion, channel-mixing GEMM, bias — is one fused graph node
        # (ops.cheb_conv); ops.cheb_conv_reference keeps the primitive
        # composition for gradcheck parity.  The cached polynomial basis
        # collapses the term recursion into a single GEMM each way.
        return ops.cheb_conv(self._scaled_lap, x, self.weight, self.bias,
                             self.order, basis=self.polynomial_basis())


class GraphPool(Module):
    """Cluster-aware pooling over the node axis.

    The permutation and fake-node layout come from a
    :class:`~repro.graph.coarsening.Coarsening`.  ``levels`` selects how
    many matching levels to pool over, i.e. pooling size ``p = 2**levels``.
    Mean pooling divides by the number of *real* nodes per cluster so fake
    (zero) nodes do not bias the average; max pooling uses the standard
    zero-padding convention.
    """

    def __init__(self, coarsening: Coarsening, levels: int,
                 start_level: int = 0, mode: str = "mean",
                 node_axis: int = -2):
        super().__init__()
        if mode not in ("mean", "max"):
            raise ValueError(f"mode must be 'mean' or 'max', got {mode}")
        if levels < 1 or start_level < 0 \
                or start_level + levels > coarsening.levels:
            raise ValueError(
                f"pooling levels [{start_level}, {start_level + levels}] "
                f"outside coarsening depth {coarsening.levels}")
        self.mode = mode
        self.levels = levels
        self.start_level = start_level
        self.stride = 2 ** levels
        self.node_axis = node_axis
        self._coarsening = coarsening
        self._n_real = coarsening.n_original
        if start_level == 0:
            # Input is in original node order: pad + permute, then pool.
            self._perm = np.asarray(coarsening.perm, dtype=np.intp)
            self._in_size = coarsening.n_original
            self._n_padded = len(self._perm)
            is_real = (self._perm < self._n_real).astype(np.float64)
        else:
            # Input already in the coarsened (cluster) order of this level.
            self._perm = None
            self._in_size = coarsening.graphs[start_level].shape[0]
            self._n_padded = self._in_size
            is_real = coarsening.real_mask[start_level].astype(np.float64)
        counts = is_real.reshape(-1, self.stride).sum(axis=1)
        # Clusters made purely of fake nodes pool to zero; avoid 0/0.
        self._mean_scale = np.divide(self.stride, counts,
                                     out=np.zeros_like(counts),
                                     where=counts > 0)

    @property
    def output_size(self) -> int:
        return self._n_padded // self.stride

    @property
    def output_level(self) -> int:
        return self.start_level + self.levels

    def forward(self, x: Tensor) -> Tensor:
        axis = self.node_axis % x.ndim
        if x.shape[axis] != self._in_size:
            raise ValueError(
                f"signal has {x.shape[axis]} nodes, expected {self._in_size}")
        if self._perm is not None:
            x = ops.pad_axis(x, axis, 0, self._n_padded - self._in_size)
            x = ops.take_axis(x, self._perm, axis)
        if self.mode == "max":
            return ops.max_pool_axis(x, axis, self.stride)
        pooled = ops.mean_pool_axis(x, axis, self.stride)
        shape = [1] * x.ndim
        shape[axis] = self.output_size
        return pooled * self._mean_scale.reshape(shape)
