"""repro — Stochastic origin-destination matrix forecasting.

Reproduction of "Stochastic Origin-Destination Matrix Forecasting Using
Dual-Stage Graph Convolutional, Recurrent Neural Networks" (Hu, Yang,
Guo, Jensen, Xiong — ICDE 2020), built from scratch on numpy.

Top-level convenience re-exports cover the typical user path::

    from repro import (toy_dataset, prepare, full_roster, run_comparison)

    data = prepare(toy_dataset(), s=6, h=3)
    result = run_comparison(data, full_roster())
    print(result.format_table())

Subpackages
-----------
``repro.autodiff``
    Reverse-mode autodiff + neural-network substrate (Tensor, GRU, Adam).
``repro.graph``
    Proximity graphs, Cheby-Net convolutions, coarsening and pooling.
``repro.regions`` / ``repro.trips`` / ``repro.histograms``
    City models, synthetic taxi trips, and sparse OD tensor assembly.
``repro.core``
    The paper's contribution: BF and AF frameworks + training.
``repro.baselines``
    NH, GP, VAR, FC/RNN and MR comparison methods.
``repro.metrics``
    KL / JS / EMD and the masked DisSim evaluation.
``repro.experiments``
    The harness regenerating every table and figure of the paper.
"""

from .baselines import (FCBaseline, GaussianProcessForecaster, MRForecaster,
                        NaiveHistogram, NeuralForecaster, VARForecaster)
from .contracts import (ContractPolicy, ContractViolation, contract_policy,
                        get_contract_policy, set_contract_policy)
from .core import (AdvancedFramework, BasicFramework, TrainConfig, Trainer,
                   af_loss, bf_loss)
from .experiments import full_roster, prepare, run_comparison
from .forecast import forecast_latest
from .histograms import (HistogramSpec, ODTensorSequence, WindowDataset,
                         build_od_tensors, chronological_split)
from .metrics import emd, evaluate_forecasts, js_divergence, kl_divergence
from .regions import City, chengdu_like, manhattan_like, toy_city
from .trips import (CityDataset, chengdu_like_dataset, nyc_like_dataset,
                    toy_dataset)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BasicFramework", "AdvancedFramework", "Trainer", "TrainConfig",
    "bf_loss", "af_loss",
    "NaiveHistogram", "GaussianProcessForecaster", "VARForecaster",
    "FCBaseline", "MRForecaster", "NeuralForecaster",
    "City", "manhattan_like", "chengdu_like", "toy_city",
    "CityDataset", "nyc_like_dataset", "chengdu_like_dataset",
    "toy_dataset",
    "HistogramSpec", "ODTensorSequence", "build_od_tensors",
    "WindowDataset", "chronological_split",
    "kl_divergence", "js_divergence", "emd", "evaluate_forecasts",
    "prepare", "run_comparison", "full_roster",
    "forecast_latest",
    "ContractPolicy", "ContractViolation", "contract_policy",
    "get_contract_policy", "set_contract_policy",
]
