#!/usr/bin/env python3
"""Chengdu-style ingestion: raw GPS records → trips → OD tensors.

The paper's CD data set arrives as raw GPS pings (taxi id, position,
occupied flag, timestamp), not trips.  This example exercises that full
ingestion path on a synthetic fleet:

1. generate ground-truth trips for a Chengdu-like city (no night demand),
2. re-emit them as 30-second GPS pings from a taxi fleet,
3. recover trips as maximal occupied runs (odometer distances),
4. build sparse OD tensors and compare against the direct-trip tensors.

Run:  python examples/chengdu_gps_pipeline.py
"""

import numpy as np

from repro.histograms import build_od_tensors
from repro.trips import (GpsSimulator, chengdu_like_dataset, extract_trips)


def main() -> None:
    print("Generating a Chengdu-like dataset (79 regions, night gap)...")
    dataset = chengdu_like_dataset(n_days=2, trips_per_interval=250,
                                   n_regions=79)
    trips = dataset.trips
    print(f"  {len(trips):,} ground-truth trips")

    print("Simulating a 300-taxi fleet emitting GPS pings every 30 s...")
    simulator = GpsSimulator(n_taxis=300, ping_seconds=30.0, seed=5)
    records = simulator.simulate(trips)
    print(f"  {len(records):,} GPS records")

    print("Extracting trips from occupied runs...")
    recovered = extract_trips(records)
    recovery_rate = len(recovered) / len(trips)
    print(f"  {len(recovered):,} trips recovered "
          f"({recovery_rate:.1%} of ground truth; very short rides fall "
          "below the 2-ping minimum)")

    print("\nBuilding OD tensors from both sources...")
    direct = build_od_tensors(trips, dataset.city,
                              n_intervals=dataset.field.n_intervals)
    via_gps = build_od_tensors(recovered, dataset.city,
                               n_intervals=dataset.field.n_intervals)

    print(f"  direct-trip tensors:  {direct.tensors.shape}, "
          f"cell coverage {1 - direct.sparsity().mean():.2%}")
    print(f"  GPS-derived tensors:  {via_gps.tensors.shape}, "
          f"cell coverage {1 - via_gps.sparsity().mean():.2%}")

    both = direct.mask & via_gps.mask
    if both.any():
        l1 = np.abs(direct.tensors[both] - via_gps.tensors[both]).sum(-1)
        print(f"  mean L1 gap between the two histograms on shared cells: "
              f"{l1.mean():.3f}")

    # Speed distributions should agree closely despite the wobble the
    # simulator adds to traces (odometer distance vs straight line).
    print(f"\n  direct mean speed:  {trips.speed_ms.mean():.2f} m/s")
    print(f"  GPS mean speed:     {recovered.speed_ms.mean():.2f} m/s")

    # Night gap check (paper Figs. 8-10 start at 06:00 for CD).
    sparsity = direct.sparsity()[:96]
    night = sparsity[:24].mean()    # 00:00-06:00
    day = sparsity[32:80].mean()    # 08:00-20:00
    print(f"\n  00:00-06:00 sparsity: {night:.3f} (no data, as in the "
          f"paper's CD set); daytime sparsity: {day:.3f}")


if __name__ == "__main__":
    main()
