#!/usr/bin/env python3
"""Manhattan-scale scenario: the paper's NYC experiment, end to end.

Builds the 67-region Manhattan-like city, generates several days of
taxi trips, trains FC / BF / AF, and reports the accuracy both overall
and broken down by time of day — a compact rendition of the paper's
Table II and Figures 8-10 for one dataset.

This is the heavyweight example (~15 minutes on one CPU core); pass
``--quick`` to shrink it to a 2-minute sanity run.

Run:  python examples/nyc_scenario.py [--quick]
"""

import sys

import numpy as np

import repro.autodiff as autodiff
from repro import nyc_like_dataset, prepare, run_comparison
from repro.experiments import (MethodBudget, make_af, make_bf, make_fc,
                               make_nh, time_of_day_analysis)


def main(quick: bool) -> None:
    autodiff.set_default_dtype(np.float32)   # 2x faster full-city training

    n_days = 3 if quick else 8
    budget = MethodBudget(epochs=3 if quick else 10, batch_size=16,
                          max_train_batches=6 if quick else 16,
                          patience=4)

    print(f"Generating {n_days} days of Manhattan-like taxi trips...")
    dataset = nyc_like_dataset(n_days=n_days)
    data = prepare(dataset, s=6, h=3)
    print(f"  {len(dataset.trips):,} trips, {len(data.windows)} windows, "
          f"{data.sequence.sparsity().mean():.1%} mean cell sparsity")

    roster = {
        "nh": make_nh,
        "fc": lambda d: make_fc(d, budget),
        "bf": lambda d: make_bf(d, budget),
        "af": lambda d: make_af(d, budget),
    }
    print("\nTraining FC, BF, AF (this is the slow part)...")
    result = run_comparison(data, roster, keep_predictions=True,
                            max_test_windows=32)
    print("\n" + result.format_table())

    print("\nAccuracy by time of day (EMD per 3-hour block):")
    blocks = time_of_day_analysis(data, result, metric="emd")
    share = blocks["af"]["share"]
    print("  block:  " + "".join(f"{3*b:02d}-{3*b+3:02d}h ".rjust(9)
                                 for b in range(8)))
    print("  share:  " + "".join(f"{s:8.1%} " for s in share))
    for name in ("fc", "bf", "af"):
        row = "".join("     n/a " if np.isnan(v) else f"{v:8.3f} "
                      for v in blocks[name]["value"])
        print(f"  {name:6s}:{row}")

    af = result.methods["af"].evaluation
    fc = result.methods["fc"].evaluation
    print(f"\nAF improves EMD over FC by "
          f"{100 * (1 - af.overall('emd') / fc.overall('emd')):.1f}% "
          "overall.")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
