"""Tests for the experiment harness (runner, methods, figure drivers)."""

import numpy as np
import pytest

from repro.experiments import (MethodBudget, distance_analysis, full_roster,
                               make_af, make_bf, make_nh, prepare,
                               proximity_sweep, run_comparison,
                               sparseness_report, time_of_day_analysis)

TINY = MethodBudget(epochs=1, batch_size=8, max_train_batches=2,
                    max_val_batches=1, patience=1)


@pytest.fixture(scope="module")
def data(dataset):
    return prepare(dataset, s=3, h=2)


@pytest.fixture(scope="module")
def comparison(data):
    roster = {"nh": make_nh,
              "bf": lambda d: make_bf(d, TINY),
              "af": lambda d: make_af(d, TINY)}
    return run_comparison(data, roster, keep_predictions=True,
                          max_test_windows=10)


class TestPrepare:
    def test_structure(self, data, dataset):
        assert data.windows.s == 3 and data.windows.h == 2
        assert data.city.n_regions == dataset.city.n_regions
        assert len(data.split.train) > len(data.split.val)

    def test_proximity_square(self, data):
        w = data.origin_proximity()
        assert w.shape == (data.city.n_regions,) * 2


class TestRunComparison:
    def test_all_methods_present(self, comparison):
        assert set(comparison.methods) == {"nh", "bf", "af"}

    def test_table_rows(self, comparison):
        rows = comparison.table()
        assert len(rows) == 3 * 2      # methods x steps
        assert {"method", "step", "kl", "js", "emd"} <= set(rows[0])
        assert all(np.isfinite(row["emd"]) for row in rows)

    def test_format_table_runs(self, comparison):
        text = comparison.format_table()
        assert "method" in text and "af" in text

    def test_predictions_kept(self, comparison):
        for method in comparison.methods.values():
            assert method.predictions is not None
            assert np.allclose(method.predictions.sum(-1), 1.0)

    def test_max_test_windows_respected(self, comparison):
        for method in comparison.methods.values():
            assert len(method.test_indices) <= 10


class TestSparsenessReport:
    def test_structure(self, data):
        report = sparseness_report(data.sequence)
        assert 0 < report["overall_pair_coverage"] <= 1
        assert set(report["by_min_trips"]) == {1, 3, 5}
        levels = report["by_min_trips"]
        # Stricter preprocessing can only lower coverage.
        assert levels[5]["mean_cell_coverage"] \
            <= levels[1]["mean_cell_coverage"]


class TestTimeOfDayAnalysis:
    def test_blocks_and_shares(self, data, comparison):
        out = time_of_day_analysis(data, comparison, metric="emd")
        assert set(out) == {"nh", "bf", "af"}
        for result in out.values():
            assert result["value"].shape == (8,)
            assert result["share"].sum() == pytest.approx(1.0)

    def test_respects_metric_argument(self, data, comparison):
        emd_out = time_of_day_analysis(data, comparison, metric="emd")
        kl_out = time_of_day_analysis(data, comparison, metric="kl")
        a, b = emd_out["nh"]["value"], kl_out["nh"]["value"]
        valid = ~(np.isnan(a) | np.isnan(b))
        assert not np.allclose(a[valid], b[valid])


class TestDistanceAnalysis:
    def test_bands(self, data, comparison):
        out = distance_analysis(data, comparison, metric="emd")
        for result in out.values():
            assert result["value"].shape[0] == 6
            assert result["share"].sum() == pytest.approx(1.0)


class TestProximitySweep:
    def test_sigma_sweep(self, data):
        result = proximity_sweep(data, "sigma", [0.5, 1.5], budget=TINY,
                                 max_test_windows=6)
        assert result.parameter == "sigma"
        assert len(result.metrics["emd"]) == 2
        assert all(np.isfinite(v) for v in result.metrics["emd"])

    def test_invalid_parameter(self, data):
        with pytest.raises(ValueError):
            proximity_sweep(data, "gamma", [1.0])


class TestFullRoster:
    def test_contains_all_seven_methods(self):
        roster = full_roster(TINY)
        assert set(roster) == {"nh", "gp", "var", "mr", "fc", "bf", "af"}


class TestOracleEvaluation:
    def test_against_analytic_truth(self, data):
        from repro.experiments import (evaluate_against_truth, make_nh,
                                       run_comparison)
        comparison = run_comparison(data, {"nh": make_nh},
                                    keep_predictions=True,
                                    max_test_windows=6)
        results = evaluate_against_truth(data, comparison)
        assert "nh" in results
        evaluation = results["nh"]
        # Every cell is scored (no mask) -> counts equal full tensors.
        n = data.city.n_regions
        assert evaluation.n_cells.sum() == 6 * data.windows.h * n * n
        assert np.isfinite(evaluation.overall("emd"))

    def test_truth_targets_are_valid_histograms(self, data):
        from repro.experiments import true_targets
        targets = true_targets(data, data.split.test[:2])
        assert np.allclose(targets.sum(-1), 1.0)

    def test_oracle_smoother_than_empirical(self, data):
        """The analytic truth has no sampling noise: scoring NH against
        it yields lower KL than scoring against one-hot-ish empirical
        histograms."""
        from repro.experiments import (evaluate_against_truth, make_nh,
                                       run_comparison)
        comparison = run_comparison(data, {"nh": make_nh},
                                    keep_predictions=True,
                                    max_test_windows=6)
        oracle = evaluate_against_truth(data, comparison)["nh"]
        empirical = comparison.methods["nh"].evaluation
        assert oracle.overall("kl") < empirical.overall("kl")
