"""Training loop shared by BF, AF, and the deep-learning baselines.

Implements the paper's published optimization recipe (§VI-A5): Adam with
initial learning rate 0.001, decay ×0.8 every 5 epochs, dropout 0.2 in the
models, early stopping on validation loss with best-weight restoration.

Long runs are crash-safe: ``fit(checkpoint_dir=...)`` writes an atomic
rolling checkpoint (model + optimizer + scheduler + curves + every RNG
the loop consumes) plus a ``best.npz``, and ``resume=True`` continues an
interrupted run with bit-identical final weights versus an uninterrupted
one.  Per-epoch progress can be streamed as JSONL events through the
optional ``telemetry`` hook (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from ..autodiff.module import Module
from ..autodiff.optim import Adam, StepDecay, clip_grad_norm
from ..autodiff.tensor import Tensor
from ..histograms.windows import Split, WindowDataset
from ..telemetry import TelemetrySink, emit, peak_rss_mb
from .losses import masked_frobenius

LossFn = Callable[[Tensor, np.ndarray, np.ndarray,
                   Optional[Tensor], Optional[Tensor]], Tensor]

#: Rolling-checkpoint and best-weights file names inside checkpoint_dir.
CHECKPOINT_NAME = "checkpoint.npz"
BEST_NAME = "best.npz"


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (defaults follow the paper)."""

    epochs: int = 30
    batch_size: int = 16
    learning_rate: float = 1e-3
    decay_factor: float = 0.8
    decay_every: int = 5
    clip_norm: float = 5.0
    patience: int = 8
    seed: int = 0
    max_train_batches: Optional[int] = None
    max_val_batches: Optional[int] = None
    verbose: bool = False


@dataclass
class TrainResult:
    """Learning curves and timing returned by :meth:`Trainer.fit`."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    seconds: float = 0.0
    #: True when training stopped because validation loss went non-finite.
    diverged: bool = False


def _module_rngs(model: Module) -> List[np.random.Generator]:
    """Every distinct Generator owned by the model's modules (dropout).

    Discovery order is the deterministic module-tree walk, so states can
    be saved and restored positionally across processes.
    """
    rngs, seen = [], set()
    for module in model.modules():
        for value in vars(module).values():
            if isinstance(value, np.random.Generator) \
                    and id(value) not in seen:
                seen.add(id(value))
                rngs.append(value)
    return rngs


class Trainer:
    """Fits a forecasting model on windowed OD tensor data.

    The model contract is ``model(history, horizon) -> (prediction,
    r_factors, c_factors)`` where the factor tensors may be ``None`` (as
    for the FC baseline); ``loss_fn(prediction, truth, mask, r, c)``
    builds the training objective.
    """

    def __init__(self, model: Module, loss_fn: LossFn,
                 config: TrainConfig = None):
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self.scheduler = StepDecay(self.optimizer,
                                   factor=self.config.decay_factor,
                                   every=self.config.decay_every)

    # ------------------------------------------------------------------
    def fit(self, dataset: WindowDataset, split: Split, horizon: int,
            checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1, resume: bool = False,
            telemetry: TelemetrySink = None) -> TrainResult:
        """Train with early stopping; optionally crash-safe.

        With ``checkpoint_dir`` set, a rolling ``checkpoint.npz`` is
        written atomically every ``checkpoint_every`` epochs and
        ``best.npz`` tracks the best validation weights.  ``resume=True``
        picks up from the rolling checkpoint (if present) and produces
        bit-identical final weights and loss curves versus a run that
        was never interrupted.  ``telemetry`` receives the per-epoch
        events documented in :mod:`repro.telemetry`.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        best_state = self.model.state_dict()
        stall = 0
        start_epoch = 0
        checkpoint_path = best_path = None
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            checkpoint_path = directory / CHECKPOINT_NAME
            best_path = directory / BEST_NAME
            if resume and checkpoint_path.exists():
                start_epoch, best_state, stall = self._restore(
                    checkpoint_path, rng, result)
        emit(telemetry, "fit_start", epochs=cfg.epochs,
             start_epoch=start_epoch, n_train=len(split.train),
             n_val=len(split.val))
        start = time.time() - result.seconds    # accumulate across resumes
        for epoch in range(start_epoch, cfg.epochs):
            epoch_start = time.time()
            self.model.train()
            epoch_losses = []
            grad_norms = []
            batches = dataset.batches(split.train, cfg.batch_size, rng=rng)
            for b, (histories, targets, masks) in enumerate(batches):
                if cfg.max_train_batches is not None \
                        and b >= cfg.max_train_batches:
                    break
                prediction, r, c = self.model(histories, horizon)
                loss = self.loss_fn(prediction, targets, masks, r, c)
                # optimizer.zero_grad clears the cached parameter list
                # directly instead of re-walking the module tree.
                self.optimizer.zero_grad()
                loss.backward()
                if cfg.clip_norm:
                    grad_norms.append(clip_grad_norm(
                        self.model.parameters(), cfg.clip_norm))
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.scheduler.step()
            train_loss = float(np.mean(epoch_losses)) if epoch_losses \
                else float("nan")
            val_loss = self.evaluate(dataset, split.val, horizon,
                                     max_batches=cfg.max_val_batches)
            result.train_losses.append(train_loss)
            result.val_losses.append(val_loss)
            if cfg.verbose:
                print(f"epoch {epoch + 1:3d}  train {train_loss:.5f}  "
                      f"val {val_loss:.5f}  lr {self.optimizer.lr:.2e}")
            emit(telemetry, "epoch", epoch=epoch, train_loss=train_loss,
                 val_loss=val_loss, lr=self.optimizer.lr,
                 grad_norm=(float(np.mean(grad_norms))
                            if grad_norms else None),
                 seconds=time.time() - epoch_start,
                 peak_rss_mb=peak_rss_mb())
            if not np.isfinite(val_loss):
                # A diverged run must not masquerade as a trained one:
                # flag it, tell the caller, and stop consuming epochs.
                result.diverged = True
                warnings.warn(
                    f"validation loss became non-finite ({val_loss}) at "
                    f"epoch {epoch + 1}; stopping early and restoring "
                    f"the best weights seen so far (epoch "
                    f"{result.best_epoch + 1})", RuntimeWarning)
                emit(telemetry, "divergence", epoch=epoch,
                     val_loss=val_loss)
                break
            if val_loss < result.best_val_loss - 1e-7:
                result.best_val_loss = val_loss
                result.best_epoch = epoch
                best_state = self.model.state_dict()
                stall = 0
                if best_path is not None:
                    from ..persistence import save_model
                    save_model(self.model, best_path)
            else:
                stall += 1
                if stall >= cfg.patience:
                    emit(telemetry, "early_stop", epoch=epoch, stall=stall)
                    break
            if checkpoint_path is not None \
                    and (epoch + 1) % max(checkpoint_every, 1) == 0:
                result.seconds = time.time() - start
                self._checkpoint(checkpoint_path, epoch, rng, result,
                                 best_state, stall)
                emit(telemetry, "checkpoint", epoch=epoch,
                     path=str(checkpoint_path))
        self.model.load_state_dict(best_state)
        result.seconds = time.time() - start
        emit(telemetry, "fit_end", epochs_run=len(result.val_losses),
             best_epoch=result.best_epoch,
             best_val_loss=result.best_val_loss, seconds=result.seconds,
             diverged=result.diverged)
        return result

    # ------------------------------------------------------------------
    def _checkpoint(self, path: Path, epoch: int,
                    rng: np.random.Generator, result: TrainResult,
                    best_state: dict, stall: int) -> None:
        """Write the rolling checkpoint (atomic; see persistence docs)."""
        from ..persistence import save_checkpoint
        save_checkpoint(
            path, self.model, optimizer=self.optimizer,
            scheduler=self.scheduler, epoch=epoch, result=result,
            rng_state=rng.bit_generator.state, best_state=best_state,
            extra={"stall": stall,
                   "module_rng": [g.bit_generator.state
                                  for g in _module_rngs(self.model)]})

    def _restore(self, path: Path, rng: np.random.Generator,
                 result: TrainResult):
        """Load the rolling checkpoint into the live training objects."""
        from ..persistence import load_checkpoint
        checkpoint = load_checkpoint(path, model=self.model,
                                     optimizer=self.optimizer,
                                     scheduler=self.scheduler)
        if checkpoint.rng_state is not None:
            rng.bit_generator.state = checkpoint.rng_state
        module_states = checkpoint.extra.get("module_rng", [])
        for generator, state in zip(_module_rngs(self.model),
                                    module_states):
            generator.bit_generator.state = state
        saved = checkpoint.result_state or {}
        result.train_losses[:] = saved.get("train_losses", [])
        result.val_losses[:] = saved.get("val_losses", [])
        result.best_epoch = saved.get("best_epoch", -1)
        result.best_val_loss = saved.get("best_val_loss", float("inf"))
        result.seconds = saved.get("seconds", 0.0)
        result.diverged = saved.get("diverged", False)
        best_state = checkpoint.best_state or self.model.state_dict()
        return checkpoint.epoch + 1, best_state, \
            int(checkpoint.extra.get("stall", 0))

    # ------------------------------------------------------------------
    def evaluate(self, dataset: WindowDataset, indices: np.ndarray,
                 horizon: int, max_batches: Optional[int] = None) -> float:
        """Mean masked-Frobenius data loss over the given windows."""
        was_training = self.model.training
        self.model.eval()
        losses = []
        batches = dataset.batches(indices, self.config.batch_size)
        for b, (histories, targets, masks) in enumerate(batches):
            if max_batches is not None and b >= max_batches:
                break
            prediction, _, _ = self.model(histories, horizon)
            losses.append(masked_frobenius(prediction, targets,
                                           masks).item())
        if was_training:
            self.model.train()
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        """Forecast tensors for the given windows, ``(B, h, N, N', K)``."""
        was_training = self.model.training
        self.model.eval()
        outputs = []
        for histories, _, _ in dataset.batches(indices,
                                               self.config.batch_size):
            prediction, _, _ = self.model(histories, horizon)
            outputs.append(prediction.numpy())
        if was_training:
            self.model.train()
        return np.concatenate(outputs, axis=0)
