"""Microbenchmark: fused autodiff kernels vs. their reference paths.

Times forward+backward of every fused kernel in ``repro.autodiff.ops``
against the retained primitive-op reference implementation, plus one
full AF and BF training step (forward, loss, backward, Adam update) with
the fused kernels globally on vs. off.  Also compares the three
execution engines (eager vs tape replay vs lowered plan, see
docs/EXECUTION.md) on the same train steps — wall time, allocation
high-water mark, live arena size, and plan shape counters — a 3-epoch
end-to-end smoke fit per engine, and a per-op-kind time profile (via
:func:`repro.autodiff.profile`) of the AF step under each engine.
Results are written as JSON (default: ``BENCH_AUTODIFF.json`` at the
repo root) so the perf trajectory of the autodiff substrate has
recorded data.

Usage::

    PYTHONPATH=src python benchmarks/microbench.py            # full sizes
    PYTHONPATH=src python benchmarks/microbench.py --scale smoke
    PYTHONPATH=src python benchmarks/microbench.py --out /tmp/bench.json

``run_benchmarks.sh`` invokes this before the pytest benchmark sweep.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.autodiff import ReplayEngine, Tensor, ops, profile, \
    set_default_dtype
from repro.autodiff.optim import Adam
from repro.core import (AdvancedFramework, BasicFramework, af_loss, bf_loss)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Problem sizes per scale.  "smoke" mirrors the 12-region toy cities of
#: the benchmark harness; "full" the NYC-like 67-region setting.
SIZES = {
    "smoke": dict(n_nodes=24, n_cols=96, order=3,
                  gru_batch=32, gru_input=48, gru_hidden=48,
                  rec_batch=4, rec_n=16, rec_rank=5, rec_k=8,
                  regions=12, batch=4, s=6, horizon=3, buckets=8,
                  repeats=10),
    "full": dict(n_nodes=67, n_cols=536, order=3,
                 gru_batch=64, gru_input=128, gru_hidden=128,
                 rec_batch=8, rec_n=48, rec_rank=5, rec_k=8,
                 regions=32, batch=8, s=6, horizon=3, buckets=8,
                 repeats=3),
}


def _time(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pair(fused_fn, reference_fn, repeats: int) -> dict:
    fused_s = _time(fused_fn, repeats)
    reference_s = _time(reference_fn, repeats)
    return {
        "fused_ms": round(fused_s * 1e3, 4),
        "reference_ms": round(reference_s * 1e3, 4),
        "speedup": round(reference_s / fused_s, 2),
    }


# ----------------------------------------------------------------------
# kernel benches: forward + backward of one op
# ----------------------------------------------------------------------
def bench_cheb_propagate(sizes, rng) -> dict:
    n, m, order = sizes["n_nodes"], sizes["n_cols"], sizes["order"]
    lap = rng.normal(size=(n, n))
    lap = (lap + lap.T) / 2.0
    x = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    seed = np.ones((n, m, order))

    def run(op):
        x.zero_grad()
        op(lap, x, order).backward(seed)

    return _pair(lambda: run(ops.cheb_propagate),
                 lambda: run(ops.cheb_propagate_reference),
                 sizes["repeats"])


def bench_fused_gru_gates(sizes, rng) -> dict:
    b, i, hdim = sizes["gru_batch"], sizes["gru_input"], sizes["gru_hidden"]
    joint = i + hdim
    x = Tensor(rng.normal(size=(b, i)), requires_grad=True)
    h = Tensor(rng.normal(size=(b, hdim)), requires_grad=True)
    params = [Tensor(rng.normal(size=(joint, hdim)) * 0.1, requires_grad=True)
              if k % 2 == 0 else
              Tensor(np.zeros(hdim), requires_grad=True)
              for k in range(6)]
    seed = np.ones((b, hdim))

    def run(op):
        for t in (x, h, *params):
            t.zero_grad()
        op(x, h, *params).backward(seed)

    return _pair(lambda: run(ops.fused_gru_gates),
                 lambda: run(ops.fused_gru_gates_reference),
                 sizes["repeats"])


def bench_fused_softmax_recovery(sizes, rng) -> dict:
    b, n, rank, k = (sizes["rec_batch"], sizes["rec_n"],
                     sizes["rec_rank"], sizes["rec_k"])
    r = Tensor(rng.normal(size=(b, n, rank, k)), requires_grad=True)
    c = Tensor(rng.normal(size=(b, rank, n, k)), requires_grad=True)
    seed = np.ones((b, n, n, k))

    def run(op):
        r.zero_grad()
        c.zero_grad()
        op(r, c).backward(seed)

    return _pair(lambda: run(ops.fused_softmax_recovery),
                 lambda: run(ops.fused_softmax_recovery_reference),
                 sizes["repeats"])


def bench_fused_masked_frobenius(sizes, rng) -> dict:
    b, n, k = sizes["rec_batch"], sizes["rec_n"], sizes["rec_k"]
    pred = Tensor(rng.uniform(size=(b, 3, n, n, k)), requires_grad=True)
    truth = rng.uniform(size=(b, 3, n, n, k))
    mask = (rng.uniform(size=(b, 3, n, n)) < 0.4).astype(float)

    def run(op):
        pred.zero_grad()
        op(pred, truth, mask).backward()

    return _pair(lambda: run(ops.fused_masked_frobenius),
                 lambda: run(ops.fused_masked_frobenius_reference),
                 sizes["repeats"])


KERNEL_BENCHES = {
    "cheb_propagate": bench_cheb_propagate,
    "fused_gru_gates": bench_fused_gru_gates,
    "fused_softmax_recovery": bench_fused_softmax_recovery,
    "fused_masked_frobenius": bench_fused_masked_frobenius,
}


# ----------------------------------------------------------------------
# end-to-end training-step benches
# ----------------------------------------------------------------------
def _random_proximity(n: int, rng) -> np.ndarray:
    w = rng.uniform(0.1, 1.0, size=(n, n))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


def _train_step_batch(sizes, rng):
    n, k = sizes["regions"], sizes["buckets"]
    b, s, h = sizes["batch"], sizes["s"], sizes["horizon"]
    history = rng.uniform(size=(b, s, n, n, k))
    truth = rng.uniform(size=(b, h, n, n, k))
    mask = (rng.uniform(size=(b, h, n, n)) < 0.4).astype(float)
    return history, truth, mask


def _af_parts(sizes, seed: int = 0):
    """(model, loss_fn, batch, horizon) for one AF training step."""
    rng = np.random.default_rng(seed)
    n = sizes["regions"]
    w = _random_proximity(n, rng)
    model = AdvancedFramework(w, w, sizes["buckets"],
                              np.random.default_rng(seed), rank=4,
                              rnn_hidden=8, rnn_order=2)

    def loss_fn(prediction, truth, mask, r, c):
        return af_loss(prediction, truth, mask, r, c, w, w)

    return model, loss_fn, _train_step_batch(sizes, rng), sizes["horizon"]


def _bf_parts(sizes, seed: int = 0):
    """(model, loss_fn, batch, horizon) for one BF training step."""
    rng = np.random.default_rng(seed)
    n = sizes["regions"]
    model = BasicFramework(n, n, sizes["buckets"],
                           np.random.default_rng(seed), rank=4,
                           encoder_dim=16, hidden_dim=32)
    return model, bf_loss, _train_step_batch(sizes, rng), sizes["horizon"]


def _eager_step(parts):
    """An eager train step closure (forward, loss, backward, Adam)."""
    model, loss_fn, (history, truth, mask), horizon = parts
    optimizer = Adam(model.parameters())

    def step():
        prediction, r, c = model(history, horizon)
        loss = loss_fn(prediction, truth, mask, r, c)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    return step


def _replay_step(parts, lower: bool = False):
    """A replay-engine train step closure; also returns the engine."""
    model, loss_fn, (history, truth, mask), horizon = parts
    optimizer = Adam(model.parameters(), flat=True)
    engine = ReplayEngine(model, loss_fn, lower=lower)

    def step():
        loss = engine.forward(history, truth, mask, horizon)
        optimizer.zero_grad()
        engine.backward(loss)
        optimizer.step()

    return step, engine


def _lowered_step(parts):
    """A lowered-plan train step closure; also returns the engine."""
    return _replay_step(parts, lower=True)


def make_af_step(sizes, seed: int = 0):
    """One AF training step (forward, Eq. 11 loss, backward, Adam)."""
    return _eager_step(_af_parts(sizes, seed))


def make_bf_step(sizes, seed: int = 0):
    """One BF training step (forward, Eq. 4 loss, backward, Adam)."""
    return _eager_step(_bf_parts(sizes, seed))


def bench_train_step(make_step, sizes) -> dict:
    """Time one training step with fused kernels on vs. off.

    The model is rebuilt per mode from the same seed so both paths
    optimize identical weights.  The two modes are timed in interleaved
    rounds (fused, reference, fused, ...) so slow periods of a noisy
    host hit both paths equally instead of skewing the ratio.
    """
    repeats = sizes["repeats"]
    with ops.use_fused(True):
        step_fused = make_step(sizes)
        step_fused()                                # warmup
    with ops.use_fused(False):
        step_reference = make_step(sizes)
        step_reference()                            # warmup
    fused_s = reference_s = float("inf")
    for _ in range(repeats):
        with ops.use_fused(True):
            start = time.perf_counter()
            step_fused()
            fused_s = min(fused_s, time.perf_counter() - start)
        with ops.use_fused(False):
            start = time.perf_counter()
            step_reference()
            reference_s = min(reference_s, time.perf_counter() - start)
    return {
        "fused_ms": round(fused_s * 1e3, 2),
        "reference_ms": round(reference_s * 1e3, 2),
        "speedup": round(reference_s / fused_s, 2),
    }


# ----------------------------------------------------------------------
# execution-engine benches: eager vs tape replay (docs/EXECUTION.md)
# ----------------------------------------------------------------------
def _alloc_peak_bytes(step, rounds: int = 3) -> int:
    """Allocation high-water mark (bytes) of a step above steady state.

    tracemalloc sees numpy array buffers (numpy registers them with the
    tracemalloc C API), so this captures the per-step Tensor/grad churn
    the replay arena is meant to bound.  One traced step runs first so
    persistent state (the replay arena, optimizer slots) is already in
    the baseline; the reported peak is relative to that baseline.  Run
    separately from the wall-clock timing — tracing slows every
    allocation down.
    """
    step()                                          # steady state first
    tracemalloc.start()
    try:
        step()                  # persistent buffers enter the baseline
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(rounds):
            step()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return max(peak - baseline, 0)


def bench_engine_step(make_parts, sizes) -> dict:
    """Eager vs replay on the same training step, same seed.

    Wall time is interleaved best-of-``repeats`` (like
    :func:`bench_train_step`); the allocation high-water mark is
    measured in a separate traced pass, and the replay side also
    reports its live buffer arena (``ReplayEngine.arena_nbytes``).
    """
    repeats = sizes["repeats"]
    step_eager = _eager_step(make_parts(sizes))
    step_replay, engine = _replay_step(make_parts(sizes))
    step_eager()                                    # warmup
    step_replay()                                   # warmup = capture
    step_replay()                                   # first true replay
    eager_s = replay_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        step_eager()
        eager_s = min(eager_s, time.perf_counter() - start)
        start = time.perf_counter()
        step_replay()
        replay_s = min(replay_s, time.perf_counter() - start)
    eager_peak = _alloc_peak_bytes(_eager_step(make_parts(sizes)))
    replay_fresh, engine_fresh = _replay_step(make_parts(sizes))
    replay_fresh()                                  # capture outside trace
    replay_peak = _alloc_peak_bytes(replay_fresh)
    return {
        "eager_ms": round(eager_s * 1e3, 2),
        "replay_ms": round(replay_s * 1e3, 2),
        "speedup": round(eager_s / replay_s, 2),
        "eager_alloc_peak_bytes": int(eager_peak),
        "replay_alloc_peak_bytes": int(replay_peak),
        "replay_arena_bytes": int(engine_fresh.arena_nbytes()),
        "engine_stats": engine.stats(),
    }


def bench_lowered_step(make_parts, sizes) -> dict:
    """Lowered plan vs replay vs eager on the same training step.

    All three run the full step (forward, loss, backward, Adam) and are
    timed in interleaved rounds so host noise hits each path equally.
    The lowered side warms up three times: capture, compile-and-run,
    then steady state.  Also reports the allocation high-water mark of
    the lowered step (a flat plan should allocate almost nothing) and
    the plan shape counters from :meth:`ReplayEngine.plan_stats`.
    """
    repeats = sizes["repeats"]
    step_eager = _eager_step(make_parts(sizes))
    step_replay, _ = _replay_step(make_parts(sizes))
    step_lowered, engine = _lowered_step(make_parts(sizes))
    step_eager()                                    # warmup
    step_replay()                                   # warmup = capture
    step_replay()                                   # first true replay
    step_lowered()                                  # capture
    step_lowered()                                  # lower + first plan run
    step_lowered()                                  # steady state
    best = {"eager": float("inf"), "replay": float("inf"),
            "lowered": float("inf")}
    for _ in range(repeats):
        for key, step in (("eager", step_eager), ("replay", step_replay),
                          ("lowered", step_lowered)):
            start = time.perf_counter()
            step()
            best[key] = min(best[key], time.perf_counter() - start)
    lowered_fresh, engine_fresh = _lowered_step(make_parts(sizes))
    lowered_fresh()                                 # capture outside trace
    lowered_fresh()                                 # compile outside trace
    lowered_peak = _alloc_peak_bytes(lowered_fresh)
    plan = engine.plan_stats()
    return {
        "lowered_ms": round(best["lowered"] * 1e3, 2),
        "replay_ms": round(best["replay"] * 1e3, 2),
        "eager_ms": round(best["eager"] * 1e3, 2),
        "speedup_vs_replay": round(best["replay"] / best["lowered"], 2),
        "speedup_vs_eager": round(best["eager"] / best["lowered"], 2),
        "lowered_alloc_peak_bytes": int(lowered_peak),
        "lowered_arena_bytes": int(engine_fresh.arena_nbytes()),
        "plan_instructions": plan["plan_instructions"],
        "plan_fused_chains": plan["plan_fused_chains"],
        "plan_fused_ops": plan["plan_fused_ops"],
        "plan_elided": plan["plan_elided"],
        "plan_scratch_nbytes": plan["plan_scratch_nbytes"],
        "engine_stats": engine.stats(),
    }


def bench_smoke_epochs(epochs: int = 3) -> dict:
    """End-to-end ``Trainer.fit`` wall time per engine, 3-epoch smoke.

    Same toy city and model seed for every engine, so besides timing it
    re-checks that replay and the lowered plan reproduce the eager loss
    curve exactly.
    """
    from repro.core import TrainConfig, Trainer
    from repro.histograms import (WindowDataset, build_od_tensors,
                                  chronological_split)
    from repro.trips import toy_dataset

    dataset = toy_dataset(n_days=3, n_regions=12, seed=42)
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    windows = WindowDataset(sequence, s=3, h=2)
    split = chronological_split(windows)
    report = {}
    curves = {}
    for engine in ("eager", "replay", "lowered"):
        model = BasicFramework(12, 12, 7, np.random.default_rng(7),
                               rank=3, encoder_dim=8, hidden_dim=12,
                               dropout=0.2)
        config = TrainConfig(epochs=epochs, batch_size=8, patience=10,
                             seed=3, engine=engine)
        trainer = Trainer(model, bf_loss, config)
        start = time.perf_counter()
        result = trainer.fit(windows, split, horizon=2)
        report[f"{engine}_s"] = round(time.perf_counter() - start, 3)
        curves[engine] = result.train_losses
    report["epochs"] = epochs
    report["speedup"] = round(report["eager_s"] / report["replay_s"], 2)
    report["lowered_speedup"] = round(report["eager_s"]
                                      / report["lowered_s"], 2)
    report["curves_identical"] = (curves["eager"] == curves["replay"]
                                  == curves["lowered"])
    return report


def profile_engine_step(make_parts, sizes, top: int = 8) -> dict:
    """Top per-op-kind costs of one step under each engine.

    The lowered engine reports per-*instruction* timings: specialized
    instructions keep their op label, fused chains show up as
    ``fused_elementwise``, and elided views vanish from the table.
    """
    report = {}
    for engine_name in ("eager", "replay", "lowered"):
        if engine_name == "eager":
            step = _eager_step(make_parts(sizes))
        else:
            step, _ = _replay_step(make_parts(sizes),
                                   lower=(engine_name == "lowered"))
        step()                                      # warmup / capture
        step()                                      # replay / lower+run
        with profile() as profiler:
            step()
        report[engine_name] = {
            label: {key: (round(value, 6) if isinstance(value, float)
                          else value)
                    for key, value in entry.items()}
            for label, entry in
            list(profiler.as_dict().items())[:top]}
    return report


# ----------------------------------------------------------------------
def run_microbench(scale: str = "full", dtype: str = "float32") -> dict:
    """Run every bench; returns the report dict (also used by tests)."""
    if scale not in SIZES:
        raise ValueError(f"scale must be one of {sorted(SIZES)}, "
                         f"got {scale!r}")
    sizes = SIZES[scale]
    set_default_dtype(np.dtype(dtype).type)
    try:
        rng = np.random.default_rng(42)
        kernels = {name: bench(sizes, rng)
                   for name, bench in KERNEL_BENCHES.items()}
        train_step = {
            "af": bench_train_step(make_af_step, sizes),
            "bf": bench_train_step(make_bf_step, sizes),
        }
        engine_step = {
            "af": bench_engine_step(_af_parts, sizes),
            "bf": bench_engine_step(_bf_parts, sizes),
        }
        lowered_step = {
            "af": bench_lowered_step(_af_parts, sizes),
            "bf": bench_lowered_step(_bf_parts, sizes),
        }
        smoke_epochs = bench_smoke_epochs()
        op_profile = profile_engine_step(_af_parts, sizes)
    finally:
        set_default_dtype(np.float64)
    return {
        "generated_by": "benchmarks/microbench.py",
        "scale": scale,
        "dtype": dtype,
        "timing": "best-of-%d wall clock, forward+backward" % sizes["repeats"],
        "kernels": kernels,
        "train_step": train_step,
        "engine_step": engine_step,
        "lowered_step": lowered_step,
        "smoke_epochs": smoke_epochs,
        "af_step_op_profile": op_profile,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="full", choices=sorted(SIZES))
    parser.add_argument("--dtype", default="float32",
                        choices=("float32", "float64"))
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_AUTODIFF.json"))
    args = parser.parse_args(argv)
    report = run_microbench(scale=args.scale, dtype=args.dtype)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for section in ("kernels", "train_step"):
        for name, row in report[section].items():
            print(f"  {name:24s} fused {row['fused_ms']:9.3f} ms   "
                  f"reference {row['reference_ms']:9.3f} ms   "
                  f"{row['speedup']:.2f}x")
    for name, row in report["engine_step"].items():
        print(f"  {name + ' engine':24s} replay {row['replay_ms']:8.3f} ms  "
              f"eager {row['eager_ms']:9.3f} ms   {row['speedup']:.2f}x  "
              f"(alloc peak {row['replay_alloc_peak_bytes'] / 1e6:.1f} vs "
              f"{row['eager_alloc_peak_bytes'] / 1e6:.1f} MB, arena "
              f"{row['replay_arena_bytes'] / 1e6:.1f} MB)")
    for name, row in report["lowered_step"].items():
        print(f"  {name + ' lowered':24s} lowered {row['lowered_ms']:7.3f} ms"
              f"  replay {row['replay_ms']:8.3f} ms   "
              f"{row['speedup_vs_replay']:.2f}x vs replay, "
              f"{row['speedup_vs_eager']:.2f}x vs eager  "
              f"({row['plan_instructions']} instrs, "
              f"{row['plan_fused_ops']} ops in "
              f"{row['plan_fused_chains']} fused chains, alloc peak "
              f"{row['lowered_alloc_peak_bytes'] / 1e6:.1f} MB)")
    smoke = report["smoke_epochs"]
    print(f"  {'3-epoch smoke fit':24s} replay {smoke['replay_s']:8.3f} s   "
          f"eager {smoke['eager_s']:9.3f} s   {smoke['speedup']:.2f}x  "
          f"(lowered {smoke['lowered_s']:.3f} s, "
          f"{smoke['lowered_speedup']:.2f}x; curves identical: "
          f"{smoke['curves_identical']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
