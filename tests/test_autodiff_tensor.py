"""Tests for the reverse-mode autodiff Tensor."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, ops, tensor, zeros, ones


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_from_int_array_casts(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.item() == 3.5
        assert t.size == 1

    def test_helpers(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert tensor([1.0]).shape == (1,)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert np.allclose(b.data, [2.0, 4.0])

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackwardBasics:
    def test_scalar_backward_default_seed(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(4.0)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_nonscalar_needs_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_explicit_grad_shape_checked(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a * 2
        with pytest.raises(ValueError):
            b.backward(grad=np.ones(3))

    def test_gradient_accumulates_on_reuse(self):
        a = Tensor(3.0, requires_grad=True)
        (a * a + a).backward()   # d/da = 2a + 1 = 7
        assert a.grad == pytest.approx(7.0)

    def test_retain_graph_allows_second_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * a
        b.backward(retain_graph=True)
        first = float(a.grad)
        a.grad = None
        b.backward()
        assert float(a.grad) == pytest.approx(first)

    def test_diamond_graph_total_derivative(self):
        # f = (a*2) + (a*3); df/da = 5
        a = Tensor(1.0, requires_grad=True)
        (a * 2 + a * 3).backward()
        assert a.grad == pytest.approx(5.0)


class TestArithmetic:
    def test_add_sub_mul_div_values(self):
        a, b = Tensor([4.0, 9.0]), Tensor([2.0, 3.0])
        assert np.allclose((a + b).data, [6, 12])
        assert np.allclose((a - b).data, [2, 6])
        assert np.allclose((a * b).data, [8, 27])
        assert np.allclose((a / b).data, [2, 3])

    def test_reflected_ops_with_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        assert np.allclose((3.0 + a).data, [5])
        assert np.allclose((3.0 - a).data, [1])
        assert np.allclose((3.0 * a).data, [6])
        assert np.allclose((4.0 / a).data, [2])

    def test_gradcheck_binary_ops(self, rng):
        a = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        check_gradients(lambda a, b: (a * b).sum(), [a, b])
        check_gradients(lambda a, b: (a / b).sum(), [a, b])
        check_gradients(lambda a, b: (a - b).sum(), [a, b])

    def test_gradcheck_broadcasting(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda a, b: ((a + b) * (a * b)).sum(), [a, b])

    def test_gradcheck_scalar_broadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(2.5, requires_grad=True)
        check_gradients(lambda a, b: (a * b + b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3,))) + 0.5, requires_grad=True)
        check_gradients(lambda a: (a ** 3).sum(), [a])
        with pytest.raises(TypeError):
            a ** np.array([1.0, 2.0, 3.0])

    def test_neg(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda a: (-a * 2.0).sum(), [a])


class TestMatmul:
    def test_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (3, 5)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_broadcast_batch(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        check_gradients(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = a @ v
        assert out.shape == (3,)
        check_gradients(lambda a, v: (a @ v).sum(), [a, v])

    def test_vector_matrix(self, rng):
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = v @ a
        assert out.shape == (4,)
        check_gradients(lambda v, a: (v @ a).sum(), [v, a])


class TestReductions:
    def test_sum_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.sum().size == 1
        assert a.sum(axis=1).shape == (2, 4)
        assert a.sum(axis=(0, 2)).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1, 4)
        check_gradients(lambda a: (a.sum(axis=1) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        assert a.mean().item() == pytest.approx(a.data.mean())
        assert np.allclose(a.mean(axis=0).data, a.data.mean(axis=0))
        check_gradients(lambda a: (a.mean(axis=1) ** 2).sum(), [a])

    def test_max(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert a.max().item() == pytest.approx(a.data.max())
        check_gradients(lambda a: a.max(axis=1).sum(), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert a.reshape(3, 4).shape == (3, 4)
        assert a.reshape((4, 3)).shape == (4, 3)
        assert a.reshape(2, -1).shape == (2, 6)
        check_gradients(lambda a: (a.reshape(12) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose().shape == (4, 3, 2)
        assert a.transpose((1, 0, 2)).shape == (3, 2, 4)
        assert a.T.shape == (4, 3, 2)
        check_gradients(lambda a: (a.transpose((2, 0, 1)) ** 2).sum(), [a])

    def test_transpose_negative_axes_backward(self, rng):
        """Regression: argsort on raw negative axes built a wrong inverse
        permutation, scattering the gradient to the wrong axes."""
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose((0, -1, 1)).shape == (2, 4, 3)
        weights = rng.normal(size=(2, 4, 3))
        loss = (a.transpose((0, -1, 1)) * Tensor(weights)).sum()
        loss.backward()
        assert np.allclose(a.grad, weights.transpose(0, 2, 1))
        check_gradients(
            lambda a: (a.transpose((0, -1, 1)) ** 2).sum(), [a])
        check_gradients(
            lambda a: (a.transpose((-1, -2, -3)) ** 3).sum(), [a])

    def test_swapaxes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        check_gradients(lambda a: (a.swapaxes(1, 2) ** 2).sum(), [a])

    def test_getitem_slice(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert a[1:3].shape == (2, 5)
        assert a[:, 2].shape == (4,)
        check_gradients(lambda a: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_integer_array(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        out = a[idx]
        assert out.shape == (4, 3)
        # repeated index 2 must accumulate gradient twice
        out.sum().backward()
        assert a.grad[2].sum() == pytest.approx(6.0)
        assert a.grad[1].sum() == pytest.approx(0.0)

    def test_expand_squeeze(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert a.expand_dims(1).shape == (3, 1, 4)
        assert a.expand_dims(1).squeeze(1).shape == (3, 4)
        check_gradients(lambda a: (a.expand_dims(0) ** 2).sum(), [a])

    def test_len(self):
        assert len(Tensor(np.zeros((7, 2)))) == 7
