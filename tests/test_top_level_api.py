"""Tests of the package's public surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.autodiff", "repro.graph", "repro.regions", "repro.trips",
        "repro.histograms", "repro.core", "repro.baselines",
        "repro.metrics", "repro.experiments", "repro.persistence",
        "repro.forecast", "repro.viz", "repro.cli",
    ])
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_no_accidental_float32_default(self):
        import numpy as np

        from repro.autodiff import get_default_dtype
        assert get_default_dtype() is np.float64

    def test_quickstart_snippet_objects_exist(self):
        """The README quickstart names must exist with the documented
        signatures."""
        from repro import full_roster, prepare, run_comparison, toy_dataset
        assert callable(prepare) and callable(run_comparison)
        assert callable(full_roster) and callable(toy_dataset)
