"""Tests for the CNRNN (graph-convolutional GRU)."""

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor
from repro.core import CNRNNCell, GraphSeq2Seq
from repro.graph import build_proximity


@pytest.fixture
def weights(rng):
    return build_proximity(rng.uniform(0, 4, size=(8, 2)))


class TestCNRNNCell:
    def test_state_shape(self, weights, rng):
        cell = CNRNNCell(weights, in_channels=3, hidden_channels=5,
                         order=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 8, 3)))
        h = cell(x, cell.initial_state(2))
        assert h.shape == (2, 8, 5)

    def test_state_bounded(self, weights, rng):
        cell = CNRNNCell(weights, 2, 4, order=2, rng=rng)
        h = cell.initial_state(1)
        for _ in range(30):
            h = cell(Tensor(rng.normal(size=(1, 8, 2)) * 5), h)
        assert np.abs(h.data).max() <= 1.0 + 1e-9

    def test_gradients_through_time(self, weights, rng):
        cell = CNRNNCell(weights, 2, 3, order=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 2)), requires_grad=True)
        h = cell.initial_state(1)
        for _ in range(4):
            h = cell(x, h)
        (h ** 2).sum().backward()
        assert np.abs(x.grad).sum() > 0

    def test_spatial_mixing(self, weights, rng):
        """With order >= 2 the state of a region depends on its
        neighbours' inputs — the whole point of CNRNN."""
        cell = CNRNNCell(weights, 1, 2, order=3, rng=rng)
        x = np.zeros((1, 8, 1))
        h0 = cell.initial_state(1)
        base = cell(Tensor(x), h0).numpy()
        neighbour = int(np.argmax(weights[0]))
        x2 = x.copy()
        x2[0, neighbour, 0] = 5.0
        bumped = cell(Tensor(x2), cell.initial_state(1)).numpy()
        assert not np.allclose(base[0, 0], bumped[0, 0])


class TestGraphSeq2Seq:
    def test_forecast_shape(self, weights, rng):
        model = GraphSeq2Seq(weights, in_channels=4, hidden_channels=6,
                             out_channels=4, order=2, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 5, 8, 4))), horizon=3)
        assert out.shape == (2, 3, 8, 4)

    def test_different_out_channels(self, weights, rng):
        model = GraphSeq2Seq(weights, 4, 6, 2, order=2, rng=rng)
        out = model(Tensor(rng.normal(size=(1, 3, 8, 4))), horizon=2)
        assert out.shape == (1, 2, 8, 2)

    def test_rejects_wrong_ndim(self, weights, rng):
        model = GraphSeq2Seq(weights, 4, 6, 4, order=2, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.normal(size=(5, 8, 4))), horizon=1)

    def test_rejects_zero_layers(self, weights, rng):
        with pytest.raises(ValueError):
            GraphSeq2Seq(weights, 4, 6, 4, order=2, rng=rng, num_layers=0)

    def test_multi_layer(self, weights, rng):
        model = GraphSeq2Seq(weights, 3, 5, 3, order=2, rng=rng,
                             num_layers=2)
        out = model(Tensor(rng.normal(size=(2, 4, 8, 3))), horizon=2)
        assert out.shape == (2, 2, 8, 3)

    def test_all_params_receive_gradients(self, weights, rng):
        model = GraphSeq2Seq(weights, 3, 4, 3, order=2, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 3))), horizon=2)
        (out ** 2).sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_learns_periodic_graph_signal(self, weights, rng):
        """CNRNN seq2seq should fit a simple oscillating graph signal."""
        model = GraphSeq2Seq(weights, 1, 8, 1, order=2, rng=rng)
        t = np.arange(30)
        series = np.sin(t[:, None] * 0.7 + np.arange(8) * 0.2)[..., None]
        histories = np.stack([series[i:i + 4] for i in range(20)])
        targets = np.stack([series[i + 4:i + 5] for i in range(20)])
        opt = Adam(model.parameters(), lr=0.02)
        first = None
        for _ in range(60):
            out = model(Tensor(histories), horizon=1)
            loss = ((out - Tensor(targets)) ** 2).mean()
            if first is None:
                first = loss.item()
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5
