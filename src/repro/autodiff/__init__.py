"""Numpy-based reverse-mode autodiff and neural-network substrate.

The deep-learning stack the paper builds on, reimplemented from scratch:

* :class:`Tensor` — reverse-mode automatic differentiation.
* :mod:`~repro.autodiff.ops` — differentiable functions (sigmoid, tanh,
  softmax, concat/stack, dropout, graph-pooling primitives, ...).
* :class:`Module` / :class:`Parameter` — network composition.
* :class:`Linear`, :class:`Dropout`, :class:`MLP` — dense layers.
* :class:`GRUCell` / :class:`GRU` / :class:`Seq2Seq` — recurrence.
* :class:`Adam`, :class:`SGD`, :class:`StepDecay` — optimization with the
  paper's published schedule (Adam, lr 0.001, x0.8 every 5 epochs).
* :func:`check_gradients` — numerical verification used by the tests.
"""

from . import init, ops
from .gradcheck import check_gradients, numerical_gradient
from .ops import fused_enabled, set_fused, use_fused
from .layers import (MLP, Activation, Dropout, Embedding, LayerNorm,
                     Linear, Sequential)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, StepDecay, clip_grad_norm
from .profiler import OpProfiler, profile
from .lowering import (LoweredPlan, LoweringFallbackWarning, lower_tape)
from .replay import CaptureMismatchWarning, InferenceEngine, ReplayEngine
from .rnn import GRU, GRUCell, LSTMCell, Seq2Seq
from .tensor import (AnomalyError, Tensor, anomaly_enabled, detect_anomaly,
                     get_default_dtype, ones, set_default_dtype, tensor,
                     zeros)

__all__ = [
    "Tensor", "tensor", "zeros", "ones",
    "set_default_dtype", "get_default_dtype",
    "fused_enabled", "set_fused", "use_fused",
    "detect_anomaly", "anomaly_enabled", "AnomalyError",
    "ops", "init",
    "Module", "Parameter",
    "Linear", "Dropout", "Sequential", "Activation", "MLP", "Embedding",
    "LayerNorm",
    "GRUCell", "GRU", "LSTMCell", "Seq2Seq",
    "Optimizer", "SGD", "Adam", "StepDecay", "clip_grad_norm",
    "ReplayEngine", "InferenceEngine", "CaptureMismatchWarning",
    "LoweredPlan", "LoweringFallbackWarning", "lower_tape",
    "profile", "OpProfiler",
    "check_gradients", "numerical_gradient",
]
