"""CNRNN: gated recurrence with graph-convolutional gates (AF stage 2).

Paper §V-B, Eqs. 7–10: the structure of a GRU cell is kept, but every
dense gate transformation is replaced with a Cheby-Net graph convolution
over the side's proximity graph, so the recurrent state lives *on the
graph* — one feature vector per region — and spatial correlations are
preserved through time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autodiff import ops
from ..autodiff.module import Module
from ..autodiff.tensor import Tensor
from ..graph.chebconv import ChebConv


class CNRNNCell(Module):
    """Graph-convolutional GRU cell (paper Eqs. 7–10).

    States and inputs are graph signals ``(batch, N, channels)``; the
    reset gate S, update gate U and candidate state all come from
    Cheby-Net convolutions over the given proximity graph.
    """

    def __init__(self, graph_weights: np.ndarray, in_channels: int,
                 hidden_channels: int, order: int,
                 rng: np.random.Generator):
        super().__init__()
        self.in_channels = in_channels
        self.hidden_channels = hidden_channels
        joint = in_channels + hidden_channels
        self.conv_reset = ChebConv(joint, hidden_channels, order,
                                   graph_weights, rng)
        self.conv_update = ChebConv(joint, hidden_channels, order,
                                    graph_weights, rng)
        self.conv_cand = ChebConv(joint, hidden_channels, order,
                                  graph_weights, rng)
        self.n_nodes = self.conv_reset.n_nodes

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        # The whole step — Eqs. 7-10: concatenations, the three gate
        # graph convolutions, nonlinearities, and the state blend — is
        # one fused graph node; ops.fused_cnrnn_cell_reference keeps the
        # primitive composition for gradcheck parity.  All three gate
        # convolutions share the cell's (single) scaled Laplacian.
        return ops.fused_cnrnn_cell(
            self.conv_reset._scaled_lap, x, h,
            self.conv_reset.weight, self.conv_reset.bias,
            self.conv_update.weight, self.conv_update.bias,
            self.conv_cand.weight, self.conv_cand.bias,
            self.conv_reset.order)

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.n_nodes, self.hidden_channels)))


class GraphSeq2Seq(Module):
    """Encoder–decoder CNRNN forecasting graph-signal sequences.

    Mirrors :class:`repro.autodiff.rnn.Seq2Seq` with CNRNN cells: the
    encoder consumes ``(B, s, N, C)`` histories, the decoder rolls out
    ``h`` future signals, and a Cheby-Net projection maps the hidden
    graph state to the output channels.
    """

    def __init__(self, graph_weights: np.ndarray, in_channels: int,
                 hidden_channels: int, out_channels: int, order: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.encoder_cells = [
            CNRNNCell(graph_weights,
                      in_channels if i == 0 else hidden_channels,
                      hidden_channels, order, rng)
            for i in range(num_layers)]
        self.decoder_cells = [
            CNRNNCell(graph_weights,
                      out_channels if i == 0 else hidden_channels,
                      hidden_channels, order, rng)
            for i in range(num_layers)]
        self.proj = ChebConv(hidden_channels, out_channels, order,
                             graph_weights, rng)
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward(self, history: Tensor, horizon: int,
                targets: Optional[Tensor] = None,
                teacher_forcing: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> Tensor:
        """Forecast: ``(B, s, N, C_in)`` → ``(B, h, N, C_out)``."""
        if history.ndim != 4:
            raise ValueError(
                f"history must be (B, s, N, C), got {history.shape}")
        batch, steps = history.shape[0], history.shape[1]
        states: List[Tensor] = [cell.initial_state(batch)
                                for cell in self.encoder_cells]
        for t in range(steps):
            layer_input = history[:, t]
            for i, cell in enumerate(self.encoder_cells):
                states[i] = cell(layer_input, states[i])
                layer_input = states[i]
        if self.in_channels == self.out_channels:
            step_input = history[:, -1]
        else:
            step_input = Tensor(np.zeros(
                (batch, history.shape[2], self.out_channels)))
        predictions = []
        for j in range(horizon):
            layer_input = step_input
            for i, cell in enumerate(self.decoder_cells):
                states[i] = cell(layer_input, states[i])
                layer_input = states[i]
            prediction = self.proj(layer_input)
            predictions.append(prediction)
            use_truth = (teacher_forcing > 0.0 and targets is not None
                         and rng is not None
                         and rng.random() < teacher_forcing
                         and j < horizon - 1)
            step_input = targets[:, j] if use_truth else prediction
        return ops.stack(predictions, axis=1)


def _cell_params(cell: CNRNNCell) -> tuple:
    return (cell.conv_reset.weight, cell.conv_reset.bias,
            cell.conv_update.weight, cell.conv_update.bias,
            cell.conv_cand.weight, cell.conv_cand.bias)


def _twin_compatible(rnn_a: GraphSeq2Seq, rnn_b: GraphSeq2Seq) -> bool:
    """True when the two seq2seq models are architecture-identical
    (same node count, channels, hidden size, order, and depth), so their
    cells can run as stacked batched GEMMs."""
    cells_a = rnn_a.encoder_cells + rnn_a.decoder_cells
    cells_b = rnn_b.encoder_cells + rnn_b.decoder_cells
    if len(rnn_a.encoder_cells) != len(rnn_b.encoder_cells) \
            or len(rnn_a.decoder_cells) != len(rnn_b.decoder_cells):
        return False
    if rnn_a.proj.order != rnn_b.proj.order \
            or rnn_a.proj.weight.shape != rnn_b.proj.weight.shape:
        return False
    return all(ca.n_nodes == cb.n_nodes
               and ca.in_channels == cb.in_channels
               and ca.hidden_channels == cb.hidden_channels
               and ca.conv_reset.order == cb.conv_reset.order
               for ca, cb in zip(cells_a, cells_b))


def twin_forecast(rnn_a: GraphSeq2Seq, rnn_b: GraphSeq2Seq,
                  history_a: Tensor, history_b: Tensor,
                  horizon: int) -> tuple:
    """Forecast two factor sequences, jointly when possible.

    The AF's R and C sequences run through architecture-identical
    CNRNNs; when the fused kernels are on (and shapes agree) both
    recurrences execute as one stacked computation per step
    (:func:`repro.autodiff.ops.fused_twin_cnrnn_cell`), halving the
    per-cell dispatch overhead.  Falls back to two independent forward
    passes otherwise — results are identical either way.
    """
    if not (ops.fused_enabled() and history_a.shape == history_b.shape
            and _twin_compatible(rnn_a, rnn_b)):
        return rnn_a(history_a, horizon), rnn_b(history_b, horizon)
    x2 = ops.stack([history_a, history_b], axis=0)     # (2, B, s, N, C)
    batch, steps = history_a.shape[0], history_a.shape[1]
    enc_pairs = list(zip(rnn_a.encoder_cells, rnn_b.encoder_cells))
    dec_pairs = list(zip(rnn_a.decoder_cells, rnn_b.decoder_cells))

    def pair_lap(cell_a: CNRNNCell, cell_b: CNRNNCell) -> np.ndarray:
        return np.stack([cell_a.conv_reset._scaled_lap.data,
                         cell_b.conv_reset._scaled_lap.data])

    enc_laps = [pair_lap(ca, cb) for ca, cb in enc_pairs]
    dec_laps = [pair_lap(ca, cb) for ca, cb in dec_pairs]
    states = [Tensor(np.zeros((2, batch, ca.n_nodes, ca.hidden_channels)))
              for ca, _ in enc_pairs]
    for t in range(steps):
        layer_input = x2[:, :, t]
        for i, (ca, cb) in enumerate(enc_pairs):
            states[i] = ops.fused_twin_cnrnn_cell(
                enc_laps[i], layer_input, states[i],
                _cell_params(ca), _cell_params(cb), ca.conv_reset.order)
            layer_input = states[i]
    if rnn_a.in_channels == rnn_a.out_channels:
        step_input = x2[:, :, -1]
    else:
        step_input = Tensor(np.zeros(
            (2, batch, history_a.shape[2], rnn_a.out_channels)))
    proj_lap = np.stack([rnn_a.proj._scaled_lap.data,
                         rnn_b.proj._scaled_lap.data])
    predictions = []
    for _ in range(horizon):
        layer_input = step_input
        for i, (ca, cb) in enumerate(dec_pairs):
            states[i] = ops.fused_twin_cnrnn_cell(
                dec_laps[i], layer_input, states[i],
                _cell_params(ca), _cell_params(cb), ca.conv_reset.order)
            layer_input = states[i]
        prediction = ops.fused_twin_cheb_conv(
            proj_lap, layer_input,
            rnn_a.proj.weight, rnn_a.proj.bias,
            rnn_b.proj.weight, rnn_b.proj.bias, rnn_a.proj.order)
        predictions.append(prediction)
        step_input = prediction
    out2 = ops.stack(predictions, axis=2)              # (2, B, h, N, C)
    return out2[0], out2[1]
