"""Reverse-mode automatic differentiation on numpy arrays.

This module is the numerical substrate for the whole library.  The paper's
models were originally implemented on top of a deep-learning framework; here
we provide the equivalent capability from scratch: a :class:`Tensor` that
records the operations applied to it and can back-propagate gradients
through arbitrary DAGs of those operations.

Design notes
------------
* Every differentiable operation creates a new ``Tensor`` whose ``_parents``
  reference the input tensors and whose ``_backward`` closure knows how to
  push the output gradient back to those parents.
* Gradients are accumulated (summed) into ``Tensor.grad`` so a tensor used
  several times in a graph receives the total derivative.
* Broadcasting is supported everywhere numpy broadcasts; gradients are
  reduced back to the original shape by :func:`_unbroadcast`.
* Graphs are freed after ``backward()`` unless ``retain_graph=True``.
* Every op packages its forward computation as a local ``run()`` thunk that
  (re)binds, via ``nonlocal``, any intermediate the backward closure needs.
  Eager mode simply calls the thunk once; the capture/replay engine
  (:mod:`repro.autodiff.replay`) records ``(output, thunk)`` pairs and later
  re-executes the thunks directly — same arrays, same closures, no new
  Tensors — which is what makes replay bit-for-bit identical to eager
  execution (see docs/EXECUTION.md).
"""

from __future__ import annotations

import contextlib
from time import perf_counter as _perf_counter
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# The library-wide floating dtype.  float64 (the default) is what the
# test suite's numerical gradient checks need; switching to float32
# roughly halves memory traffic and doubles BLAS throughput, which the
# benchmark harness uses for full-city training runs.
_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the dtype used by all subsequently-created tensors."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dtype}")
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    """The dtype new tensors are created with."""
    return _DEFAULT_DTYPE


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a numpy array of the library dtype."""
    if isinstance(value, np.ndarray):
        if value.dtype != _DEFAULT_DTYPE:
            return value.astype(_DEFAULT_DTYPE)
        return value
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


# ----------------------------------------------------------------------
# NaN-provenance anomaly mode
# ----------------------------------------------------------------------
# When enabled, every op output (forward) and every gradient an op's
# backward produces are checked for non-finite values at creation time,
# and the first offender raises naming the *creating* op and its input
# shapes — turning "loss is NaN after 3 epochs" into "tanh produced Inf
# from inputs (16, 24, 32)".  Both the fused kernels and the primitive
# reference ops route through Tensor._make / Tensor.backward, so one
# hook covers both modes.  Costs a single bool check per op when off.
_ANOMALY_ENABLED = False

# ----------------------------------------------------------------------
# Capture and profiling hooks
# ----------------------------------------------------------------------
# _TAPE, when set, is a recorder with an ``entries`` list and a ``made``
# counter: every op appends its (output Tensor, forward thunk) pair and
# Tensor._make increments ``made``.  The replay engine compares the two
# to prove the capture covered every op (a custom op missing the thunk
# protocol would otherwise replay stale values).  _PROFILER, when set,
# receives exact per-op forward/backward timings.  Both cost one global
# read per op when inactive.
_TAPE = None
_PROFILER = None


def _set_tape(tape):
    """Install ``tape`` as the active op recorder; returns the previous."""
    global _TAPE
    previous = _TAPE
    _TAPE = tape
    return previous


def _set_profiler(profiler):
    """Install ``profiler`` as the active op profiler; returns the previous."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous


def _active_profiler():
    """The currently-installed op profiler, or ``None``.

    Accessor for sibling modules: the package ``__init__`` rebinds the
    ``tensor`` attribute to the constructor function, so they cannot
    read this module's globals through ``from . import tensor``.
    """
    return _PROFILER


def _record(out: "Tensor", run: Callable[[], np.ndarray],
            spec: Optional[tuple] = None) -> None:
    """Register an op's (output, forward thunk) pair with the active tape.

    ``spec``, when given, is a ``(kind, *payload)`` tuple describing the
    op to the tape-lowering pass (:mod:`repro.autodiff.lowering`): the
    kind names a registered lowering rule and the payload carries the
    operands/constants the rule needs to rebuild the op as a flat
    buffer-writing instruction.  Ops without a spec are lowered
    generically (their thunk is re-executed, exactly like replay) when
    their kind is known to be safe, and force the whole tape back to
    plain replay otherwise.
    """
    tape = _TAPE
    if tape is not None:
        tape.entries.append((out, run, spec))


def _run_forward(run: Callable[[], np.ndarray]) -> np.ndarray:
    """Execute an op's forward thunk, timing it when a profiler is active."""
    profiler = _PROFILER
    if profiler is None:
        return run()
    start = _perf_counter()
    data = run()
    profiler._record_forward(run, _perf_counter() - start)
    return data


class AnomalyError(RuntimeError):
    """A non-finite value appeared under :func:`detect_anomaly`.

    ``op`` names the operation that created the value; ``phase`` is
    ``"forward"`` or ``"backward"``.
    """

    def __init__(self, message: str, op: str = "?", phase: str = "?"):
        super().__init__(message)
        self.op = op
        self.phase = phase


def anomaly_enabled() -> bool:
    """Whether anomaly detection is currently active."""
    return _ANOMALY_ENABLED


@contextlib.contextmanager
def detect_anomaly(enabled: bool = True):
    """Context manager: check every op's forward output and backward
    gradients for NaN/Inf, raising :class:`AnomalyError` with the
    creating op's name and input shapes.  Noticeably slows training —
    meant for debugging a diverged run, not for production epochs."""
    global _ANOMALY_ENABLED
    previous = _ANOMALY_ENABLED
    _ANOMALY_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ANOMALY_ENABLED = previous


def _op_label(closure: Optional[Callable]) -> str:
    """Human-readable op name recovered from an op-local closure.

    Every op defines its adjoint as a local ``backward`` function and its
    forward as a local ``run`` thunk, so either closure's qualname
    (``sigmoid.<locals>.backward``, ``Tensor.__add__.<locals>.run``)
    names the op that created the output tensor.
    """
    qual = getattr(closure, "__qualname__", None)
    if not qual:
        return "<unknown op>"
    return qual.split(".<locals>")[0].split(".")[-1]


def _anomaly_forward_check(data: np.ndarray, parents: tuple,
                           backward: Optional[Callable]) -> None:
    if np.isfinite(data).all():
        return
    op = _op_label(backward)
    shapes = ", ".join(str(np.shape(p.data)) for p in parents) or "()"
    n_bad = int((~np.isfinite(data)).sum())
    raise AnomalyError(
        f"detect_anomaly: op '{op}' produced {n_bad} non-finite "
        f"value(s) in its forward output (output shape {data.shape}; "
        f"input shapes: {shapes})", op=op, phase="forward")


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the tensor's value.
    requires_grad:
        If ``True``, operations involving this tensor are recorded so that
        :meth:`backward` can compute ``d(output)/d(this)`` into ``grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_grad_borrowed", "_topo_cache")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._grad_borrowed: bool = False
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self._topo_cache: Optional[list] = None
        self.name = name

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_borrowed = False

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op-output tensor, recording the graph edge if needed."""
        parents = tuple(parents)
        if _ANOMALY_ENABLED:
            _anomaly_forward_check(np.asarray(data), parents, backward)
        tape = _TAPE
        if tape is not None:
            tape.made += 1
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``.

        The first gradient is *borrowed* (no copy): backward closures may
        hand the same array to several parents (e.g. addition), so a
        borrowed gradient is never mutated in place — a second
        accumulation allocates a fresh sum instead.  Nodes that receive a
        single gradient (the vast majority) therefore cost zero copies.
        """
        if self.grad is None:
            self.grad = grad
            self._grad_borrowed = True
        elif self._grad_borrowed:
            self.grad = self.grad + grad
            self._grad_borrowed = False
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None,
                 retain_graph: bool = False) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors (the usual loss case).
        retain_graph:
            Keep the graph alive so ``backward`` can be called again.
            Also memoizes the topological order on this tensor so the
            next ``backward`` skips the graph walk entirely (the replay
            engine leans on this; see docs/EXECUTION.md).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar "
                                   "backward()")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape "
                    f"{self.shape}")

        order = self._topo_cache
        if order is None:
            order = self._topo_order()
            if retain_graph:
                self._topo_cache = order
        self._accumulate(grad)
        profiler = _PROFILER
        for node in order:
            if node._backward is not None and node.grad is not None:
                if profiler is None:
                    node._backward(node.grad)
                else:
                    start = _perf_counter()
                    node._backward(node.grad)
                    profiler._record_backward(node._backward,
                                              _perf_counter() - start)
                if _ANOMALY_ENABLED:
                    node._anomaly_backward_check()
                # Interior nodes' grads are transient workspace; clearing
                # them keeps repeated backward passes (retain_graph) from
                # double-counting and frees memory early.
                node.grad = None
                if not retain_graph:
                    node._backward = None
                    node._parents = ()
        if not retain_graph:
            self._topo_cache = None

    def _anomaly_backward_check(self) -> None:
        """Raise if this node's backward just wrote a non-finite gradient.

        Runs right after ``_backward``, so a non-finite entry in a
        parent's accumulated gradient was created by *this* op's adjoint
        (earlier contributions were checked when their creating ops ran).
        """
        for parent in self._parents:
            if parent.requires_grad and parent.grad is not None \
                    and not np.isfinite(parent.grad).all():
                op = _op_label(self._backward)
                n_bad = int((~np.isfinite(parent.grad)).sum())
                raise AnomalyError(
                    f"detect_anomaly: backward of op '{op}' produced "
                    f"{n_bad} non-finite gradient value(s) for an input "
                    f"of shape {parent.shape} (output shape "
                    f"{self.shape})", op=op, phase="backward")

    def _topo_order(self) -> list:
        """Reverse topological order of the graph rooted at ``self``."""
        order: list = []
        visited: set = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)

        def run() -> np.ndarray:
            return self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(_run_forward(run), (self, other), backward)
        _record(out, run, ("add", self, other))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def run() -> np.ndarray:
            return -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("neg", self))
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)

        def run() -> np.ndarray:
            return self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        out = Tensor._make(_run_forward(run), (self, other), backward)
        _record(out, run, ("sub", self, other))
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)

        def run() -> np.ndarray:
            return self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out = Tensor._make(_run_forward(run), (self, other), backward)
        _record(out, run, ("mul", self, other))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        # Data-dependent guard: runs when the op is built (eager and
        # capture), not on replay — see docs/EXECUTION.md.
        if (other.data == 0).any():
            n_bad = int((other.data == 0).sum())
            raise ValueError(
                f"truediv: divisor contains {n_bad} zero(s) (shape "
                f"{other.shape}); this would silently propagate inf/nan "
                f"through the tape — mask the zeros or add an epsilon "
                f"to the denominator first")

        def run() -> np.ndarray:
            return self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.shape))

        out = Tensor._make(_run_forward(run), (self, other), backward)
        _record(out, run)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def run() -> np.ndarray:
            return self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run)
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product with full broadcasting over batch dimensions."""
        other = _ensure_tensor(other)
        a, b = self, other

        def run() -> np.ndarray:
            return a.data @ b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a = outer(grad, b)
                    ga = np.expand_dims(grad, -1) * b.data
                else:
                    ga = grad @ np.swapaxes(b.data, -1, -2)
                if a.data.ndim == 1 and ga.ndim > 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                a._accumulate(_unbroadcast(ga, a.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.expand_dims(a.data, -1) * grad
                elif b.data.ndim == 1:
                    gb = (np.swapaxes(a.data, -1, -2) @
                          np.expand_dims(grad, -1))[..., 0]
                    if gb.ndim > 1:
                        gb = gb.sum(axis=tuple(range(gb.ndim - 1)))
                else:
                    gb = np.swapaxes(a.data, -1, -2) @ grad
                b._accumulate(_unbroadcast(gb, b.shape))

        out = Tensor._make(_run_forward(run), (self, other), backward)
        _record(out, run, ("matmul", self, other))
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def run() -> np.ndarray:
            return self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("sum", self, axis, keepdims))
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = None

        def run() -> np.ndarray:
            nonlocal out_data
            out_data = self.data.max(axis=axis, keepdims=keepdims)
            return out_data

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out)
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * g / counts)

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run)
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def run() -> np.ndarray:
            return self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("reshape", self, shape))
        return out

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        if axes is None:
            inverse = None
        else:
            # Normalize negative axes before inverting: argsort((0, -1, 1))
            # would order the *raw* values and produce a wrong inverse
            # permutation.
            axes = tuple(int(a) % self.data.ndim for a in axes)
            inverse = np.argsort(axes)

        def run() -> np.ndarray:
            return self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("transpose", self, axes))
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(axes)

    def __getitem__(self, index) -> "Tensor":
        # Basic indexing (ints/slices) selects disjoint elements, so the
        # gradient can be written with a plain assignment; only fancy
        # (array) indexing needs the slow duplicate-accumulating add.at.
        parts = index if isinstance(index, tuple) else (index,)
        basic = all(isinstance(p, (int, np.integer, slice, type(None),
                                   type(Ellipsis))) for p in parts)

        def run() -> np.ndarray:
            return self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    full[index] = grad
                else:
                    np.add.at(full, index, grad)
                self._accumulate(full)

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("getitem", self, index, basic))
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        def run() -> np.ndarray:
            return np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("expand_dims", self, axis))
        return out

    def squeeze(self, axis: int) -> "Tensor":
        def run() -> np.ndarray:
            return np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis=axis))

        out = Tensor._make(_run_forward(run), (self,), backward)
        _record(out, run, ("squeeze", self, axis))
        return out


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(data, requires_grad=requires_grad)
