"""Terminal visualization: sparklines, bars, heatmaps — no plotting deps.

The library is CLI-first (benchmarks print their figures as text), so
these helpers render the common shapes:

* :func:`sparkline` — a one-line series (learning curves, daily demand);
* :func:`bar_chart` — labelled horizontal bars (method comparisons);
* :func:`histogram_bars` — a speed histogram with bucket labels;
* :func:`heatmap` — a 2-D field (e.g. an OD matrix slice) in shade
  characters.

All functions return strings; nothing is printed implicitly.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

SPARK_LEVELS = "▁▂▃▄▅▆▇█"
SHADE_LEVELS = " ░▒▓█"


def _normalize(values: np.ndarray,
               lo: Optional[float], hi: Optional[float]) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    lo = float(np.nanmin(values)) if lo is None else lo
    hi = float(np.nanmax(values)) if hi is None else hi
    if hi <= lo:
        return np.zeros_like(values)
    return np.clip((values - lo) / (hi - lo), 0.0, 1.0)


def sparkline(values: Sequence[float],
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a numeric series as one line of block characters.

    NaNs render as spaces; the scale spans [lo, hi] (data range by
    default).
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    scaled = _normalize(values, lo, hi)
    chars = []
    for raw, level in zip(values, scaled):
        if np.isnan(raw):
            chars.append(" ")
        else:
            index = min(int(level * len(SPARK_LEVELS)),
                        len(SPARK_LEVELS) - 1)
            chars.append(SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(data: Mapping[str, float], width: int = 40,
              fmt: str = "{:.4f}") -> str:
    """Horizontal bars for labelled values (larger value → longer bar)."""
    if not data:
        return ""
    label_width = max(len(str(key)) for key in data)
    peak = max(abs(v) for v in data.values()) or 1.0
    lines = []
    for key, value in data.items():
        n = int(round(width * abs(value) / peak))
        lines.append(f"{str(key):>{label_width}s} "
                     f"{fmt.format(value):>10s} {'█' * n}")
    return "\n".join(lines)


def histogram_bars(histogram: Sequence[float],
                   edges: Optional[Sequence[float]] = None,
                   width: int = 40) -> str:
    """Render a probability histogram with bucket-range labels."""
    histogram = np.asarray(list(histogram), dtype=np.float64)
    if edges is not None and len(edges) != len(histogram) + 1:
        raise ValueError("edges must have one more entry than buckets")
    peak = histogram.max() or 1.0
    lines = []
    for k, probability in enumerate(histogram):
        if edges is not None:
            hi = "inf" if np.isinf(edges[k + 1]) else f"{edges[k + 1]:g}"
            label = f"[{edges[k]:g}, {hi})"
        else:
            label = f"bucket {k}"
        n = int(round(width * probability / peak))
        lines.append(f"{label:>12s} {probability:6.3f} {'█' * n}")
    return "\n".join(lines)


def heatmap(matrix: np.ndarray,
            lo: Optional[float] = None,
            hi: Optional[float] = None,
            max_size: int = 48) -> str:
    """Render a 2-D array as shade characters (downsampling big inputs).

    Useful for eyeballing OD matrices: rows are origins, columns
    destinations, darker = larger.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got {matrix.shape}")
    rows, cols = matrix.shape
    row_step = max(1, int(np.ceil(rows / max_size)))
    col_step = max(1, int(np.ceil(cols / max_size)))
    if row_step > 1 or col_step > 1:
        trimmed_rows = (rows // row_step) * row_step
        trimmed_cols = (cols // col_step) * col_step
        matrix = matrix[:trimmed_rows, :trimmed_cols]
        matrix = matrix.reshape(trimmed_rows // row_step, row_step,
                                trimmed_cols // col_step, col_step)
        matrix = matrix.mean(axis=(1, 3))
    scaled = _normalize(matrix, lo, hi)
    lines = []
    for row in scaled:
        indices = np.minimum((row * len(SHADE_LEVELS)).astype(int),
                             len(SHADE_LEVELS) - 1)
        lines.append("".join(SHADE_LEVELS[i] for i in indices))
    return "\n".join(lines)


def learning_curve(train_losses: Sequence[float],
                   val_losses: Sequence[float]) -> str:
    """Two aligned sparklines for a training run."""
    both = list(train_losses) + list(val_losses)
    if not both:
        return ""
    lo, hi = min(both), max(both)
    return (f"train {sparkline(train_losses, lo, hi)}\n"
            f"  val {sparkline(val_losses, lo, hi)}")
