"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so every
model in the library is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    ``fan_in``/``fan_out`` are taken from the last two axes, which matches
    both dense weight matrices and per-filter Chebyshev coefficient banks.
    """
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape, rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (recommended for recurrent weights)."""
    if len(shape) < 2:
        raise ValueError("orthogonal init needs at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)
