"""Microbenchmark: fused autodiff kernels vs. their reference paths.

Times forward+backward of every fused kernel in ``repro.autodiff.ops``
against the retained primitive-op reference implementation, plus one
full AF and BF training step (forward, loss, backward, Adam update) with
the fused kernels globally on vs. off.  Results are written as JSON
(default: ``BENCH_AUTODIFF.json`` at the repo root) so the perf
trajectory of the autodiff substrate has recorded data.

Usage::

    PYTHONPATH=src python benchmarks/microbench.py            # full sizes
    PYTHONPATH=src python benchmarks/microbench.py --scale smoke
    PYTHONPATH=src python benchmarks/microbench.py --out /tmp/bench.json

``run_benchmarks.sh`` invokes this before the pytest benchmark sweep.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.autodiff import Tensor, ops, set_default_dtype
from repro.autodiff.optim import Adam
from repro.core import (AdvancedFramework, BasicFramework, af_loss, bf_loss)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Problem sizes per scale.  "smoke" mirrors the 12-region toy cities of
#: the benchmark harness; "full" the NYC-like 67-region setting.
SIZES = {
    "smoke": dict(n_nodes=24, n_cols=96, order=3,
                  gru_batch=32, gru_input=48, gru_hidden=48,
                  rec_batch=4, rec_n=16, rec_rank=5, rec_k=8,
                  regions=12, batch=4, s=6, horizon=3, buckets=8,
                  repeats=10),
    "full": dict(n_nodes=67, n_cols=536, order=3,
                 gru_batch=64, gru_input=128, gru_hidden=128,
                 rec_batch=8, rec_n=48, rec_rank=5, rec_k=8,
                 regions=32, batch=8, s=6, horizon=3, buckets=8,
                 repeats=3),
}


def _time(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pair(fused_fn, reference_fn, repeats: int) -> dict:
    fused_s = _time(fused_fn, repeats)
    reference_s = _time(reference_fn, repeats)
    return {
        "fused_ms": round(fused_s * 1e3, 4),
        "reference_ms": round(reference_s * 1e3, 4),
        "speedup": round(reference_s / fused_s, 2),
    }


# ----------------------------------------------------------------------
# kernel benches: forward + backward of one op
# ----------------------------------------------------------------------
def bench_cheb_propagate(sizes, rng) -> dict:
    n, m, order = sizes["n_nodes"], sizes["n_cols"], sizes["order"]
    lap = rng.normal(size=(n, n))
    lap = (lap + lap.T) / 2.0
    x = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    seed = np.ones((n, m, order))

    def run(op):
        x.zero_grad()
        op(lap, x, order).backward(seed)

    return _pair(lambda: run(ops.cheb_propagate),
                 lambda: run(ops.cheb_propagate_reference),
                 sizes["repeats"])


def bench_fused_gru_gates(sizes, rng) -> dict:
    b, i, hdim = sizes["gru_batch"], sizes["gru_input"], sizes["gru_hidden"]
    joint = i + hdim
    x = Tensor(rng.normal(size=(b, i)), requires_grad=True)
    h = Tensor(rng.normal(size=(b, hdim)), requires_grad=True)
    params = [Tensor(rng.normal(size=(joint, hdim)) * 0.1, requires_grad=True)
              if k % 2 == 0 else
              Tensor(np.zeros(hdim), requires_grad=True)
              for k in range(6)]
    seed = np.ones((b, hdim))

    def run(op):
        for t in (x, h, *params):
            t.zero_grad()
        op(x, h, *params).backward(seed)

    return _pair(lambda: run(ops.fused_gru_gates),
                 lambda: run(ops.fused_gru_gates_reference),
                 sizes["repeats"])


def bench_fused_softmax_recovery(sizes, rng) -> dict:
    b, n, rank, k = (sizes["rec_batch"], sizes["rec_n"],
                     sizes["rec_rank"], sizes["rec_k"])
    r = Tensor(rng.normal(size=(b, n, rank, k)), requires_grad=True)
    c = Tensor(rng.normal(size=(b, rank, n, k)), requires_grad=True)
    seed = np.ones((b, n, n, k))

    def run(op):
        r.zero_grad()
        c.zero_grad()
        op(r, c).backward(seed)

    return _pair(lambda: run(ops.fused_softmax_recovery),
                 lambda: run(ops.fused_softmax_recovery_reference),
                 sizes["repeats"])


def bench_fused_masked_frobenius(sizes, rng) -> dict:
    b, n, k = sizes["rec_batch"], sizes["rec_n"], sizes["rec_k"]
    pred = Tensor(rng.uniform(size=(b, 3, n, n, k)), requires_grad=True)
    truth = rng.uniform(size=(b, 3, n, n, k))
    mask = (rng.uniform(size=(b, 3, n, n)) < 0.4).astype(float)

    def run(op):
        pred.zero_grad()
        op(pred, truth, mask).backward()

    return _pair(lambda: run(ops.fused_masked_frobenius),
                 lambda: run(ops.fused_masked_frobenius_reference),
                 sizes["repeats"])


KERNEL_BENCHES = {
    "cheb_propagate": bench_cheb_propagate,
    "fused_gru_gates": bench_fused_gru_gates,
    "fused_softmax_recovery": bench_fused_softmax_recovery,
    "fused_masked_frobenius": bench_fused_masked_frobenius,
}


# ----------------------------------------------------------------------
# end-to-end training-step benches
# ----------------------------------------------------------------------
def _random_proximity(n: int, rng) -> np.ndarray:
    w = rng.uniform(0.1, 1.0, size=(n, n))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


def _train_step_batch(sizes, rng):
    n, k = sizes["regions"], sizes["buckets"]
    b, s, h = sizes["batch"], sizes["s"], sizes["horizon"]
    history = rng.uniform(size=(b, s, n, n, k))
    truth = rng.uniform(size=(b, h, n, n, k))
    mask = (rng.uniform(size=(b, h, n, n)) < 0.4).astype(float)
    return history, truth, mask


def make_af_step(sizes, seed: int = 0):
    """One AF training step (forward, Eq. 11 loss, backward, Adam)."""
    rng = np.random.default_rng(seed)
    n = sizes["regions"]
    w = _random_proximity(n, rng)
    model = AdvancedFramework(w, w, sizes["buckets"],
                              np.random.default_rng(seed), rank=4,
                              rnn_hidden=8, rnn_order=2)
    optimizer = Adam(model.parameters())
    history, truth, mask = _train_step_batch(sizes, rng)
    horizon = sizes["horizon"]

    def step():
        prediction, r, c = model(history, horizon)
        loss = af_loss(prediction, truth, mask, r, c, w, w)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    return step


def make_bf_step(sizes, seed: int = 0):
    """One BF training step (forward, Eq. 4 loss, backward, Adam)."""
    rng = np.random.default_rng(seed)
    n = sizes["regions"]
    model = BasicFramework(n, n, sizes["buckets"],
                           np.random.default_rng(seed), rank=4,
                           encoder_dim=16, hidden_dim=32)
    optimizer = Adam(model.parameters())
    history, truth, mask = _train_step_batch(sizes, rng)
    horizon = sizes["horizon"]

    def step():
        prediction, r, c = model(history, horizon)
        loss = bf_loss(prediction, truth, mask, r, c)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    return step


def bench_train_step(make_step, sizes) -> dict:
    """Time one training step with fused kernels on vs. off.

    The model is rebuilt per mode from the same seed so both paths
    optimize identical weights.  The two modes are timed in interleaved
    rounds (fused, reference, fused, ...) so slow periods of a noisy
    host hit both paths equally instead of skewing the ratio.
    """
    repeats = sizes["repeats"]
    with ops.use_fused(True):
        step_fused = make_step(sizes)
        step_fused()                                # warmup
    with ops.use_fused(False):
        step_reference = make_step(sizes)
        step_reference()                            # warmup
    fused_s = reference_s = float("inf")
    for _ in range(repeats):
        with ops.use_fused(True):
            start = time.perf_counter()
            step_fused()
            fused_s = min(fused_s, time.perf_counter() - start)
        with ops.use_fused(False):
            start = time.perf_counter()
            step_reference()
            reference_s = min(reference_s, time.perf_counter() - start)
    return {
        "fused_ms": round(fused_s * 1e3, 2),
        "reference_ms": round(reference_s * 1e3, 2),
        "speedup": round(reference_s / fused_s, 2),
    }


# ----------------------------------------------------------------------
def run_microbench(scale: str = "full", dtype: str = "float32") -> dict:
    """Run every bench; returns the report dict (also used by tests)."""
    if scale not in SIZES:
        raise ValueError(f"scale must be one of {sorted(SIZES)}, "
                         f"got {scale!r}")
    sizes = SIZES[scale]
    set_default_dtype(np.dtype(dtype).type)
    try:
        rng = np.random.default_rng(42)
        kernels = {name: bench(sizes, rng)
                   for name, bench in KERNEL_BENCHES.items()}
        train_step = {
            "af": bench_train_step(make_af_step, sizes),
            "bf": bench_train_step(make_bf_step, sizes),
        }
    finally:
        set_default_dtype(np.float64)
    return {
        "generated_by": "benchmarks/microbench.py",
        "scale": scale,
        "dtype": dtype,
        "timing": "best-of-%d wall clock, forward+backward" % sizes["repeats"],
        "kernels": kernels,
        "train_step": train_step,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="full", choices=sorted(SIZES))
    parser.add_argument("--dtype", default="float32",
                        choices=("float32", "float64"))
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_AUTODIFF.json"))
    args = parser.parse_args(argv)
    report = run_microbench(scale=args.scale, dtype=args.dtype)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for section in ("kernels", "train_step"):
        for name, row in report[section].items():
            print(f"  {name:24s} fused {row['fused_ms']:9.3f} ms   "
                  f"reference {row['reference_ms']:9.3f} ms   "
                  f"{row['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
