"""Deterministic fault injection for robustness testing.

A reproduction that only ever sees clean synthetic data never exercises
its failure paths.  This module is the chaos half of the robustness
stack (:mod:`repro.contracts` and the trainer/persistence hardening are
the defense half): seeded, composable injectors that corrupt data,
gradients, checkpoint files, and roster workers the way real pipelines
do, so ``benchmarks/chaos_smoke.py`` and the tests can prove every
fault class is repaired, quarantined, or cleanly reported.

Injectors by fault class
------------------------
data (feeds :mod:`repro.contracts`)
    :func:`drift_histograms` — rescale observed histograms so they no
    longer sum to 1 (float round-trips, upstream aggregation bugs);
    :func:`drop_cells` — zero observed cells while leaving the mask set
    (dropped feed messages), producing quarantine candidates;
    :func:`poison_nan` — write NaN into tensor cells (must hard-error).
training (hooks ``Trainer.fit(after_backward=...)``)
    :class:`NaNGradInjector` — overwrite one parameter's gradient with
    NaN at chosen (epoch, batch) points, exercising
    ``TrainConfig.on_nonfinite_grad``.
persistence
    :func:`corrupt_file` — truncate or bit-flip a file on disk,
    exercising :class:`~repro.persistence.CheckpointCorruptError` and
    the trainer's best.npz fallback.
processes (wraps a roster method factory)
    :func:`kill_once` — make a method's worker die with ``os._exit``
    on its first attempt and run normally on retry, exercising
    ``run_comparison``'s retry loop.

Every injector takes an explicit seed (or derives all randomness from
one), so a chaos run is exactly reproducible.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Tuple, Union

import numpy as np

__all__ = [
    "drift_histograms", "drop_cells", "poison_nan",
    "NaNGradInjector", "corrupt_file", "kill_once",
]


# ----------------------------------------------------------------------
# data faults
# ----------------------------------------------------------------------
def _observed_cells(mask: np.ndarray, rng: np.random.Generator,
                    fraction: float) -> Tuple[np.ndarray, ...]:
    """Pick ``fraction`` of the observed cells, as an index tuple."""
    observed = np.argwhere(mask)
    if len(observed) == 0:
        return tuple(np.empty(0, dtype=np.intp) for _ in range(mask.ndim))
    n = max(1, int(round(fraction * len(observed))))
    chosen = observed[rng.choice(len(observed), size=n, replace=False)]
    return tuple(chosen.T)


def drift_histograms(tensors: np.ndarray, mask: np.ndarray, seed: int,
                     fraction: float = 0.1,
                     scale_range: Tuple[float, float] = (0.5, 1.5)
                     ) -> int:
    """Rescale a fraction of observed histograms so they stop summing
    to 1 (in place).  Returns the number of drifted cells.

    The per-cell scale is drawn uniformly from ``scale_range``; shapes
    are preserved, only the normalization breaks — exactly the damage
    :func:`repro.contracts.check_histograms` classifies as *drifted*
    and repairs by renormalizing.
    """
    rng = np.random.default_rng(seed)
    cells = _observed_cells(mask, rng, fraction)
    n = len(cells[0])
    if n:
        scales = rng.uniform(*scale_range, size=n)
        tensors[cells] *= scales[:, None]
    return n


def drop_cells(tensors: np.ndarray, mask: np.ndarray, seed: int,
               fraction: float = 0.05) -> int:
    """Zero a fraction of observed cells *without* clearing their mask
    (in place).  Returns the number of dropped cells.

    This is the "dropped feed message" fault: the mask claims the cell
    was observed but the histogram is all-zero — unusable, so
    :func:`repro.contracts.check_histograms` must quarantine it.
    """
    rng = np.random.default_rng(seed)
    cells = _observed_cells(mask, rng, fraction)
    tensors[cells] = 0.0
    return len(cells[0])


def poison_nan(tensors: np.ndarray, seed: int, n_cells: int = 1) -> int:
    """Write NaN into ``n_cells`` random tensor cells (in place).

    NaN is the one fault no contract may repair — boundaries must
    hard-error (:func:`repro.contracts.check_finite`).
    """
    rng = np.random.default_rng(seed)
    flat = tensors.reshape(-1)
    chosen = rng.choice(flat.size, size=min(n_cells, flat.size),
                        replace=False)
    flat[chosen] = np.nan
    return len(chosen)


# ----------------------------------------------------------------------
# gradient faults
# ----------------------------------------------------------------------
class NaNGradInjector:
    """``Trainer.fit(after_backward=...)`` hook poisoning gradients.

    At each (epoch, batch) pair in ``at``, one parameter's gradient is
    overwritten with NaN after the backward pass — upstream of gradient
    clipping, exactly where a numerically unstable op would surface.
    The parameter hit is chosen deterministically from ``seed``.

    Attributes
    ----------
    injected:
        List of (epoch, batch) pairs actually poisoned, for asserting
        the harness really fired.
    """

    def __init__(self, at: Iterable[Tuple[int, int]], seed: int = 0):
        self.at = set(at)
        self.rng = np.random.default_rng(seed)
        self.injected = []

    def __call__(self, model, epoch: int, batch: int) -> None:
        if (epoch, batch) not in self.at:
            return
        parameters = [p for p in model.parameters() if p.grad is not None]
        if not parameters:
            return
        target = parameters[int(self.rng.integers(len(parameters)))]
        target.grad = np.full_like(np.asarray(target.grad), np.nan)
        self.injected.append((epoch, batch))


# ----------------------------------------------------------------------
# file faults
# ----------------------------------------------------------------------
def corrupt_file(path: Union[str, Path], seed: int,
                 mode: str = "bitflip", n_bits: int = 8,
                 keep_fraction: float = 0.6) -> None:
    """Corrupt a file on disk the way hardware and crashes do.

    ``mode="truncate"`` keeps only the leading ``keep_fraction`` of the
    bytes (a crash mid-write without atomic rename); ``mode="bitflip"``
    flips ``n_bits`` random bits in place (disk/bus corruption).  Both
    keep the file present and plausible-looking, which is exactly why
    loaders need integrity checks rather than existence checks.
    """
    path = Path(path)
    payload = bytearray(path.read_bytes())
    if mode == "truncate":
        del payload[max(1, int(len(payload) * keep_fraction)):]
    elif mode == "bitflip":
        rng = np.random.default_rng(seed)
        for position in rng.integers(0, len(payload), size=n_bits):
            payload[position] ^= 1 << int(rng.integers(8))
    else:
        raise ValueError(f"mode must be 'truncate' or 'bitflip', "
                         f"got {mode!r}")
    path.write_bytes(bytes(payload))


# ----------------------------------------------------------------------
# process faults
# ----------------------------------------------------------------------
def kill_once(factory, marker: Union[str, Path], exit_code: int = 13):
    """Wrap a roster method factory so its worker dies on first attempt.

    The returned factory checks ``marker`` (a path, shared across the
    forked workers via the filesystem): absent → create it and
    ``os._exit(exit_code)`` mid-build, a death the parent cannot catch
    as an exception; present → delegate to ``factory`` normally.  With
    ``run_comparison(..., retries=1)`` the method must still succeed,
    via the retry, which is what the chaos gate asserts.
    """
    marker = Path(marker)

    def chaotic_factory(data):
        if not marker.exists():
            marker.write_text("worker killed by repro.faultinject\n")
            os._exit(exit_code)
        return factory(data)

    return chaotic_factory
