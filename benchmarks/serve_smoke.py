#!/usr/bin/env python3
"""Forecast-serving regression gate for run_benchmarks.sh.

Three checks at smoke scale (see docs/SERVING.md), results recorded in
``BENCH_SERVE.json`` at the repo root:

1. **Parity** — a forecast served through the full stack (registry ->
   checksummed checkpoint -> inference tape -> response cache) must be
   bit-identical to calling ``forecast_latest`` on the fitted
   forecaster directly, for both the replay and the lowered inference
   engines, cold and warm.  Any divergence means the serving path no
   longer computes what the paper's model computes.
2. **Cache speedup** — a response-cache hit must be at least
   ``MIN_CACHE_SPEEDUP``x faster than a cold (cache-cleared, warm-tape)
   forward; the cache is the first rung of the degradation ladder and
   must stay effectively free.
3. **Throughput floor** — a mixed request stream (repeats + new
   windows) must sustain at least ``MIN_FORECASTS_PER_SEC``
   forecasts/sec; p50/p99 latency and forecasts/sec are recorded.

Exits non-zero on any failure so the benchmark sweep fails loudly.

Usage: python3 benchmarks/serve_smoke.py
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import prepare, toy_dataset
from repro.experiments.methods import MethodBudget, make_bf
from repro.forecast import forecast_latest
from repro.persistence import save_checkpoint
from repro.serve import (ForecastRequest, ForecastService, ModelKey,
                         ServeConfig)

S, H = 4, 2
N_REQUESTS = 60
N_TAILS = 6                      # distinct "nows" cycled in the stream
TIMING_REPEATS = 30
MIN_CACHE_SPEEDUP = 5.0
MIN_FORECASTS_PER_SEC = 25.0
REPORT = Path(__file__).parent.parent / "BENCH_SERVE.json"


def _fit():
    dataset = toy_dataset(n_days=2, n_regions=8, seed=0)
    data = prepare(dataset, s=S, h=H)
    budget = MethodBudget(epochs=1, batch_size=8, max_train_batches=4)
    forecaster = make_bf(data, budget)
    forecaster.fit(data.windows, data.split, horizon=H)
    return data, budget, forecaster


def _service(engine, data, budget, path, key):
    service = ForecastService(ServeConfig(engine=engine))
    service.register(key, path,
                     lambda: make_bf(data, budget).model)
    return service


def check_parity(data, budget, forecaster, path, key):
    """Served == forecast_latest, bitwise, per engine, cold and warm."""
    failures = []
    parity = {}
    t = data.sequence.n_intervals
    tails = [data.sequence.slice(0, t - i) for i in range(3)]
    for engine in ("replay", "lowered"):
        service = _service(engine, data, budget, path, key)
        exact = True
        for repeat in range(2):              # cold pass, then warm pass
            for tail in tails:
                direct = forecast_latest(forecaster, tail, S, H)
                served = service.forecast(key, tail, S, H)
                if not np.array_equal(served, direct):
                    exact = False
                    failures.append(
                        f"{engine} serving diverged from forecast_latest "
                        f"(repeat {repeat}, max abs diff "
                        f"{np.abs(served - direct).max():.3e})")
        parity[engine] = exact
        service.close()
    parity["windows"] = len(tails)
    return parity, failures


def check_cache_speedup(data, budget, path, key):
    """Best-of-N cache hit vs cold (cache-cleared, warm-tape) forward."""
    service = _service("replay", data, budget, path, key)
    request = ForecastRequest(key, data.sequence, S, H)
    service.forecast_one(request)            # capture tape + fill cache
    cold_s = hit_s = float("inf")
    for _ in range(TIMING_REPEATS):
        service.cache.clear()
        start = time.perf_counter()
        response = service.forecast_one(request)
        cold_s = min(cold_s, time.perf_counter() - start)
        assert response.cache == "miss"
        start = time.perf_counter()
        response = service.forecast_one(request)
        hit_s = min(hit_s, time.perf_counter() - start)
        assert response.cache == "hit"
    service.close()
    speedup = cold_s / hit_s
    section = {"cold_ms": cold_s * 1e3, "hit_ms": hit_s * 1e3,
               "speedup": speedup, "floor": MIN_CACHE_SPEEDUP}
    failures = []
    if speedup < MIN_CACHE_SPEEDUP:
        failures.append(
            f"cache hit only {speedup:.1f}x faster than cold forward "
            f"({hit_s * 1e3:.3f} vs {cold_s * 1e3:.3f} ms), need >= "
            f"{MIN_CACHE_SPEEDUP}x")
    return section, failures


def check_throughput(data, budget, path, key):
    """Forecasts/sec and latency percentiles over a mixed stream."""
    service = _service("replay", data, budget, path, key)
    t = data.sequence.n_intervals
    requests = [
        ForecastRequest(key, data.sequence.slice(0, t - i % N_TAILS), S, H)
        for i in range(N_REQUESTS)]
    latencies = []
    for request in requests:
        start = time.perf_counter()
        response = service.forecast_one(request)
        latencies.append(time.perf_counter() - start)
        assert response.ok, response.error
    stats = service.stats()
    service.close()
    total = sum(latencies)
    ms = sorted(1e3 * x for x in latencies)
    pct = lambda q: ms[min(len(ms) - 1, int(q * len(ms)))]  # noqa: E731
    section = {
        "n_requests": N_REQUESTS,
        "distinct_windows": N_TAILS,
        "forecasts_per_sec": N_REQUESTS / total,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "floor_per_sec": MIN_FORECASTS_PER_SEC,
        "cache": stats["cache"],
        "engine": stats["engines"].get(str(key), {}),
    }
    failures = []
    if section["forecasts_per_sec"] < MIN_FORECASTS_PER_SEC:
        failures.append(
            f"throughput {section['forecasts_per_sec']:.1f}/s below the "
            f"{MIN_FORECASTS_PER_SEC}/s floor")
    return section, failures


def main() -> int:
    data, budget, forecaster = _fit()
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    path = tmp / "bf.npz"
    save_checkpoint(path, forecaster.model, epoch=0)
    key = ModelKey("toy", "smoke")

    failures = []
    parity, parity_failures = check_parity(data, budget, forecaster, path,
                                           key)
    failures += parity_failures
    cache, cache_failures = check_cache_speedup(data, budget, path, key)
    failures += cache_failures
    throughput, throughput_failures = check_throughput(data, budget, path,
                                                       key)
    failures += throughput_failures

    report = {"scale": "smoke", "s": S, "h": H, "parity": parity,
              "cache": cache, "throughput": throughput}
    REPORT.write_text(json.dumps(report, indent=2, sort_keys=False)
                      + "\n")
    if failures:
        print(f"serve smoke: FAIL ({'; '.join(failures)})")
        return 1
    print(f"serve smoke: OK (replay+lowered bit-identical to "
          f"forecast_latest, cache hit {cache['speedup']:.0f}x vs cold, "
          f"{throughput['forecasts_per_sec']:,.0f} forecasts/s, "
          f"p50 {throughput['p50_ms']:.2f}ms / "
          f"p99 {throughput['p99_ms']:.2f}ms -> {REPORT.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
