"""Tests for the tape capture/replay execution engine.

The engine's contract (docs/EXECUTION.md) is that replay is *bit-for-bit*
identical to eager execution — same losses, same gradients, same RNG
consumption, same trained weights — while skipping graph reconstruction.
Everything here asserts exact equality, not allclose: one ulp of drift
means the recorded program no longer matches what eager does, which
would silently break checkpoint determinism.
"""

import warnings

import numpy as np
import pytest

import repro.autodiff as autodiff
from repro.autodiff import (Adam, CaptureMismatchWarning, InferenceEngine,
                            ReplayEngine, Tensor, detect_anomaly, ops,
                            profile)
from repro.core import (AdvancedFramework, BasicFramework, TrainConfig,
                        Trainer, af_loss, bf_loss)

STEPS = 5


def _proximity(n, rng):
    w = rng.uniform(0.1, 1.0, size=(n, n))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


def _batch(rng, batch=4, s=3, n=8, k=7, horizon=2):
    return (rng.uniform(size=(batch, s, n, n, k)),
            rng.uniform(size=(batch, horizon, n, n, k)),
            (rng.uniform(size=(batch, horizon, n, n)) < 0.4).astype(float))


def _bf_parts(dropout=0.2):
    model = BasicFramework(8, 8, 7, np.random.default_rng(7), rank=3,
                           encoder_dim=8, hidden_dim=12, dropout=dropout)
    return model, bf_loss


def _af_parts(dropout=0.2):
    rng = np.random.default_rng(11)
    w = _proximity(8, rng)
    model = AdvancedFramework(w, w, 7, np.random.default_rng(7), rank=3,
                              rnn_hidden=8, rnn_order=2, dropout=dropout)

    def loss_fn(prediction, truth, mask, r, c):
        return af_loss(prediction, truth, mask, r, c, w, w)

    return model, loss_fn


def _train(parts_fn, engine_mode, steps=STEPS):
    """Losses, final grads, and final weights of ``steps`` train steps."""
    model, loss_fn = parts_fn()
    history, truth, mask = _batch(np.random.default_rng(0))
    if engine_mode == "replay":
        optimizer = Adam(model.parameters(), flat=True)
        engine = ReplayEngine(model, loss_fn)
    else:
        optimizer = Adam(model.parameters())
        engine = None
    losses = []
    for _ in range(steps):
        if engine is not None:
            loss = engine.forward(history, truth, mask, 2)
            assert loss is not None
            optimizer.zero_grad()
            engine.backward(loss)
        else:
            prediction, r, c = model(history, 2)
            loss = loss_fn(prediction, truth, mask, r, c)
            optimizer.zero_grad()
            loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    grads = [p.grad.copy() for p in optimizer.parameters]
    weights = {k: v.copy() for k, v in model.state_dict().items()}
    return losses, grads, weights, engine


class TestBitForBitParity:
    """Replay must equal eager exactly — losses, grads, and weights."""

    @pytest.mark.parametrize("parts_fn", [_bf_parts, _af_parts],
                             ids=["bf", "af"])
    def test_five_steps_dropout_on(self, parts_fn):
        eager_losses, eager_grads, eager_weights, _ = _train(
            parts_fn, "eager")
        replay_losses, replay_grads, replay_weights, engine = _train(
            parts_fn, "replay")
        assert eager_losses == replay_losses
        for g_eager, g_replay in zip(eager_grads, replay_grads):
            assert np.array_equal(g_eager, g_replay)
        for name in eager_weights:
            assert np.array_equal(eager_weights[name],
                                  replay_weights[name]), name
        # One capture, then pure replays — the engine actually engaged.
        assert engine.stats()["captures"] == 1
        assert engine.stats()["replays"] == STEPS - 1
        assert engine.stats()["eager_steps"] == 0

    @pytest.mark.parametrize("parts_fn", [_bf_parts, _af_parts],
                             ids=["bf", "af"])
    def test_parity_holds_in_float32(self, parts_fn):
        """Regression: under float32, a replayed thunk whose internal
        math runs in float64 (e.g. the AF Dirichlet Laplacian) must be
        rounded back to the captured dtype, and dropout masks must not
        upcast gradients — both bugs made float32 replay drift."""
        autodiff.set_default_dtype(np.float32)
        try:
            eager = _train(parts_fn, "eager")
            replay = _train(parts_fn, "replay")
        finally:
            autodiff.set_default_dtype(np.float64)
        assert eager[0] == replay[0]
        for name in eager[2]:
            assert np.array_equal(eager[2][name], replay[2][name]), name

    def test_replay_consumes_rng_like_eager(self):
        """After N steps both engines leave dropout RNGs in the same
        state, so a mixed eager/replay run stays on the same stream."""
        model_e, loss_fn = _bf_parts()
        model_r, _ = _bf_parts()
        history, truth, mask = _batch(np.random.default_rng(0))
        engine = ReplayEngine(model_r, loss_fn)
        for _ in range(3):
            prediction, r, c = model_e(history, 2)
            loss_fn(prediction, truth, mask, r, c)
            engine.forward(history, truth, mask, 2)
        state_e = model_e.drop_r._rng.bit_generator.state["state"]
        state_r = model_r.drop_r._rng.bit_generator.state["state"]
        assert state_e == state_r


class TestGradcheckUnderReplay:
    def test_replayed_gradients_match_central_differences(self):
        model, loss_fn = _bf_parts(dropout=0.0)   # deterministic loss
        history, truth, mask = _batch(np.random.default_rng(3))
        engine = ReplayEngine(model, loss_fn)
        # Capture once, then take the analytic gradients from a *replay*.
        engine.forward(history, truth, mask, 2)
        loss = engine.forward(history, truth, mask, 2)
        for p in model.parameters():
            p.grad = None
        engine.backward(loss)
        assert engine.stats()["replays"] == 1

        def eager_loss():
            prediction, r, c = model(history, 2)
            return float(loss_fn(prediction, truth, mask, r, c).data)

        eps = 1e-6
        rng = np.random.default_rng(0)
        parameters = list(model.parameters())
        for p in (parameters[0], parameters[-1]):
            flat = p.data.reshape(-1)
            analytic = p.grad.reshape(-1)
            for idx in rng.choice(flat.size, size=3, replace=False):
                original = flat[idx]
                flat[idx] = original + eps
                upper = eager_loss()
                flat[idx] = original - eps
                lower = eager_loss()
                flat[idx] = original
                numeric = (upper - lower) / (2 * eps)
                assert analytic[idx] == pytest.approx(numeric, abs=1e-4,
                                                      rel=1e-4)


class TestTapeLifecycle:
    def test_new_capture_on_shape_change(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        big = _batch(np.random.default_rng(0), batch=4)
        small = _batch(np.random.default_rng(1), batch=2)
        engine.forward(*big, 2)
        engine.forward(*small, 2)          # ragged batch -> second tape
        engine.forward(*big, 2)            # first tape still live
        stats = engine.stats()
        assert stats["captures"] == 2
        assert stats["replays"] == 1
        assert stats["tapes"] == 2

    def test_horizon_change_is_a_new_signature(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        rng = np.random.default_rng(0)
        history = rng.uniform(size=(4, 3, 8, 8, 7))
        for horizon in (2, 3):
            truth = rng.uniform(size=(4, horizon, 8, 8, 7))
            mask = np.ones((4, horizon, 8, 8))
            engine.forward(history, truth, mask, horizon)
        assert engine.stats()["captures"] == 2

    def test_eval_mode_is_a_new_signature(self):
        """Dropout behaves differently in eval; a train-mode tape must
        not be replayed for an eval-mode step."""
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        batch = _batch(np.random.default_rng(0))
        engine.forward(*batch, 2)
        model.eval()
        engine.forward(*batch, 2)
        model.train()
        assert engine.stats()["captures"] == 2

    def test_invalidate_drops_all_tapes(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        batch = _batch(np.random.default_rng(0))
        engine.forward(*batch, 2)
        assert engine.arena_nbytes() > 0
        engine.invalidate()
        assert engine.stats()["tapes"] == 0
        assert engine.arena_nbytes() == 0
        engine.forward(*batch, 2)          # recaptures cleanly
        assert engine.stats()["captures"] == 2

    def test_oldest_tape_evicted_beyond_max(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn, max_tapes=2)
        for batch_size in (2, 3, 4):
            engine.forward(*_batch(np.random.default_rng(0),
                                   batch=batch_size), 2)
        assert engine.stats()["tapes"] == 2
        # The batch=2 tape was evicted; using it again re-captures.
        engine.forward(*_batch(np.random.default_rng(0), batch=2), 2)
        assert engine.stats()["captures"] == 4

    def test_hot_tape_survives_eviction_pressure(self):
        """Eviction is least-recently-*used*, not first-in-first-out: a
        tape that keeps getting replay hits must survive captures of
        fresh signatures beyond ``max_tapes``."""
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn, max_tapes=2)
        hot = _batch(np.random.default_rng(0), batch=4)
        engine.forward(*hot, 2)                             # capture hot
        for batch_size in (2, 3, 5):
            engine.forward(*hot, 2)                         # keep it hot
            engine.forward(*_batch(np.random.default_rng(1),
                                   batch=batch_size), 2)    # churn
        # Under FIFO the hot tape would have been evicted by the first
        # churn capture; under LRU every hot step after the first is a
        # replay and never a re-capture.
        engine.forward(*hot, 2)
        stats = engine.stats()
        assert stats["captures"] == 4           # hot once + 3 churn
        assert stats["replays"] == 4            # every other hot step


class TestFallbacks:
    def test_declines_under_detect_anomaly(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        batch = _batch(np.random.default_rng(0))
        with detect_anomaly():
            assert engine.forward(*batch, 2) is None
        assert engine.stats()["eager_steps"] == 1
        # Outside anomaly mode the engine works again.
        assert engine.forward(*batch, 2) is not None

    def test_capture_mismatch_disables_engine_but_keeps_loss(self):
        model, _ = _bf_parts()

        def rogue_loss(prediction, truth, mask, r, c):
            loss = bf_loss(prediction, truth, mask, r, c)
            # A Tensor created behind the tape's back: _make is counted
            # but no thunk is recorded, so the tape cannot be trusted.
            Tensor._make(np.zeros(()), (), None)
            return loss

        engine = ReplayEngine(model, rogue_loss)
        batch = _batch(np.random.default_rng(0))
        with pytest.warns(CaptureMismatchWarning):
            loss = engine.forward(*batch, 2)
        # The eagerly-computed loss of the failed capture is still used
        # (no RNG draw is wasted or repeated) and backward works on it.
        assert loss is not None and loss.ndim == 0
        engine.backward(loss)
        assert any(p.grad is not None for p in model.parameters())
        assert not engine.enabled
        assert engine.forward(*batch, 2) is None    # permanently eager

    def test_non_scalar_loss_disables_engine(self):
        model, _ = _bf_parts()

        def vector_loss(prediction, truth, mask, r, c):
            return prediction.reshape(-1)

        engine = ReplayEngine(model, vector_loss)
        with pytest.warns(CaptureMismatchWarning):
            engine.forward(*_batch(np.random.default_rng(0)), 2)
        assert not engine.enabled


class TestTrainerIntegration:
    CFG = dict(batch_size=8, max_train_batches=4, patience=10, seed=3)

    def _fit(self, windows, split, epochs, engine, checkpoint_dir=None,
             resume=False, telemetry=None):
        model = BasicFramework(12, 12, 7, np.random.default_rng(7),
                               rank=3, encoder_dim=8, hidden_dim=12,
                               dropout=0.2)
        trainer = Trainer(model, bf_loss,
                          TrainConfig(epochs=epochs, engine=engine,
                                      **self.CFG))
        result = trainer.fit(windows, split, horizon=2,
                             checkpoint_dir=checkpoint_dir, resume=resume,
                             telemetry=telemetry)
        return trainer, result

    def test_replay_fit_equals_eager_fit(self, windows, split):
        _, eager = self._fit(windows, split, 3, "eager")
        trainer, replay = self._fit(windows, split, 3, "replay")
        assert eager.train_losses == replay.train_losses
        assert eager.val_losses == replay.val_losses

    def test_checkpoint_resume_mid_run_with_replay(self, tmp_path,
                                                   windows, split):
        """Kill after 2 of 4 epochs and resume under engine=replay: the
        outcome must be bit-identical to the uninterrupted replay run
        (which itself equals the eager run)."""
        epochs = 4
        baseline, expected = self._fit(windows, split, epochs, "replay")
        directory = tmp_path / "replay_ckpt"
        self._fit(windows, split, 2, "replay", checkpoint_dir=directory)
        resumed, result = self._fit(windows, split, epochs, "replay",
                                    checkpoint_dir=directory, resume=True)
        assert result.train_losses == expected.train_losses
        assert result.val_losses == expected.val_losses
        state = resumed.model.state_dict()
        expected_state = baseline.model.state_dict()
        for name in expected_state:
            assert np.array_equal(state[name], expected_state[name]), name

    def test_engine_telemetry_event(self, windows, split):
        events = []
        self._fit(windows, split, 2, "replay",
                  telemetry=lambda event, fields: events.append(
                      (event, fields)))
        engine_events = [f for e, f in events if e == "engine"]
        assert len(engine_events) == 1
        stats = engine_events[0]
        assert stats["mode"] == "replay"
        assert stats["captures"] >= 1
        assert stats["replays"] >= 1
        assert stats["eager_steps"] == 0

    def test_strict_contracts_force_eager(self, windows, split):
        from repro.contracts import contract_policy
        events = []
        with contract_policy("strict"):
            self._fit(windows, split, 2, "replay",
                      telemetry=lambda event, fields: events.append(
                          (event, fields)))
        stats = [f for e, f in events if e == "engine"][0]
        assert stats["captures"] == 0 and stats["replays"] == 0

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            TrainConfig(engine="warp")


class TestTopoMemoization:
    def test_topo_order_cached_across_retained_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (ops.sigmoid(x * 2.0) + x).sum()
        loss.backward(retain_graph=True)
        order = loss._topo_cache
        assert order is not None
        loss.backward(retain_graph=True)
        assert loss._topo_cache is order     # memoized, not rebuilt
        # Gradients still accumulate correctly on the second pass.
        assert np.allclose(x.grad, 2 * x.grad / 2)

    def test_topo_cache_cleared_by_releasing_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (x * 3.0).sum()
        loss.backward(retain_graph=True)
        assert loss._topo_cache is not None
        loss.backward()                      # releases the graph
        assert loss._topo_cache is None

    def test_stable_order_gives_identical_grads(self):
        def grads():
            x = Tensor(np.arange(4.0), requires_grad=True)
            y = ops.tanh(x) * x + ops.sigmoid(x)
            loss = y.sum()
            loss.backward(retain_graph=True)
            first = x.grad.copy()
            x.grad = None
            loss.backward(retain_graph=True)
            return first, x.grad

        first, second = grads()
        assert np.array_equal(first, second)


class TestFlatAdam:
    def _params(self, rng, flat_mode):
        from repro.autodiff.module import Parameter
        params = [Parameter(rng.normal(size=shape))
                  for shape in [(4, 3), (3,), (2, 2, 2)]]
        return params, Adam(params, lr=0.05, flat=flat_mode)

    def test_flat_matches_loop_bit_for_bit(self):
        rng = np.random.default_rng(0)
        params_loop, adam_loop = self._params(np.random.default_rng(5),
                                              False)
        params_flat, adam_flat = self._params(np.random.default_rng(5),
                                              True)
        for _ in range(7):
            for p_loop, p_flat in zip(params_loop, params_flat):
                grad = rng.normal(size=p_loop.data.shape)
                p_loop.grad = grad.copy()
                p_flat.grad = grad.copy()
            adam_loop.step()
            adam_flat.step()
        for p_loop, p_flat in zip(params_loop, params_flat):
            assert np.array_equal(p_loop.data, p_flat.data)

    def test_flat_falls_back_when_grad_missing(self):
        rng = np.random.default_rng(0)
        params, adam = self._params(np.random.default_rng(5), True)
        before = params[1].data.copy()
        params[0].grad = rng.normal(size=params[0].data.shape)
        params[2].grad = rng.normal(size=params[2].data.shape)
        adam.step()                          # loop path: one grad is None
        assert np.array_equal(params[1].data, before)
        assert not np.array_equal(
            params[0].data, params[0].data * 0 + before.sum())

    def test_flat_state_dict_round_trip(self):
        rng = np.random.default_rng(0)
        params_a, adam_a = self._params(np.random.default_rng(5), True)
        for _ in range(3):
            for p in params_a:
                p.grad = rng.normal(size=p.data.shape)
            adam_a.step()
        params_b, adam_b = self._params(np.random.default_rng(5), True)
        for p_a, p_b in zip(params_a, params_b):
            p_b.data[...] = p_a.data
        adam_b.load_state_dict(adam_a.state_dict())
        for p_a, p_b in zip(params_a, params_b):
            grad = rng.normal(size=p_a.data.shape)
            p_a.grad = grad.copy()
            p_b.grad = grad.copy()
        adam_a.step()
        adam_b.step()
        for p_a, p_b in zip(params_a, params_b):
            assert np.array_equal(p_a.data, p_b.data)

    def test_flat_rejects_mixed_dtypes(self):
        from repro.autodiff.module import Parameter
        params = [Parameter(np.zeros(2)), Parameter(np.zeros(2))]
        # Parameter construction casts to the default dtype, so mixed
        # dtypes only arise from direct .data surgery — still reject.
        params[0].data = np.zeros(2, dtype=np.float32)
        with pytest.raises(ValueError, match="single parameter dtype"):
            Adam(params, flat=True)


class TestProfiler:
    def test_profile_counts_forward_and_backward(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        with profile() as profiler:
            loss = ops.sigmoid(x).sum()
            loss.backward()
        stats = profiler.as_dict()
        assert stats["sigmoid"]["forward_calls"] == 1
        assert stats["sigmoid"]["backward_calls"] == 1
        assert stats["sigmoid"]["forward_seconds"] >= 0.0
        assert "sum" in stats
        table = profiler.format_table()
        assert "sigmoid" in table and "fwd calls" in table

    def test_profile_sees_replayed_ops(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn)
        batch = _batch(np.random.default_rng(0))
        engine.forward(*batch, 2)            # capture (unprofiled)
        with profile() as profiler:
            loss = engine.forward(*batch, 2)
            engine.backward(loss)
        stats = profiler.as_dict()
        assert engine.stats()["replays"] == 1
        assert stats["fused_gru_gates"]["forward_calls"] > 0
        assert stats["fused_gru_gates"]["backward_calls"] > 0

    def test_profile_restores_previous_and_emits_telemetry(self):
        events = []
        with profile(telemetry=lambda event, fields: events.append(
                (event, fields))):
            Tensor(np.ones(2), requires_grad=True).sum().backward()
        # A fresh op after the block must not be recorded anywhere.
        Tensor(np.ones(2), requires_grad=True).sum().backward()
        assert len(events) == 1
        event, fields = events[0]
        assert event == "profile"
        assert fields["total_seconds"] >= 0.0
        assert "sum" in fields["ops"]


class TestDropoutDtype:
    def test_mask_does_not_upcast_float32(self):
        """Regression: the dropout mask was float64, silently upcasting
        activations and gradients under float32 training (and breaking
        flat-Adam bit parity with the loop)."""
        autodiff.set_default_dtype(np.float32)
        try:
            x = Tensor(np.ones((16, 16), dtype=np.float32),
                       requires_grad=True)
            out = ops.dropout(x, 0.5, np.random.default_rng(0))
            out.sum().backward()
            assert out.data.dtype == np.float32
            assert x.grad.dtype == np.float32
        finally:
            autodiff.set_default_dtype(np.float64)


class TestInferenceEngine:
    """Forward-only serving tapes (the repro.serve hot path)."""

    def _eager(self, model, history, horizon=2):
        model.eval()
        prediction, _, _ = model(history, horizon)
        return np.array(prediction.data, copy=True)

    def test_capture_then_replay_bit_identical(self):
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        expected = self._eager(model, history)
        engine = InferenceEngine(model)
        first = engine.predict(history, 2)
        second = engine.predict(history, 2)
        third = engine.predict(history, 2)
        for out in (first, second, third):
            np.testing.assert_array_equal(out, expected)
        stats = engine.stats()
        assert stats["captures"] == 1
        assert stats["replays"] == 2
        assert stats["eager_steps"] == 0

    def test_returns_are_independent_copies(self):
        """Arena buffers are reused between requests; handing a view out
        would let the next request mutate a caller's answer."""
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        engine = InferenceEngine(model)
        first = engine.predict(history, 2)
        kept = first.copy()
        engine.predict(history * 0.5, 2)     # same signature, new data
        np.testing.assert_array_equal(first, kept)

    def test_eval_forced_during_predict_and_training_restored(self):
        """Dropout must never leak into a serving capture, and predict
        must not flip a model that a trainer still owns."""
        model, _ = _bf_parts(dropout=0.5)
        history, _, _ = _batch(np.random.default_rng(0))
        model.train()
        engine = InferenceEngine(model)
        first = engine.predict(history, 2)
        second = engine.predict(history, 2)
        assert model.training
        np.testing.assert_array_equal(first, second)

    def test_signature_change_captures_new_tape_with_lru_eviction(self):
        model, _ = _bf_parts()
        big, _, _ = _batch(np.random.default_rng(0), batch=4)
        small, _, _ = _batch(np.random.default_rng(1), batch=2)
        engine = InferenceEngine(model, max_tapes=1)
        engine.predict(big, 2)
        engine.predict(small, 2)             # evicts the big tape
        assert engine.stats()["tapes"] == 1
        engine.predict(big, 2)               # must recapture, not replay
        stats = engine.stats()
        assert stats["captures"] == 3
        assert stats["replays"] == 0

    def test_invalidate_forces_recapture(self):
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        engine = InferenceEngine(model)
        engine.predict(history, 2)
        engine.predict(history, 2)
        engine.invalidate()
        assert engine.stats()["tapes"] == 0
        engine.predict(history, 2)
        assert engine.stats()["captures"] == 2

    def test_invalidate_tracks_reloaded_weights(self):
        """The registry hot-reload path: new weights + invalidate must
        serve the new model's prediction bit-identically."""
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        engine = InferenceEngine(model)
        engine.predict(history, 2)
        for parameter in model.parameters():
            parameter.data = parameter.data + 0.01
        engine.invalidate()
        np.testing.assert_array_equal(engine.predict(history, 2),
                                      self._eager(model, history))

    def test_declines_under_detect_anomaly(self):
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        engine = InferenceEngine(model)
        expected = self._eager(model, history)
        with detect_anomaly():
            out = engine.predict(history, 2)
        np.testing.assert_array_equal(out, expected)
        stats = engine.stats()
        assert stats["eager_steps"] == 1
        assert stats["captures"] == 0

    def test_lowered_inference_bit_identical(self):
        model, _ = _bf_parts()
        history, _, _ = _batch(np.random.default_rng(0))
        expected = self._eager(model, history)
        engine = InferenceEngine(model, lower=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # no LoweringFallbackWarning
            first = engine.predict(history, 2)
            second = engine.predict(history, 2)
            third = engine.predict(history, 2)
        for out in (first, second, third):
            np.testing.assert_array_equal(out, expected)
        stats = engine.stats()
        assert stats["captures"] == 1
        assert stats["lowered_steps"] == 2
        assert stats["plan_fallbacks"] == 0
