"""Property-based tests on the core framework components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autodiff import Tensor
from repro.core import masked_frobenius, recover

factor_floats = st.floats(min_value=-3, max_value=3,
                          allow_nan=False, allow_infinity=False)


class TestRecoverProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, (4, 2, 3), elements=factor_floats),
           arrays(np.float64, (2, 5, 3), elements=factor_floats))
    def test_always_valid_histograms(self, r, c):
        out = recover(Tensor(r), Tensor(c)).numpy()
        assert out.shape == (4, 5, 3)
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out > 0).all()

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (3, 2, 2), elements=factor_floats),
           arrays(np.float64, (2, 3, 2), elements=factor_floats),
           st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_invariant_to_uniform_score_shift(self, r, c, shift):
        """Adding a constant to all raw scores (here via an offset in
        one rank component of both factors) does not change softmax
        output — recover is shift-invariant like any softmax."""
        base = recover(Tensor(r), Tensor(c)).numpy()
        # Constant shift of the pre-softmax scores: append a rank-1
        # component u*v with u=shift, v=1 -> adds `shift` everywhere.
        ones_r = np.full((3, 1, 2), shift)
        ones_c = np.ones((1, 3, 2))
        r2 = np.concatenate([r, ones_r], axis=1)
        c2 = np.concatenate([c, ones_c], axis=0)
        shifted = recover(Tensor(r2), Tensor(c2)).numpy()
        assert np.allclose(base, shifted, atol=1e-9)


class TestMaskedLossProperties:
    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, (2, 1, 3, 3, 2),
                  elements=st.floats(min_value=0, max_value=1,
                                     allow_nan=False)),
           arrays(np.float64, (2, 1, 3, 3, 2),
                  elements=st.floats(min_value=0, max_value=1,
                                     allow_nan=False)),
           arrays(np.bool_, (2, 1, 3, 3)))
    def test_nonnegative_and_zero_iff_match(self, pred, truth, mask):
        loss = masked_frobenius(Tensor(pred), truth, mask).item()
        assert loss >= 0.0
        matched = masked_frobenius(Tensor(truth), truth, mask).item()
        assert matched == 0.0

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, (1, 1, 2, 2, 3),
                  elements=st.floats(min_value=0, max_value=1,
                                     allow_nan=False)))
    def test_monotone_in_mask(self, pred):
        """Observing more cells can only add error terms (per-cell mean
        stays bounded by the max per-cell error)."""
        truth = np.zeros_like(pred)
        empty = np.zeros((1, 1, 2, 2), dtype=bool)
        some = empty.copy()
        some[0, 0, 0, 0] = True
        full = np.ones((1, 1, 2, 2), dtype=bool)
        loss_none = masked_frobenius(Tensor(pred), truth, empty).item()
        loss_some = masked_frobenius(Tensor(pred), truth, some).item()
        loss_full = masked_frobenius(Tensor(pred), truth, full).item()
        assert loss_none == 0.0
        assert loss_some >= 0.0 and loss_full >= 0.0


class TestGRUStateProperties:
    @settings(max_examples=15, deadline=None)
    @given(arrays(np.float64, (1, 6, 3),
                  elements=st.floats(min_value=-10, max_value=10,
                                     allow_nan=False)))
    def test_gru_states_bounded(self, sequence):
        from repro.autodiff import GRU
        gru = GRU(3, 4, np.random.default_rng(0))
        out, _ = gru(Tensor(sequence))
        assert np.abs(out.numpy()).max() <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(arrays(np.float64, (1, 4, 8, 2),
                  elements=st.floats(min_value=-5, max_value=5,
                                     allow_nan=False)))
    def test_cnrnn_states_bounded(self, sequence):
        from repro.core import GraphSeq2Seq
        from repro.graph import build_proximity
        rng = np.random.default_rng(1)
        weights = build_proximity(rng.uniform(0, 4, size=(8, 2)))
        model = GraphSeq2Seq(weights, 2, 3, 2, order=2,
                             rng=np.random.default_rng(2))
        out = model(Tensor(sequence), horizon=2)
        assert np.isfinite(out.numpy()).all()
