"""Hygiene checks on the benchmark harness (without running it)."""

import ast
import os
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("test_*.py"))


class TestBenchmarkHygiene:
    def test_every_paper_artifact_has_a_benchmark(self):
        names = {path.stem for path in BENCH_FILES}
        assert "test_table1_configs" in names
        assert "test_table2_overall" in names
        assert "test_fig7_sparseness" in names
        assert "test_fig8_10_time_of_day" in names
        assert "test_fig11_13_distance" in names
        assert "test_fig14_proximity" in names
        assert "test_ablations" in names

    @pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
    def test_parses_with_docstring(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a docstring"

    @pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
    def test_every_test_uses_benchmark_fixture(self, path):
        """--benchmark-only skips tests without the fixture; a bench test
        that forgot it would silently never run."""
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) \
                    and node.name.startswith("test_"):
                args = {a.arg for a in node.args.args}
                assert "benchmark" in args, (
                    f"{path.name}::{node.name} misses the benchmark "
                    "fixture")

    def test_runner_script_executable(self):
        script = BENCH_DIR.parent / "run_benchmarks.sh"
        assert script.exists()
        assert os.access(script, os.X_OK)

    def test_conftest_smoke_mode_documented(self):
        conftest = (BENCH_DIR / "conftest.py").read_text()
        assert "REPRO_BENCH_SCALE" in conftest
        assert "smoke" in conftest
