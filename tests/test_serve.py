"""Tests for the forecast serving layer (``repro.serve``).

The serving contract (docs/SERVING.md): a single served request is
bit-identical to calling :func:`repro.forecast.forecast_latest` on the
fitted forecaster; corrupt checkpoints are reported and never served;
hot-reloads invalidate every answer cached from the old weights; and
every failure degrades down an explicit ladder (cache hit -> healthy
forward -> retry -> stale flagged answer -> error response) instead of
taking the service down.
"""

import os
import signal
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.experiments import MethodBudget, make_bf, prepare
from repro.faultinject import corrupt_file
from repro.forecast import forecast_latest
from repro.persistence import save_checkpoint
from repro.serve import (ForecastRequest, ForecastResponse, ForecastService,
                         ForecastWorkerPool, ModelKey, ModelRegistry,
                         ModelUnavailableError, ResponseCache, ServeConfig,
                         ShedError, TransportFallbackWarning,
                         window_signature)
from repro.serve_shm import leaked_segments

S, H = 3, 2
BUDGET = MethodBudget(epochs=1, batch_size=8, max_train_batches=3)


@pytest.fixture(scope="module")
def served(dataset, tmp_path_factory):
    """A fitted BF, its checksummed checkpoint, and a builder closure."""
    data = prepare(dataset, s=S, h=H)
    forecaster = make_bf(data, BUDGET)
    forecaster.fit(data.windows, data.split, horizon=H)
    forecaster.model.eval()
    path = tmp_path_factory.mktemp("serve") / "bf.npz"
    save_checkpoint(path, forecaster.model, epoch=4)
    return SimpleNamespace(
        data=data, forecaster=forecaster, path=path,
        builder=lambda: make_bf(data, BUDGET).model)


def _service(served, key, telemetry=None, **config):
    service = ForecastService(ServeConfig(**config), telemetry=telemetry)
    service.register(key, served.path, served.builder)
    return service


class TestModelRegistry:
    def test_unregistered_key_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ModelUnavailableError, match="not registered"):
            registry.get(ModelKey("nowhere"))

    def test_lazy_load_and_fingerprint_reuse(self, served):
        registry = ModelRegistry()
        key = ModelKey("toy")
        registry.register(key, served.path, served.builder)
        assert registry.loads == 0           # nothing read yet
        first = registry.get(key)
        second = registry.get(key)
        assert first is second               # unchanged file -> same model
        assert registry.stats()["loads"] == 1
        assert first.epoch == 4              # checkpoint metadata surfaced

    def test_corrupt_checkpoint_reported_never_served(self, served,
                                                      tmp_path):
        """A failed SHA-256 check must raise cleanly, count as an error,
        and emit ``model_error`` — serving garbage weights is the one
        unforgivable failure."""
        bad = tmp_path / "bad.npz"
        bad.write_bytes(served.path.read_bytes())
        corrupt_file(bad, seed=0, mode="bitflip", n_bits=16)
        events = []
        registry = ModelRegistry(
            telemetry=lambda event, fields: events.append((event, fields)))
        key = ModelKey("toy", "corrupt")
        registry.register(key, bad, served.builder)
        with pytest.raises(ModelUnavailableError, match="rejected"):
            registry.get(key)
        assert registry.stats()["errors"] == 1
        assert registry.stats()["loaded"] == 0
        kinds = [event for event, _ in events]
        assert kinds == ["model_error"]
        assert str(key) in events[0][1]["key"]

    def test_missing_checkpoint_reported(self, served, tmp_path):
        registry = ModelRegistry()
        key = ModelKey("toy", "missing")
        registry.register(key, tmp_path / "gone.npz", served.builder)
        with pytest.raises(ModelUnavailableError, match="unreadable"):
            registry.get(key)
        assert registry.errors == 1

    def test_hot_reload_on_file_change(self, served, tmp_path):
        """An atomic checkpoint rewrite (new inode) must be picked up on
        the next get, with a ``model_reload`` event."""
        path = tmp_path / "bf.npz"
        path.write_bytes(served.path.read_bytes())
        events = []
        registry = ModelRegistry(
            telemetry=lambda event, fields: events.append(event))
        key = ModelKey("toy", "reload")
        registry.register(key, path, served.builder)
        old = registry.get(key)
        perturbed = served.builder()
        perturbed.load_state_dict(
            {name: value.copy()
             for name, value in old.model.state_dict().items()})
        for parameter in perturbed.parameters():
            parameter.data = parameter.data + 0.01
        save_checkpoint(path, perturbed, epoch=5)
        fresh = registry.get(key)
        assert fresh is not old
        assert fresh.epoch == 5
        assert registry.stats()["reloads"] == 1
        assert events == ["model_load", "model_reload"]

    def test_lru_eviction_under_pressure(self, served):
        events = []
        registry = ModelRegistry(
            ServeConfig(max_models=1),
            telemetry=lambda event, fields: events.append((event, fields)))
        a, b = ModelKey("toy", "a"), ModelKey("toy", "b")
        registry.register(a, served.path, served.builder)
        registry.register(b, served.path, served.builder)
        registry.get(a)
        registry.get(b)                      # evicts a
        registry.get(a)                      # reloads a, evicts b
        stats = registry.stats()
        assert stats["loaded"] == 1
        assert stats["evictions"] == 2
        evicted = [fields["key"] for event, fields in events
                   if event == "model_evict"]
        assert evicted == [str(a), str(b)]


class TestResponseCache:
    def test_lru_bound_and_counters(self):
        cache = ResponseCache(max_entries=2)
        for i in range(3):
            cache.put(("m", str(i), 1), np.full(2, float(i)))
        assert len(cache) == 2
        assert cache.get(("m", "0", 1)) is None          # evicted
        np.testing.assert_array_equal(cache.get(("m", "2", 1)),
                                      np.full(2, 2.0))
        assert cache.stats() == {"entries": 2, "hits": 1, "misses": 1,
                                 "expired": 0}

    def test_returns_copies_both_ways(self):
        cache = ResponseCache()
        stored = np.zeros(3)
        cache.put(("m", "sig", 1), stored)
        stored += 1.0                        # caller mutates its array
        first = cache.get(("m", "sig", 1))
        first += 2.0                         # caller mutates the answer
        np.testing.assert_array_equal(cache.get(("m", "sig", 1)),
                                      np.zeros(3))

    def test_invalidate_model_drops_only_that_key(self):
        cache = ResponseCache()
        a, b = ModelKey("a"), ModelKey("b")
        cache.put((a, "sig", 1), np.zeros(1))
        cache.put((b, "sig", 1), np.ones(1))
        assert cache.invalidate_model(a) == 1
        assert cache.get((a, "sig", 1)) is None
        assert cache.get((b, "sig", 1)) is not None

    def test_window_signature_is_content_identity(self):
        x = np.arange(6.0).reshape(2, 3)
        assert window_signature(x) == window_signature(x.copy())
        assert window_signature(x) != window_signature(x.reshape(3, 2))
        assert window_signature(x) != window_signature(
            x.astype(np.float32))


class TestForecastService:
    def test_served_bit_identical_to_forecast_latest(self, served):
        """The acceptance gate: the full stack (registry -> inference
        tape -> cache) must not change a single bit of the forecast."""
        key = ModelKey("toy")
        service = _service(served, key)
        sequence = served.data.sequence
        direct = forecast_latest(served.forecaster, sequence, S, H)
        cold = service.forecast(key, sequence, S, H)
        warm = service.forecast(key, sequence, S, H)
        np.testing.assert_array_equal(cold, direct)
        np.testing.assert_array_equal(warm, direct)
        service.close()

    def test_cache_hit_bit_identical_to_cold_forward(self, served):
        key = ModelKey("toy")
        service = _service(served, key)
        request = ForecastRequest(key, served.data.sequence, S, H)
        cold = service.forecast_one(request)
        hit = service.forecast_one(request)
        assert cold.cache == "miss" and hit.cache == "hit"
        np.testing.assert_array_equal(hit.prediction, cold.prediction)
        assert service.cache.stats()["hits"] == 1
        service.close()

    def test_micro_batched_group_matches_single_requests(self, served):
        """Same-model misses coalesce into one batched forward; each
        row must match its own single forward to float-reduction noise
        (batched matmuls reduce in a different order)."""
        key = ModelKey("toy")
        sequence = served.data.sequence
        t = sequence.n_intervals
        tails = [sequence.slice(0, t - i) for i in range(3)]
        singles = [forecast_latest(served.forecaster, tail, S, H)
                   for tail in tails]
        service = _service(served, key)
        responses = service.forecast_many(
            [ForecastRequest(key, tail, S, H) for tail in tails])
        assert [r.batch for r in responses] == [3, 3, 3]
        for response, single in zip(responses, singles):
            assert response.ok
            np.testing.assert_allclose(response.prediction, single,
                                       rtol=0, atol=1e-12)
        service.close()

    def test_mixed_batch_preserves_order_and_reports_errors(self, served):
        key = ModelKey("toy")
        service = _service(served, key)
        sequence = served.data.sequence
        good = ForecastRequest(key, sequence, S, H)
        too_short = ForecastRequest(key, sequence.slice(0, 1), S, H)
        unknown = ForecastRequest(ModelKey("nowhere"), sequence, S, H)
        responses = service.forecast_many([good, too_short, unknown])
        assert responses[0].ok and responses[0].prediction is not None
        assert not responses[1].ok and "ValueError" in responses[1].error
        assert not responses[2].ok and responses[2].prediction is None
        service.close()

    def test_hot_reload_never_serves_stale_cache(self, served, tmp_path):
        """Eviction + rewrite: after the checkpoint changes on disk, the
        very next answer must come from the new weights — a cache entry
        from the old instance must not survive the reload."""
        path = tmp_path / "bf.npz"
        path.write_bytes(served.path.read_bytes())
        key = ModelKey("toy", "reload")
        service = ForecastService(ServeConfig())
        service.register(key, path, served.builder)
        sequence = served.data.sequence
        old = service.forecast(key, sequence, S, H)

        perturbed = served.builder()
        loaded = service.registry.get(key)
        perturbed.load_state_dict(
            {name: value.copy()
             for name, value in loaded.model.state_dict().items()})
        for parameter in perturbed.parameters():
            parameter.data = parameter.data + 0.01
        save_checkpoint(path, perturbed, epoch=5)

        response = service.forecast_one(
            ForecastRequest(key, sequence, S, H))
        assert response.cache == "miss"      # old cache entry was dropped
        assert not np.array_equal(response.prediction, old)
        perturbed.eval()
        prediction, _, _ = perturbed(
            sequence.tensors[-S:][None], H)
        np.testing.assert_array_equal(response.prediction,
                                      prediction.numpy()[0])
        service.close()

    def test_degrades_to_stale_answer_when_model_breaks(self, served,
                                                        tmp_path):
        """Ladder rung 4: checkpoint vanishes mid-flight -> the last
        good answer is served, clearly flagged, and telemetry records
        the degradation."""
        path = tmp_path / "bf.npz"
        path.write_bytes(served.path.read_bytes())
        events = []
        key = ModelKey("toy", "fragile")
        service = ForecastService(
            ServeConfig(),
            telemetry=lambda event, fields: events.append((event, fields)))
        service.register(key, path, served.builder)
        sequence = served.data.sequence
        healthy = service.forecast(key, sequence, S, H)
        path.unlink()                        # deployment loses its file
        response = service.forecast_one(
            ForecastRequest(key, sequence, S, H))
        assert response.ok and response.degraded
        assert response.cache == "stale"
        np.testing.assert_array_equal(response.prediction, healthy)
        degraded = [fields for event, fields in events
                    if event == "serve_request" and fields["degraded"]]
        assert len(degraded) == 1
        service.close()

    def test_stale_ok_false_fails_loudly(self, served, tmp_path):
        path = tmp_path / "bf.npz"
        path.write_bytes(served.path.read_bytes())
        key = ModelKey("toy", "strict")
        service = ForecastService(ServeConfig(stale_ok=False))
        service.register(key, path, served.builder)
        sequence = served.data.sequence
        service.forecast(key, sequence, S, H)
        path.unlink()
        response = service.forecast_one(
            ForecastRequest(key, sequence, S, H))
        assert not response.ok and response.prediction is None
        with pytest.raises(ModelUnavailableError):
            service.forecast(key, sequence, S, H)
        service.close()

    def test_submit_coalesces_concurrent_requests(self, served):
        """Async submissions landing inside one batch window must be
        answered by a single grouped forecast_many call."""
        key = ModelKey("toy")
        service = _service(served, key, batch_window=0.05)
        sequence = served.data.sequence
        t = sequence.n_intervals
        tails = [sequence.slice(0, t - i) for i in range(4)]
        pendings = [service.submit(ForecastRequest(key, tail, S, H))
                    for tail in tails]
        responses = [service.result(p, timeout=30.0) for p in pendings]
        assert all(r.ok for r in responses)
        assert max(r.batch for r in responses) > 1   # coalescing happened
        for response, tail in zip(responses, tails):
            direct = forecast_latest(served.forecaster, tail, S, H)
            np.testing.assert_allclose(response.prediction, direct,
                                       rtol=0, atol=1e-12)
        service.close()

    def test_stats_shape(self, served):
        key = ModelKey("toy")
        service = _service(served, key)
        service.forecast(key, served.data.sequence, S, H)
        stats = service.stats()
        assert stats["requests"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["registry"]["loads"] == 1
        assert stats["engines"][str(key)]["captures"] == 1
        service.close()

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            ServeConfig(engine="gpu")


class TestForecastWorkerPool:
    @pytest.fixture()
    def factory(self, served):
        key = ModelKey("toy")
        path, builder = served.path, served.builder

        def service_factory():
            service = ForecastService(ServeConfig())
            service.register(key, path, builder)
            return service

        return key, service_factory

    def test_pool_answers_match_direct_forecast(self, served, factory):
        key, service_factory = factory
        sequence = served.data.sequence
        direct = forecast_latest(served.forecaster, sequence, S, H)
        with ForecastWorkerPool(service_factory, n_workers=1) as pool:
            response = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert response.ok
            np.testing.assert_array_equal(response.prediction, direct)

    def test_dead_worker_respawned_and_request_retried(self, served,
                                                       factory):
        key, service_factory = factory
        sequence = served.data.sequence
        with ForecastWorkerPool(service_factory, n_workers=1,
                                retries=1) as pool:
            first = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert first.ok
            proc, _, _ = pool._workers[0]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=5.0)
            second = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert second.ok and not second.degraded
            np.testing.assert_array_equal(second.prediction,
                                          first.prediction)
            stats = pool.stats()
            assert stats["deaths"] >= 1
            assert stats["alive"] == 1

    def test_degrades_to_stale_mirror_when_workers_cannot_answer(
            self, served, factory):
        """Ladder's last rung through the pool: every attempt fails, but
        a previously-served answer exists in the parent's mirror."""
        key, service_factory = factory
        sequence = served.data.sequence
        events = []
        with ForecastWorkerPool(
                service_factory, n_workers=1, retries=0,
                telemetry=lambda event, fields: events.append(event)
                ) as pool:
            healthy = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert healthy.ok
            bad = ForecastRequest(ModelKey("nowhere"), sequence, S, H)
            pool._last[(bad.key, H)] = healthy.prediction.copy()
            response = pool.forecast(bad)
            assert response.ok and response.degraded
            assert response.cache == "stale"
            np.testing.assert_array_equal(response.prediction,
                                          healthy.prediction)
            assert pool.stats()["degraded"] == 1
            assert "serve_degraded" in events

    def test_error_response_when_no_stale_answer_exists(self, served,
                                                        factory):
        key, service_factory = factory
        sequence = served.data.sequence
        with ForecastWorkerPool(service_factory, n_workers=1,
                                retries=0) as pool:
            response = pool.forecast(
                ForecastRequest(ModelKey("nowhere"), sequence, S, H))
            assert not response.ok
            assert response.prediction is None

    def test_timeout_kills_and_respawns_worker(self, served, factory):
        """A hung worker must not hang the parent: the request times
        out, the worker is replaced, and the pool keeps serving."""
        key, service_factory = factory
        sequence = served.data.sequence
        with ForecastWorkerPool(service_factory, n_workers=1,
                                request_timeout=0.2, retries=0) as pool:
            proc, _, _ = pool._workers[0]
            os.kill(proc.pid, signal.SIGSTOP)   # simulate a hang
            start = time.monotonic()
            response = pool.forecast(
                ForecastRequest(key, sequence, S, H))
            elapsed = time.monotonic() - start
            assert not proc.is_alive()         # SIGKILL beat the SIGSTOP
            assert elapsed < 5.0
            assert pool.stats()["timeouts"] == 1
            assert not response.ok             # nothing mirrored yet
            retry = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert retry.ok                    # respawned worker answers

    def test_closed_pool_rejects_requests(self, served, factory):
        key, service_factory = factory
        pool = ForecastWorkerPool(service_factory, n_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.forecast(
                ForecastRequest(key, served.data.sequence, S, H))


class TestResponseDataclass:
    def test_ok_property(self):
        good = ForecastResponse(ModelKey("a"), H, np.zeros(1))
        bad = ForecastResponse(ModelKey("a"), H, None, error="boom")
        assert good.ok and not bad.ok


class TestResponseCacheTTL:
    """Interval-aligned expiry: entries die at the 15-minute boundary
    where the next interval's data can first exist."""

    def _cache(self, start=1000.0, minutes=15.0):
        now = [start]
        cache = ResponseCache(interval_minutes=minutes,
                              clock=lambda: now[0])
        return cache, now

    def test_hit_before_boundary_expired_after(self):
        cache, now = self._cache(start=1000.0)    # boundary at 1800
        cache.put(("m", "sig", 1), np.ones(2))
        now[0] = 1799.9
        assert cache.get(("m", "sig", 1)) is not None
        now[0] = 1800.0
        assert cache.get(("m", "sig", 1)) is None
        stats = cache.stats()
        assert stats["expired"] == 1
        assert stats["entries"] == 0              # expired entry removed

    def test_expiry_aligned_to_interval_not_sliding(self):
        """Two entries cached at different moments of one interval die
        at the same boundary — the clock is the data's interval clock,
        not a per-entry TTL."""
        cache, now = self._cache(start=950.0)     # boundary at 1800
        cache.put(("m", "early", 1), np.ones(2))
        now[0] = 1750.0
        cache.put(("m", "late", 1), np.ones(2))
        now[0] = 1799.0
        assert cache.get(("m", "early", 1)) is not None
        assert cache.get(("m", "late", 1)) is not None
        now[0] = 1800.5
        assert cache.get(("m", "early", 1)) is None
        assert cache.get(("m", "late", 1)) is None
        assert cache.stats()["expired"] == 2

    def test_no_interval_means_no_expiry(self):
        cache = ResponseCache()                   # default: no TTL
        cache.put(("m", "sig", 1), np.ones(2))
        assert cache.get(("m", "sig", 1)) is not None
        assert cache.stats()["expired"] == 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_minutes"):
            ResponseCache(interval_minutes=0)
        with pytest.raises(ValueError, match="cache_interval_minutes"):
            ServeConfig(cache_interval_minutes=-1.0)

    def test_service_plumbs_interval_to_cache(self, served):
        service = _service(served, ModelKey("toy"),
                           cache_interval_minutes=15.0)
        assert service.cache.interval_minutes == 15.0
        service.close()


class TestWorkerAffinity:
    """Per-key worker affinity: one key's requests land on one worker
    so its registry/tape/cache stay hot for the keys it owns."""

    def _pool(self, n_workers=4, affinity=True):
        pool = ForecastWorkerPool.__new__(ForecastWorkerPool)
        pool.affinity = affinity
        pool._workers = [None] * n_workers
        pool._next = 0
        return pool

    def test_slot_stable_per_key_and_process_independent(self):
        import zlib
        pool = self._pool()
        for key in (ModelKey("nyc"), ModelKey("cd", "weekday")):
            expected = zlib.crc32(str(key).encode()) % 4
            assert all(pool._slot_for(key, 0) == expected
                       for _ in range(5))

    def test_retries_walk_to_neighbouring_slots(self):
        pool = self._pool()
        key = ModelKey("nyc")
        base = pool._slot_for(key, 0)
        assert pool._slot_for(key, 1) == (base + 1) % 4
        assert pool._slot_for(key, 2) == (base + 2) % 4

    def test_affinity_off_restores_round_robin(self):
        pool = self._pool(n_workers=3, affinity=False)
        key = ModelKey("nyc")
        assert [pool._slot_for(key, 0) for _ in range(4)] == [0, 1, 2, 0]

    def test_pool_with_affinity_serves_correctly(self, served):
        key = ModelKey("toy")
        path, builder = served.path, served.builder

        def service_factory():
            service = ForecastService(ServeConfig())
            service.register(key, path, builder)
            return service

        sequence = served.data.sequence
        direct = forecast_latest(served.forecaster, sequence, S, H)
        with ForecastWorkerPool(service_factory, n_workers=2) as pool:
            assert pool.affinity
            slots = {pool._slot_for(key, 0) for _ in range(4)}
            assert len(slots) == 1                # one owner worker
            response = pool.forecast(ForecastRequest(key, sequence, S, H))
            assert response.ok
            np.testing.assert_array_equal(response.prediction, direct)


class TestModelWarmup:
    def test_warm_captures_tape_at_load(self, served):
        events = []
        service = ForecastService(
            ServeConfig(engine="replay"),
            telemetry=lambda event, fields: events.append(event))
        key = ModelKey("toy", "warm")
        service.register(key, served.path, served.builder, warm=(S, H))
        loaded = service.registry.get(key)
        assert "model_warm" in events
        assert loaded.engine.captures == 1
        # A real request with the warm shape replays the warm tape.
        prediction = service.forecast(key, served.data.sequence, S, H)
        direct = forecast_latest(served.forecaster,
                                 served.data.sequence, S, H)
        np.testing.assert_array_equal(prediction, direct)
        assert loaded.engine.captures == 1
        assert loaded.engine.replays >= 1
        service.close()

    def test_warm_skipped_on_eager_engine(self, served):
        events = []
        service = ForecastService(
            ServeConfig(engine="eager"),
            telemetry=lambda event, fields: events.append(event))
        key = ModelKey("toy", "eager")
        service.register(key, served.path, served.builder, warm=(S, H))
        loaded = service.registry.get(key)
        assert loaded.engine is None
        assert "model_warm" not in events
        service.close()

    def test_failed_warm_never_blocks_the_load(self, served):
        events = []
        service = ForecastService(
            ServeConfig(engine="replay"),
            telemetry=lambda event, fields: events.append(event))
        key = ModelKey("toy", "badwarm")
        service.register(key, served.path, served.builder, warm=(-1, H))
        loaded = service.registry.get(key)     # must not raise
        assert loaded.model is not None
        assert "model_warm_error" in events
        assert "model_warm" not in events
        service.close()


class TestShmTransport:
    """The zero-copy data plane: array bytes travel through a per-worker
    shared-memory ring, the pipe carries only control frames, and every
    answer is bit-identical to the pickled transport."""

    def _factory(self, served, key):
        path, builder = served.path, served.builder

        def service_factory():
            service = ForecastService(ServeConfig())
            service.register(key, path, builder)
            return service

        return service_factory

    def test_shm_answer_bit_identical_to_direct_and_pickle(self, served):
        key = ModelKey("toy")
        factory = self._factory(served, key)
        sequence = served.data.sequence
        direct = forecast_latest(served.forecaster, sequence, S, H)
        request = ForecastRequest(key, sequence, S, H)
        with ForecastWorkerPool(factory, n_workers=1) as shm_pool:
            assert shm_pool.transport == "shm"
            via_shm = shm_pool.forecast(request)
            assert via_shm.ok and shm_pool.transport_fallbacks == 0
        with ForecastWorkerPool(factory, n_workers=1,
                                transport="pickle") as pickle_pool:
            assert pickle_pool.segment_names() == []
            via_pickle = pickle_pool.forecast(request)
            assert via_pickle.ok
        np.testing.assert_array_equal(via_shm.prediction, direct)
        np.testing.assert_array_equal(via_pickle.prediction, direct)

    def test_oversized_payload_falls_back_to_pickle(self, served):
        """A payload bigger than the largest slot must still be served
        (bit-identically) over the pickled pipe, with a one-shot
        warning, a counter, and a transport_fallback event."""
        key = ModelKey("toy")
        events = []
        pool = ForecastWorkerPool(
            self._factory(served, key), n_workers=1, slot_bytes=1024,
            telemetry=lambda event, fields: events.append((event, fields)))
        try:
            direct = forecast_latest(served.forecaster,
                                     served.data.sequence, S, H)
            request = ForecastRequest(key, served.data.sequence, S, H)
            with pytest.warns(TransportFallbackWarning,
                              match="fell back"):
                response = pool.forecast(request)
            assert response.ok
            np.testing.assert_array_equal(response.prediction, direct)
            assert pool.transport_fallbacks >= 1
            fallbacks = [fields for event, fields in events
                         if event == "transport_fallback"]
            assert fallbacks and "SlotOverflowError" in \
                fallbacks[0]["reason"]
            # The warning is one-shot: the second oversized request is
            # counted but silent.
            before = pool.transport_fallbacks
            response = pool.forecast(request)
            assert response.ok
            assert pool.transport_fallbacks > before
        finally:
            pool.close()

    def test_response_overflow_falls_back_to_pickle(self, served):
        """A worker whose histogram outgrew the slot answers over the
        pipe instead; the parent counts the response-direction
        fallback."""
        key = ModelKey("toy")

        class _HugeAnswerService:
            def forecast_one(self, request):
                return ForecastResponse(
                    request.key, request.horizon,
                    np.zeros((64, 64, 64)))       # 2 MiB > slot

        events = []
        pool = ForecastWorkerPool(
            _HugeAnswerService, n_workers=1, slot_bytes=1 << 20,
            telemetry=lambda event, fields: events.append((event, fields)))
        try:
            with pytest.warns(TransportFallbackWarning):
                response = pool.forecast(
                    ForecastRequest(key, served.data.sequence, S, H))
            assert response.ok
            assert response.prediction.shape == (64, 64, 64)
            directions = [fields["direction"]
                          for event, fields in events
                          if event == "transport_fallback"]
            assert "response" in directions
        finally:
            pool.close()

    def test_invalid_transport_rejected(self, served):
        with pytest.raises(ValueError, match="transport"):
            ForecastWorkerPool(self._factory(served, ModelKey("toy")),
                               n_workers=1, transport="tcp")

    def test_respawn_unlinks_dead_workers_segment(self, served):
        """Regression: a SIGKILLed worker never runs its cleanup, so
        the parent must unlink the dead worker's segment before forking
        the replacement — one leak per respawn would eventually exhaust
        /dev/shm."""
        key = ModelKey("toy")
        pool = ForecastWorkerPool(self._factory(served, key), n_workers=1)
        try:
            names = [pool.segment_names()[0]]
            request = ForecastRequest(key, served.data.sequence, S, H)
            assert pool.forecast(request).ok
            for _ in range(2):                   # two kill/respawn cycles
                proc, _, _ = pool._workers[0]
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)
                response = pool.forecast(request)
                assert response.ok
                fresh = pool.segment_names()[0]
                assert fresh not in names        # a new segment each time
                assert leaked_segments(names) == []
                names.append(fresh)
        finally:
            pool.close()
        assert leaked_segments(names) == []      # close unlinked the last

    def test_graceful_close_leaves_no_segments(self, served):
        pool = ForecastWorkerPool(self._factory(served, ModelKey("toy")),
                                  n_workers=2)
        names = pool.segment_names()
        assert len(names) == 2
        pool.close()
        assert leaked_segments(names) == []


class TestBackpressure:
    """Deadline-aware admission control: overload answers "no" in
    microseconds (ShedError) instead of "late" in seconds, and a shed
    consumes no retry, kills no worker, and serves no stale answer."""

    def _pool(self, served, key, telemetry=None, **kwargs):
        path, builder = served.path, served.builder

        def service_factory():
            service = ForecastService(ServeConfig())
            service.register(key, path, builder)
            return service

        return ForecastWorkerPool(service_factory, n_workers=1,
                                  telemetry=telemetry, **kwargs)

    def test_ladder_order_cache_then_shm_then_fallback(self, served):
        """Rungs 1-3 in order: the worker's response cache answers
        first; a miss runs the shm forward; only an oversized payload
        drops to the pickled pipe."""
        key = ModelKey("toy")
        with self._pool(served, key) as pool:
            request = ForecastRequest(key, served.data.sequence, S, H)
            miss = pool.forecast(request)
            hit = pool.forecast(request)
            assert miss.cache == "miss"          # rung 2: shm forward
            assert hit.cache == "hit"            # rung 1 outranks it
            assert pool.transport_fallbacks == 0  # rung 3 never needed
            np.testing.assert_array_equal(hit.prediction, miss.prediction)

    def test_queue_full_sheds_without_consuming_retry(self, served):
        """A shed must not walk the retry ring, kill a worker, or serve
        stale — and the pool must serve normally right after."""
        key = ModelKey("toy")
        events = []
        pool = self._pool(
            served, key, retries=2, max_inflight=1,
            telemetry=lambda event, fields: events.append((event, fields)))
        try:
            request = ForecastRequest(key, served.data.sequence, S, H)
            assert pool.forecast(request).ok     # a mirrorable answer
            owner = pool._slot_for(key, 0)
            pool._admission._inflight[owner] = 1  # queue artificially full
            with pytest.raises(ShedError, match="queue full"):
                pool.forecast(request)
            pool._admission._inflight[owner] = 0
            stats = pool.stats()
            assert stats["sheds"] == 1
            assert stats["deaths"] == 0          # no worker touched
            assert stats["timeouts"] == 0
            assert stats["queue"]["shed_full"] == 1
            shed_events = [fields for event, fields in events
                           if event == "serve_shed"]
            assert len(shed_events) == 1
            assert "queue full" in shed_events[0]["reason"]
            assert pool.forecast(request).ok     # healthy afterwards
        finally:
            pool.close()

    def test_passed_deadline_sheds_fast(self, served):
        key = ModelKey("toy")
        with self._pool(served, key) as pool:
            request = ForecastRequest(key, served.data.sequence, S, H)
            assert pool.forecast(request).ok     # prime EWMA + mirror
            late = ForecastRequest(key, served.data.sequence, S, H,
                                   deadline=time.monotonic() - 1.0)
            start = time.monotonic()
            with pytest.raises(ShedError, match="deadline passed"):
                pool.forecast(late)
            assert time.monotonic() - start < 0.05   # fast-fail
            assert pool.stats()["queue"]["shed_deadline"] == 1

    def test_unmeetable_deadline_sheds_via_ewma(self, served):
        key = ModelKey("toy")
        with self._pool(served, key) as pool:
            request = ForecastRequest(key, served.data.sequence, S, H)
            assert pool.forecast(request).ok     # prime the EWMA
            assert pool._admission.ewma_seconds is not None
            pool._admission.ewma_seconds = 10.0   # pin: 10s per forward
            tight = ForecastRequest(
                key, served.data.sequence, S, H,
                deadline=time.monotonic() + 1.0)  # < one projected forward
            with pytest.raises(ShedError, match="unmeetable"):
                pool.forecast(tight)

    def test_generous_deadline_is_served(self, served):
        key = ModelKey("toy")
        with self._pool(served, key) as pool:
            response = pool.forecast(ForecastRequest(
                key, served.data.sequence, S, H,
                deadline=time.monotonic() + 60.0))
            assert response.ok and not response.degraded

    def test_worker_refuses_expired_in_flight_deadline(self, served):
        """A deadline that expires between admission and the worker's
        recv must not start a doomed forward."""
        from repro.serve import _serve_request

        class _NeverCalled:
            def forecast_one(self, request):     # pragma: no cover
                raise AssertionError("forward ran past its deadline")

        request = ForecastRequest(ModelKey("toy"), served.data.sequence,
                                  S, H, deadline=time.monotonic() - 0.1)
        response = _serve_request(_NeverCalled(), request)
        assert not response.ok
        assert "DeadlineExceeded" in response.error
