"""Diagnostics of the synthetic data's forecastability.

:func:`oracle_headroom` quantifies how much signal the latent field puts
in the *recent past* beyond the time-of-day pattern: it scores two
oracles against the sparse empirical tensors —

* the **conditional oracle**: the field's true distribution for the
  scored interval (what a perfect history-conditioned forecaster could
  know), and
* the **marginal oracle**: the true distribution averaged over the same
  time-of-day slot across days (what a perfect *periodic* forecaster —
  the MR family — could know).

Their EMD gap is the headroom available to history-conditioned methods;
DESIGN.md §7 documents why the generator targets ≈20 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.divergence import emd
from .traffic import LatentTrafficField


@dataclass(frozen=True)
class HeadroomReport:
    """EMD of the two oracles and the relative gain of conditioning."""

    conditional_emd: float
    marginal_emd: float

    @property
    def gain(self) -> float:
        """Relative EMD improvement of conditioning on recent history."""
        if self.marginal_emd <= 0:
            return 0.0
        return 1.0 - self.conditional_emd / self.marginal_emd


def oracle_headroom(field: LatentTrafficField,
                    sequence: "ODTensorSequence",  # noqa: F821 (cyclic)
                    test_days: int = 1,
                    stride: int = 7) -> HeadroomReport:
    """Measure conditional-vs-marginal oracle EMD on the last days.

    Parameters
    ----------
    field:
        The latent traffic field that generated the trips.
    sequence:
        The sparse OD tensors built from those trips.
    test_days:
        How many trailing days to score.
    stride:
        Score every ``stride``-th interval (the oracles are smooth in
        time, so sub-sampling loses nothing).
    """
    if sequence.n_intervals != field.n_intervals:
        raise ValueError("sequence and field cover different intervals")
    per_day = field.intervals_per_day
    n_days = field.n_days
    if test_days >= n_days:
        raise ValueError("need at least one non-test day for the marginal")
    edges = np.asarray(sequence.spec.edges)
    train_days = n_days - test_days
    start = train_days * per_day
    conditional, marginal = [], []
    truth_cache = {}

    def true_at(t: int) -> np.ndarray:
        if t not in truth_cache:
            truth_cache[t] = field.true_histogram(t, edges)
        return truth_cache[t]

    for t in range(start, field.n_intervals, stride):
        mask = sequence.mask[t]
        if not mask.any():
            continue
        empirical = sequence.tensors[t][mask]
        conditional.append(emd(empirical, true_at(t)[mask]).mean())
        slot = t % per_day
        slot_mean = np.mean([true_at(day * per_day + slot)
                             for day in range(train_days)], axis=0)
        marginal.append(emd(empirical, slot_mean[mask]).mean())
    if not conditional:
        raise ValueError("no observed cells in the test period")
    return HeadroomReport(conditional_emd=float(np.mean(conditional)),
                          marginal_emd=float(np.mean(marginal)))
