"""Region substrate: planar geometry, city partitions, and city models."""

from .city import (City, chengdu_like, grid_city, manhattan_like,
                   metro_like, toy_city)
from .geometry import (BoundingBox, euclidean, point_in_polygon,
                       polygon_area, polygon_centroid)
from .partition import GridPartition, Partition, SeededPartition

__all__ = [
    "BoundingBox", "euclidean",
    "polygon_area", "polygon_centroid", "point_in_polygon",
    "Partition", "GridPartition", "SeededPartition",
    "City", "manhattan_like", "chengdu_like", "metro_like", "toy_city",
    "grid_city",
]
