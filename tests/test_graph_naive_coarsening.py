"""Tests for the id-order (ablation) coarsening."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.graph import build_proximity, naive_coarsening
from repro.graph.chebconv import GraphPool


@pytest.fixture
def weights(rng):
    return build_proximity(rng.uniform(0, 5, size=(13, 2)))


class TestNaiveCoarsening:
    def test_identity_permutation(self, weights):
        c = naive_coarsening(weights, 2)
        assert np.array_equal(c.perm, np.arange(c.padded_size(0)))

    def test_sizes_halve(self, weights):
        c = naive_coarsening(weights, 2)
        sizes = [g.shape[0] for g in c.graphs]
        assert sizes[0] == sizes[1] * 2 == sizes[2] * 4

    def test_zero_levels(self, weights):
        c = naive_coarsening(weights, 0)
        assert c.levels == 0
        assert c.graphs[0].shape[0] == 13

    def test_negative_levels_rejected(self, weights):
        with pytest.raises(ValueError):
            naive_coarsening(weights, -1)

    def test_pools_consecutive_ids(self, weights):
        """Mean pooling must average ids (2i, 2i+1) — the spatially
        arbitrary pairing the paper's §V-A2 warns about."""
        c = naive_coarsening(weights, 1)
        pool = GraphPool(c, levels=1, mode="mean")
        x = np.arange(13, dtype=float).reshape(13, 1)
        out = pool(Tensor(x[None])).numpy()[0]
        assert out[0, 0] == pytest.approx(0.5)    # mean(0, 1)
        assert out[5, 0] == pytest.approx(10.5)   # mean(10, 11)
        assert out[6, 0] == pytest.approx(12.0)   # node 12 + fake

    def test_chained_levels_align(self, weights, rng):
        c = naive_coarsening(weights, 2)
        p1 = GraphPool(c, levels=1, start_level=0)
        p2 = GraphPool(c, levels=1, start_level=1)
        x = Tensor(rng.normal(size=(2, 13, 3)))
        out = p2(p1(x))
        assert out.shape == (2, c.graphs[2].shape[0], 3)

    def test_mask_marks_real_nodes(self, weights):
        c = naive_coarsening(weights, 2)
        assert c.real_mask[0].sum() == 13
        assert c.real_mask[0][:13].all()

    def test_usable_in_spatial_factorizer(self, weights, rng):
        from repro.core import GCNNBlock, SpatialFactorizer
        factorizer = SpatialFactorizer(
            weights, n_buckets=3, rank=2, rng=rng,
            blocks=[GCNNBlock(4, 2, 1)], cluster_pooling=False)
        out = factorizer(Tensor(rng.uniform(size=(2, 13, 3))))
        assert out.shape == (2, 2, 3)
