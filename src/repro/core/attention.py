"""Temporal attention over encoder states (the paper's outlook, §VII).

The paper's future-work section proposes "considering the information at
different timestamps differently, e.g., using attention networks".  This
module implements that extension: a Luong-style attention decoder that,
at every forecast step, scores all encoder hidden states against the
current decoder state and mixes them into the output projection —
instead of relying on the last encoder state alone.

``AttentiveSeq2Seq`` is a drop-in replacement for
:class:`repro.autodiff.rnn.Seq2Seq`; ``BasicFramework`` accepts
``attention=True`` to use it for both factor sequences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import init, ops
from ..autodiff.module import Module, Parameter
from ..autodiff.rnn import GRU
from ..autodiff.tensor import Tensor


class TemporalAttention(Module):
    """Dot-product attention of a query state over encoder states.

    Scores are ``softmax(q W_a e_t / sqrt(d))`` over encoder steps; the
    output is the probability-weighted mix of encoder states.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.w_attend = Parameter(
            init.xavier_uniform((hidden_size, hidden_size), rng))
        self._scale = 1.0 / np.sqrt(hidden_size)

    def forward(self, query: Tensor, encoder_states: Tensor) -> Tensor:
        """``query (B, H)``, ``encoder_states (B, s, H)`` → ``(B, H)``."""
        projected = query.matmul(self.w_attend)          # (B, H)
        scores = (encoder_states
                  * projected.expand_dims(1)).sum(axis=-1)   # (B, s)
        weights = ops.softmax(scores * self._scale, axis=-1)
        return (encoder_states * weights.expand_dims(-1)).sum(axis=1)


class AttentiveSeq2Seq(Module):
    """Encoder–decoder GRU with temporal attention at each decode step.

    The decoder state is concatenated with the attention context before
    the output projection, so time steps that resemble the current
    traffic state contribute more to each forecast.
    """

    def __init__(self, input_size: int, hidden_size: int, output_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.encoder = GRU(input_size, hidden_size, rng, num_layers)
        self.decoder = GRU(output_size, hidden_size, rng, num_layers)
        self.attention = TemporalAttention(hidden_size, rng)
        self.proj_weight = Parameter(
            init.xavier_uniform((2 * hidden_size, output_size), rng))
        self.proj_bias = Parameter(np.zeros(output_size))
        self.input_size = input_size
        self.output_size = output_size

    def forward(self, history: Tensor, horizon: int,
                targets: Optional[Tensor] = None,
                teacher_forcing: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> Tensor:
        """``(B, s, input)`` → ``(B, horizon, output)``."""
        if teacher_forcing > 0.0 and targets is None:
            raise ValueError("teacher forcing requires targets")
        encoder_outputs, states = self.encoder(history)
        batch = history.shape[0]
        if self.input_size == self.output_size:
            step_input = history[:, -1]
        else:
            step_input = Tensor(np.zeros((batch, self.output_size)))
        predictions = []
        for j in range(horizon):
            layer_input = step_input
            for i, cell in enumerate(self.decoder.cells):
                states[i] = cell(layer_input, states[i])
                layer_input = states[i]
            context = self.attention(layer_input, encoder_outputs)
            combined = ops.concat([layer_input, context], axis=-1)
            prediction = combined.matmul(self.proj_weight) + self.proj_bias
            predictions.append(prediction)
            use_truth = (teacher_forcing > 0.0 and rng is not None
                         and rng.random() < teacher_forcing
                         and j < horizon - 1)
            step_input = targets[:, j] if use_truth else prediction
        return ops.stack(predictions, axis=1)
