"""Naive Histograms (NH) baseline — paper §VI-A3(3).

For each OD pair, pool *all* training-period speed observations into one
histogram and predict that histogram for every future interval.  Strong
where traffic is stationary, blind to both time-of-day and recent
dynamics.  OD pairs never observed during training fall back to the
city-wide pooled histogram (NH itself cannot fill them otherwise — the
sparseness limitation the paper points out for this family of methods).
"""

from __future__ import annotations

import numpy as np

from ..histograms.windows import Split, WindowDataset
from .base import Forecaster, training_interval_range


class NaiveHistogram(Forecaster):
    name = "nh"

    def __init__(self):
        self._table: np.ndarray = None

    def fit(self, dataset: WindowDataset, split: Split,
            horizon: int) -> None:
        sequence = dataset.sequence
        end = training_interval_range(dataset, split)
        tensors = sequence.tensors[:end]
        counts = sequence.counts[:end]
        # Pool observations: each interval histogram is count-weighted so
        # the result equals the histogram of all underlying trips.
        weighted = (tensors * counts[..., None]).sum(axis=0)
        totals = counts.sum(axis=0)
        table = np.zeros_like(weighted)
        observed = totals > 0
        table[observed] = weighted[observed] / totals[observed][..., None]
        # Global fallback for never-observed pairs.
        global_hist = weighted.sum(axis=(0, 1))
        total_trips = totals.sum()
        if total_trips > 0:
            global_hist = global_hist / total_trips
        else:
            global_hist = np.full(weighted.shape[-1],
                                  1.0 / weighted.shape[-1])
        table[~observed] = global_hist
        self._table = table

    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        if self._table is None:
            raise RuntimeError("fit() must be called before predict()")
        batch = len(np.atleast_1d(indices))
        return np.broadcast_to(
            self._table, (batch, horizon) + self._table.shape).copy()
