"""Recurrent networks: GRU cells, stacked GRUs, and sequence-to-sequence.

The basic framework (paper §IV-C) forecasts the factor sequences with a
sequence-to-sequence GRU; the FC/RNN baseline uses the same machinery on
flattened OD tensors.  The advanced framework replaces the dense gates with
graph convolutions — that variant (CNRNN) lives in
:mod:`repro.core.cnrnn`, but it mirrors the gate structure defined here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import init, ops
from .module import Module, Parameter
from .tensor import Tensor


class GRUCell(Module):
    """Gated recurrent unit cell.

    Implements the standard GRU update::

        r = sigmoid([h, x] W_r + b_r)        # reset gate
        u = sigmoid([h, x] W_u + b_u)        # update gate
        c = tanh([r * h, x] W_c + b_c)       # candidate state
        h' = u * h + (1 - u) * c

    matching the gate layout the paper adopts for both the seq2seq GRU
    (Eqs. in §IV-C) and — with graph-convolutional gates — the CNRNN
    (Eqs. 7–10).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_reset = Parameter(init.xavier_uniform((joint, hidden_size), rng))
        self.b_reset = Parameter(np.zeros(hidden_size))
        self.w_update = Parameter(init.xavier_uniform((joint, hidden_size), rng))
        self.b_update = Parameter(np.zeros(hidden_size))
        self.w_cand = Parameter(init.xavier_uniform((joint, hidden_size), rng))
        self.b_cand = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step: inputs ``x (batch, input)``, state ``h (batch, hidden)``.

        The whole update — both concatenations, three gate matmuls,
        nonlinearities, and the state blend — runs as one fused graph
        node (:func:`repro.autodiff.ops.fused_gru_gates`); the primitive
        composition is kept in ``fused_gru_gates_reference``.
        """
        return ops.fused_gru_gates(x, h, self.w_reset, self.b_reset,
                                   self.w_update, self.b_update,
                                   self.w_cand, self.b_cand)

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRU(Module):
    """(Optionally stacked) GRU over a full sequence.

    Input is ``(batch, time, features)``; output is the sequence of
    top-layer hidden states ``(batch, time, hidden)`` plus the final state
    of every layer.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.cells = [GRUCell(input_size if i == 0 else hidden_size,
                              hidden_size, rng)
                      for i in range(num_layers)]
        self.hidden_size = hidden_size
        self.num_layers = num_layers

    def forward(self, x: Tensor,
                initial: Optional[List[Tensor]] = None):
        batch, steps = x.shape[0], x.shape[1]
        states = (initial if initial is not None
                  else [cell.initial_state(batch) for cell in self.cells])
        if len(states) != self.num_layers:
            raise ValueError("one initial state per layer is required")
        outputs = []
        for t in range(steps):
            layer_input = x[:, t]
            for i, cell in enumerate(self.cells):
                states[i] = cell(layer_input, states[i])
                layer_input = states[i]
            outputs.append(layer_input)
        return ops.stack(outputs, axis=1), states


class Seq2Seq(Module):
    """Encoder–decoder GRU forecasting ``horizon`` future feature vectors.

    The encoder consumes the historical sequence; its final states seed a
    decoder that rolls forward ``horizon`` steps.  Decoding starts from the
    last observed input (``go`` frame) and feeds back its own predictions,
    the standard inference-mode arrangement the frameworks rely on.  An
    output projection maps the decoder state to the target dimensionality.
    """

    def __init__(self, input_size: int, hidden_size: int, output_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.encoder = GRU(input_size, hidden_size, rng, num_layers)
        self.decoder = GRU(output_size, hidden_size, rng, num_layers)
        self.proj_weight = Parameter(
            init.xavier_uniform((hidden_size, output_size), rng))
        self.proj_bias = Parameter(np.zeros(output_size))
        self.input_size = input_size
        self.output_size = output_size

    def _project(self, h: Tensor) -> Tensor:
        return h.matmul(self.proj_weight) + self.proj_bias

    def forward(self, history: Tensor, horizon: int,
                targets: Optional[Tensor] = None,
                teacher_forcing: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> Tensor:
        """Forecast ``horizon`` steps from ``history (batch, s, input)``.

        When ``targets`` is provided and ``teacher_forcing > 0``, each
        decoder input is, with that probability, the ground-truth previous
        frame instead of the model's own prediction (scheduled sampling is
        the caller's responsibility).
        Returns ``(batch, horizon, output)``.
        """
        if teacher_forcing > 0.0 and targets is None:
            raise ValueError("teacher forcing requires targets")
        _, states = self.encoder(history)
        batch = history.shape[0]
        # GO frame: the most recent observation, projected if sizes differ.
        if self.input_size == self.output_size:
            step_input = history[:, -1]
        else:
            step_input = Tensor(np.zeros((batch, self.output_size)))
        predictions = []
        for j in range(horizon):
            layer_input = step_input
            for i, cell in enumerate(self.decoder.cells):
                states[i] = cell(layer_input, states[i])
                layer_input = states[i]
            prediction = self._project(layer_input)
            predictions.append(prediction)
            use_truth = (teacher_forcing > 0.0 and rng is not None
                         and rng.random() < teacher_forcing
                         and j < horizon - 1)
            step_input = targets[:, j] if use_truth else prediction
        return ops.stack(predictions, axis=1)


class LSTMCell(Module):
    """Long short-term memory cell.

    The paper chose GRUs for the frameworks (§IV-C, citing efficiency);
    LSTM is provided as the standard alternative so the choice can be
    ablated.  Standard formulation with forget-gate bias initialized to
    1 (the usual trick for gradient flow early in training)::

        f = sigmoid([h, x] W_f + b_f)
        i = sigmoid([h, x] W_i + b_i)
        o = sigmoid([h, x] W_o + b_o)
        g = tanh([h, x] W_g + b_g)
        c' = f * c + i * g
        h' = o * tanh(c')
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        joint = input_size + hidden_size
        self.w_forget = Parameter(init.xavier_uniform((joint, hidden_size),
                                                      rng))
        self.b_forget = Parameter(np.ones(hidden_size))
        self.w_input = Parameter(init.xavier_uniform((joint, hidden_size),
                                                     rng))
        self.b_input = Parameter(np.zeros(hidden_size))
        self.w_output = Parameter(init.xavier_uniform((joint, hidden_size),
                                                      rng))
        self.b_output = Parameter(np.zeros(hidden_size))
        self.w_cell = Parameter(init.xavier_uniform((joint, hidden_size),
                                                    rng))
        self.b_cell = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, state: tuple) -> tuple:
        """One step; ``state`` is ``(h, c)``; returns the new ``(h, c)``."""
        h, c = state
        hx = ops.concat([h, x], axis=-1)
        forget = ops.sigmoid(hx.matmul(self.w_forget) + self.b_forget)
        input_gate = ops.sigmoid(hx.matmul(self.w_input) + self.b_input)
        output_gate = ops.sigmoid(hx.matmul(self.w_output) + self.b_output)
        candidate = ops.tanh(hx.matmul(self.w_cell) + self.b_cell)
        c_new = forget * c + input_gate * candidate
        h_new = output_gate * ops.tanh(c_new)
        return h_new, c_new

    def initial_state(self, batch: int) -> tuple:
        zeros_state = np.zeros((batch, self.hidden_size))
        return Tensor(zeros_state.copy()), Tensor(zeros_state.copy())
