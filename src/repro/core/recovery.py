"""Recovery stage: factor tensors → full OD stochastic speed tensors.

Paper §IV-D: for each future interval, the predicted factor tensors
``R̂ ∈ R^{N×β×K}`` and ``Ĉ ∈ R^{β×N'×K}`` are multiplied per speed bucket
and every OD cell's K raw scores are normalized with a softmax, yielding a
*full* tensor whose every cell is a valid histogram.
"""

from __future__ import annotations

from ..autodiff import ops
from ..autodiff.tensor import Tensor


def recover(r_factors: Tensor, c_factors: Tensor) -> Tensor:
    """Recover full OD tensors from factor tensors.

    Parameters
    ----------
    r_factors:
        ``(..., N, beta, K)`` origin-side factors.
    c_factors:
        ``(..., beta, N', K)`` destination-side factors.

    Returns
    -------
    ``(..., N, N', K)`` tensor; softmax over the bucket axis guarantees
    each cell is a probability histogram.
    """
    if r_factors.shape[-1] != c_factors.shape[-1]:
        raise ValueError(
            f"bucket axes differ: {r_factors.shape[-1]} vs "
            f"{c_factors.shape[-1]}")
    if r_factors.shape[-2] != c_factors.shape[-3]:
        raise ValueError(
            f"latent ranks differ: R has {r_factors.shape[-2]}, C has "
            f"{c_factors.shape[-3]}")
    # One fused node: per-bucket batched matmul + bucket-axis softmax
    # with the closed-form softmax VJP (the unfused composition lives in
    # ops.fused_softmax_recovery_reference).
    return ops.fused_softmax_recovery(r_factors, c_factors)
