"""Planar geometry helpers for region handling.

All coordinates are planar kilometres (a local tangent-plane projection of
the city), which keeps distances Euclidean and matches the paper's use of
centroid distances for the Figure 11–13 grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box in km coordinates."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self):
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(f"degenerate bounding box {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership test for ``points (..., 2)``."""
        points = np.asarray(points)
        x, y = points[..., 0], points[..., 1]
        return ((x >= self.x_min) & (x <= self.x_max) &
                (y >= self.y_min) & (y <= self.y_max))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Uniform random points inside the box, shape ``(n, 2)``."""
        xs = rng.uniform(self.x_min, self.x_max, size=n)
        ys = rng.uniform(self.y_min, self.y_max, size=n)
        return np.column_stack([xs, ys])


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between points (broadcasting over leading axes)."""
    a, b = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    return np.sqrt(((a - b) ** 2).sum(axis=-1))


def polygon_area(vertices: Sequence[Tuple[float, float]]) -> float:
    """Signed shoelace area of a simple polygon (positive if CCW)."""
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.shape[0] < 3:
        raise ValueError("polygon needs at least 3 vertices")
    x, y = vertices[:, 0], vertices[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def polygon_centroid(vertices: Sequence[Tuple[float, float]]) -> np.ndarray:
    """Centroid of a simple polygon via the standard shoelace moments."""
    vertices = np.asarray(vertices, dtype=np.float64)
    x, y = vertices[:, 0], vertices[:, 1]
    cross = x * np.roll(y, -1) - np.roll(x, -1) * y
    area = 0.5 * cross.sum()
    if abs(area) < 1e-12:
        return vertices.mean(axis=0)
    cx = ((x + np.roll(x, -1)) * cross).sum() / (6.0 * area)
    cy = ((y + np.roll(y, -1)) * cross).sum() / (6.0 * area)
    return np.array([cx, cy])


def point_in_polygon(point: np.ndarray,
                     vertices: Sequence[Tuple[float, float]]) -> bool:
    """Ray-casting point-in-polygon test (boundary counts as inside)."""
    x, y = float(point[0]), float(point[1])
    vertices = np.asarray(vertices, dtype=np.float64)
    n = len(vertices)
    inside = False
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        if min(y1, y2) < y <= max(y1, y2) and y1 != y2:
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x_cross >= x:
                inside = not inside
    return inside
