"""Adapter wrapping autodiff models + Trainer into the Forecaster API."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..autodiff.module import Module
from ..autodiff.tensor import Tensor
from ..core.losses import masked_frobenius
from ..core.trainer import TrainConfig, Trainer, TrainResult
from ..histograms.windows import Split, WindowDataset
from .base import Forecaster

LossFn = Callable[[Tensor, np.ndarray, np.ndarray,
                   Optional[Tensor], Optional[Tensor]], Tensor]


def plain_loss(prediction: Tensor, truth: np.ndarray, mask: np.ndarray,
               r_factors: Optional[Tensor],
               c_factors: Optional[Tensor]) -> Tensor:
    """Masked Frobenius data term only (used by the FC baseline)."""
    return masked_frobenius(prediction, truth, mask)


class NeuralForecaster(Forecaster):
    """Any ``model(history, horizon) -> (pred, R, C)`` module + a loss."""

    def __init__(self, name: str, model: Module,
                 loss_fn: LossFn = plain_loss,
                 train_config: TrainConfig = None):
        self.name = name
        self.model = model
        self.trainer = Trainer(model, loss_fn,
                               train_config or TrainConfig())
        self.result: Optional[TrainResult] = None

    def fit(self, dataset: WindowDataset, split: Split,
            horizon: int) -> None:
        self.result = self.trainer.fit(dataset, split, horizon)

    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        return self.trainer.predict(dataset, np.atleast_1d(indices),
                                    horizon)
