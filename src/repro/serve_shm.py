"""Zero-copy shared-memory transport for the forecast worker pool.

``ForecastWorkerPool`` originally shipped every request window and every
response histogram as a pickled object over a ``multiprocessing.Pipe``.
At metro scale one response is an ``(h, N, N', K)`` float array — tens
of megabytes — so pickling + pipe chunking dominated the request path
that ``BENCH_SERVE.json`` measures.  This module replaces the *data*
plane while the Pipe keeps carrying only tiny control frames:

* :class:`ShmRing` — one ``multiprocessing.shared_memory.SharedMemory``
  segment per worker, divided into fixed-size slots.  The parent writes
  the request arrays (tensors/mask/counts) once into a free slot; the
  worker maps the same pages, reads them zero-copy, runs the forward,
  and writes the response histogram once into the same slot.  Each slot
  starts with a small fixed header carrying dtype/shape/request-id/
  deadline, so either side can validate what it is looking at.
* :class:`AdmissionController` — deadline-aware backpressure in the
  parent: a bounded per-worker in-flight count plus an EWMA of observed
  per-forward latency.  A request is shed with :class:`ShedError`
  (fast-fail, no worker touched, no retry consumed) when the queue is
  full, its deadline has already passed, or the deadline cannot be met
  given ``(queue depth + 1) * EWMA``.

When ``shared_memory`` is unavailable, or a payload exceeds the largest
slot, the pool falls back to the pickled-pipe transport for that
request (one-shot warning, per-pool counter, ``transport_fallback``
telemetry event) — responses are bit-identical either way, the
transports differ only in how the bytes travel.

Slot layout (see docs/SERVING.md for the sizing guide)::

    +--------------------------------------------------------------+
    | header (512 B): magic | n_arrays | request_id | deadline     |
    |   then per array (max 4): dtype | ndim | shape[6] | nbytes   |
    +--------------------------------------------------------------+
    | payload 0  (64-byte aligned)                                 |
    | payload 1  (64-byte aligned)                                 |
    | ...                                                          |
    +--------------------------------------------------------------+

Cleanup contract: the parent owns every segment and unlinks it on
``close()`` *and* before respawning a killed worker; the worker body
closes (and best-effort unlinks) its segment in a ``finally`` so a
parent that dies first still leaves nothing in ``/dev/shm``.
"""

from __future__ import annotations

import math
import secrets
import struct
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:                                            # pragma: no cover - import guard
    from multiprocessing import shared_memory as _shared_memory
except ImportError:                             # pragma: no cover
    _shared_memory = None

__all__ = [
    "AdmissionController",
    "DEFAULT_SLOT_BYTES",
    "HEADER_BYTES",
    "ShedError",
    "ShmRing",
    "SlotOverflowError",
    "TransportFallbackWarning",
    "leaked_segments",
    "shared_memory_available",
    "slot_bytes_for",
]

#: Default per-slot capacity (header included).  Sized so a large-city
#: request window or response histogram fits without fallback; metro
#: deployments should size slots explicitly via :func:`slot_bytes_for`.
DEFAULT_SLOT_BYTES = 16 * 1024 * 1024

#: Fixed header size at the start of every slot.
HEADER_BYTES = 512

#: Payloads inside a slot start on this alignment.
_ALIGN = 64

_MAGIC = 0x4F44534D                 # "ODSM" — OD shared memory
_MAX_ARRAYS = 4
_MAX_NDIM = 6
_HEAD = struct.Struct("<IIQd")      # magic, n_arrays, request_id, deadline
_DESC = struct.Struct("<16sII" + "Q" * _MAX_NDIM + "Q")

assert _HEAD.size + _MAX_ARRAYS * _DESC.size <= HEADER_BYTES


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can back a ring."""
    return _shared_memory is not None


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def slot_bytes_for(shapes: Sequence[Tuple[int, ...]],
                   dtypes: Optional[Sequence] = None) -> int:
    """Slot size (bytes) that fits the given arrays plus the header.

    ``shapes`` are the array shapes one direction of a round trip ships
    — for a forecast request ``[(s, N, N', K), (s, N, N'), (s, N, N')]``
    (tensors, mask, counts), for the response ``[(h, N, N', K)]`` — and
    ``dtypes`` the matching dtypes (default float64).  Size slots to the
    *max* of both directions, since the response reuses the request's
    slot.
    """
    if dtypes is None:
        dtypes = [np.float64] * len(shapes)
    offset = HEADER_BYTES
    for shape, dtype in zip(shapes, dtypes):
        offset = _aligned(offset)
        offset += int(math.prod(shape)) * np.dtype(dtype).itemsize
    return offset


class SlotOverflowError(ValueError):
    """The payload does not fit in one slot (caller should fall back)."""


class TransportFallbackWarning(RuntimeWarning):
    """The shm transport degraded to the pickled pipe (one-shot).

    Emitted at most once per pool: either shared memory is unavailable
    on this platform, or a payload exceeded the largest slot.  Requests
    still succeed — bit-identically — they just pay serialization
    again; resize ``slot_bytes`` (see :func:`slot_bytes_for`) to get
    the fast path back.
    """


class ShedError(RuntimeError):
    """Request refused at admission: overload or unmeetable deadline.

    Fast-fail by design — no worker is touched, no retry is consumed,
    and no stale answer is served: the caller asked for a deadline (or
    the operator bounded the queue) precisely so that an overloaded
    pool answers "no" in microseconds instead of "late" in seconds.
    """

    def __init__(self, key, reason: str):
        super().__init__(f"request shed for {key}: {reason}")
        self.key = key
        self.reason = reason


# ----------------------------------------------------------------------
# the slot ring
# ----------------------------------------------------------------------
class ShmRing:
    """A slot-based shared-memory arena for one worker's round trips.

    The parent creates the segment (``create=True``) and owns slot
    allocation (:meth:`acquire`/:meth:`release`); the forked worker
    inherits the mapping and only reads/writes slots named in control
    frames.  Array bytes are written exactly once per direction;
    :meth:`read` with ``copy=False`` returns views straight into the
    segment (callers must drop them before :meth:`close`).
    """

    def __init__(self, slot_bytes: int = DEFAULT_SLOT_BYTES,
                 n_slots: int = 2, name: Optional[str] = None):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if slot_bytes <= HEADER_BYTES:
            raise ValueError(
                f"slot_bytes must exceed the {HEADER_BYTES}-byte header")
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.slot_bytes = int(slot_bytes)
        self.n_slots = int(n_slots)
        self.name = name or f"repro-serve-{secrets.token_hex(6)}"
        self._shm = _shared_memory.SharedMemory(
            name=self.name, create=True,
            size=self.slot_bytes * self.n_slots)
        self._free = list(range(self.n_slots))
        self._closed = False

    # ------------------------------------------------------------------
    def acquire(self) -> Optional[int]:
        """A free slot index, or None when every slot is in flight."""
        return self._free.pop() if self._free else None

    def release(self, slot: int) -> None:
        if slot not in self._free:
            self._free.append(slot)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    def write(self, slot: int, arrays: Sequence[np.ndarray],
              request_id: int, deadline: Optional[float] = None) -> int:
        """Write header + arrays into ``slot``; returns payload bytes.

        Raises :class:`SlotOverflowError` when the arrays do not fit —
        the caller falls back to the pickled transport for this request.
        """
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        if len(arrays) > _MAX_ARRAYS:
            raise ValueError(f"at most {_MAX_ARRAYS} arrays per slot")
        arrays = [np.ascontiguousarray(a) for a in arrays]
        offsets: List[int] = []
        offset = HEADER_BYTES
        for array in arrays:
            if array.ndim > _MAX_NDIM:
                raise ValueError(f"at most {_MAX_NDIM} dims per array")
            offset = _aligned(offset)
            offsets.append(offset)
            offset += array.nbytes
        if offset > self.slot_bytes:
            raise SlotOverflowError(
                f"payload {offset} B exceeds slot_bytes="
                f"{self.slot_bytes} B")
        base = slot * self.slot_bytes
        buf = self._shm.buf
        _HEAD.pack_into(buf, base, _MAGIC, len(arrays), request_id,
                        math.nan if deadline is None else float(deadline))
        desc = base + _HEAD.size
        for array, payload_offset in zip(arrays, offsets):
            shape = list(array.shape) + [0] * (_MAX_NDIM - array.ndim)
            _DESC.pack_into(buf, desc, str(array.dtype).encode(),
                            array.ndim, 0, *shape, array.nbytes)
            desc += _DESC.size
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf,
                              offset=base + payload_offset)
            np.copyto(view, array)
            del view                  # release the exported buffer pointer
        return offset - HEADER_BYTES

    def read(self, slot: int, request_id: Optional[int] = None,
             copy: bool = True
             ) -> Tuple[List[np.ndarray], Optional[float]]:
        """Arrays + deadline from ``slot`` (validating the header).

        ``copy=False`` returns zero-copy views into the segment: the
        worker's fast path, at the price that every view must be dropped
        before the segment can close.
        """
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        base = slot * self.slot_bytes
        buf = self._shm.buf
        magic, n_arrays, got_id, deadline = _HEAD.unpack_from(buf, base)
        if magic != _MAGIC:
            raise ValueError(f"slot {slot} holds no frame (bad magic)")
        if request_id is not None and got_id != request_id:
            raise ValueError(
                f"slot {slot} holds request {got_id}, expected "
                f"{request_id}")
        arrays: List[np.ndarray] = []
        desc = base + _HEAD.size
        offset = HEADER_BYTES
        for _ in range(n_arrays):
            fields = _DESC.unpack_from(buf, desc)
            desc += _DESC.size
            dtype = np.dtype(fields[0].rstrip(b"\0").decode())
            ndim = fields[1]
            shape = tuple(fields[3:3 + ndim])
            nbytes = fields[3 + _MAX_NDIM]
            offset = _aligned(offset)
            view = np.ndarray(shape, dtype=dtype, buffer=buf,
                              offset=base + offset)
            arrays.append(view.copy() if copy else view)
            if copy:
                del view
            offset += nbytes
        return arrays, (None if math.isnan(deadline) else deadline)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment (views must already be dropped)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:     # a straggler view exists; the OS reclaims
            pass                # the mapping when the process exits

    def unlink(self) -> None:
        """Remove the segment name; safe to call from both sides."""
        try:
            self._shm.unlink()
        except FileNotFoundError:   # the other side already unlinked
            pass

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


def leaked_segments(names: Sequence[str]) -> List[str]:
    """Which of these segment names still exist in the OS namespace.

    Used by the benchmark gate and the respawn regression test to
    assert zero leaked ``/dev/shm`` entries after kill/respawn cycles
    and after ``close()``.
    """
    if _shared_memory is None:
        return []
    leaked = []
    for name in names:
        try:
            segment = _shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        segment.close()
        leaked.append(name)
    return leaked


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class AdmissionController:
    """Bounded in-flight queues + a per-forward latency EWMA.

    One instance per pool, one in-flight counter per worker slot.  A
    request is admitted against its key's *owner* slot (the affinity
    base), so backpressure reflects the queue the request would
    actually wait in.  :meth:`admit` raises :class:`ShedError` when

    * the owner's queue already holds ``max_inflight`` requests, or
    * the request's deadline has already passed, or
    * ``now + (depth + 1) * EWMA > deadline`` — the forward cannot
      finish in time even if nothing else goes wrong.

    The EWMA tracks *forward* latency only (cache hits are excluded by
    the caller): it is the honest per-request cost of an overloaded
    worker, which is what deadline feasibility must be judged against.
    """

    def __init__(self, n_slots: int, max_inflight: int = 8,
                 alpha: float = 0.2):
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.max_inflight = int(max_inflight)
        self.alpha = float(alpha)
        self.ewma_seconds: Optional[float] = None
        self.shed_full = 0
        self.shed_deadline = 0
        self._inflight = [0] * n_slots
        self._high_water = [0] * n_slots
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def admit(self, slot: int, key, deadline: Optional[float] = None,
              now: Optional[float] = None) -> Tuple[int, bool]:
        """Admit one request on ``slot`` or raise :class:`ShedError`.

        Returns ``(queue depth after admission, new high-water mark?)``.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            depth = self._inflight[slot]
            if depth >= self.max_inflight:
                self.shed_full += 1
                raise ShedError(
                    key, f"worker {slot} queue full "
                         f"({depth}/{self.max_inflight} in flight)")
            if deadline is not None:
                if now >= deadline:
                    self.shed_deadline += 1
                    raise ShedError(
                        key, f"deadline passed "
                             f"{(now - deadline) * 1e3:.2f}ms ago")
                if self.ewma_seconds is not None:
                    projected = now + (depth + 1) * self.ewma_seconds
                    if projected > deadline:
                        self.shed_deadline += 1
                        raise ShedError(
                            key,
                            f"deadline in {(deadline - now) * 1e3:.2f}ms "
                            f"unmeetable: {depth + 1} request(s) x EWMA "
                            f"{self.ewma_seconds * 1e3:.2f}ms")
            self._inflight[slot] = depth + 1
            new_high = self._inflight[slot] > self._high_water[slot]
            if new_high:
                self._high_water[slot] = self._inflight[slot]
            return self._inflight[slot], new_high

    def note_deadline_shed(self) -> None:
        """Count a deadline shed decided outside :meth:`admit` (e.g. a
        deadline that lapsed between retries)."""
        with self._lock:
            self.shed_deadline += 1

    def done(self, slot: int,
             forward_seconds: Optional[float] = None) -> None:
        """Release one in-flight token; fold a forward latency sample
        into the EWMA when one is supplied."""
        with self._lock:
            self._inflight[slot] = max(0, self._inflight[slot] - 1)
            if forward_seconds is not None:
                if self.ewma_seconds is None:
                    self.ewma_seconds = float(forward_seconds)
                else:
                    self.ewma_seconds = (
                        self.alpha * float(forward_seconds)
                        + (1.0 - self.alpha) * self.ewma_seconds)

    def queue_depth(self, slot: int) -> int:
        with self._lock:
            return self._inflight[slot]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": list(self._inflight),
                "high_water": list(self._high_water),
                "ewma_ms": (None if self.ewma_seconds is None
                            else self.ewma_seconds * 1e3),
                "shed_full": self.shed_full,
                "shed_deadline": self.shed_deadline,
            }
