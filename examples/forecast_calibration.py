#!/usr/bin/env python3
"""Are the forecast histograms calibrated? (beyond the paper's metrics)

The paper scores forecasts against empirical histograms with KL/JS/EMD.
For operational use (e.g. the travel-time reservation of §I) it also
matters that the predicted probabilities are *calibrated*: of all the
buckets a model assigns 30 % probability, roughly 30 % should happen.
This example trains BF and the NH baseline, scores both against the
individual test-period trips, and prints RPS, calibration error, and
sharpness.

Run:  python examples/forecast_calibration.py
"""

import numpy as np

from repro import prepare, toy_dataset
from repro.experiments import MethodBudget, make_bf, make_nh
from repro.metrics import (expected_calibration_error,
                           ranked_probability_score, sharpness,
                           trip_outcomes)


def collect_scores(forecaster, data, dataset):
    """Score a forecaster's 1-step forecasts against per-trip outcomes."""
    windows, split = data.windows, data.split
    forecaster.fit(windows, split, horizon=1)
    interval, origin, dest, bucket = trip_outcomes(
        dataset.trips, dataset.city, data.sequence.spec)
    predictions, outcomes = [], []
    for i in split.test:
        target_t = int(windows.target_intervals(i)[0])
        forecast = forecaster.predict(windows, np.array([i]), 1)[0, 0]
        mask = interval == target_t
        if not mask.any():
            continue
        predictions.append(forecast[origin[mask], dest[mask]])
        outcomes.append(bucket[mask])
    return np.concatenate(predictions), np.concatenate(outcomes)


def main() -> None:
    dataset = toy_dataset(n_days=6, n_regions=12, seed=17)
    data = prepare(dataset, s=6, h=1)
    budget = MethodBudget(epochs=8, batch_size=16, max_train_batches=12)

    print("Scoring forecasts against individual test-period trips...\n")
    header = f"{'method':8s} {'RPS':>8s} {'ECE':>8s} {'sharpness':>10s}"
    print(header)
    print("-" * len(header))
    for name, factory in [("nh", make_nh),
                          ("bf", lambda d: make_bf(d, budget))]:
        predictions, outcomes = collect_scores(factory(data), data,
                                               dataset)
        rps = ranked_probability_score(predictions, outcomes).mean()
        ece, _, _ = expected_calibration_error(predictions, outcomes)
        print(f"{name:8s} {rps:8.4f} {ece:8.4f} "
              f"{sharpness(predictions):10.4f}")

    print("\nRPS is a proper score (lower = better forecasts of actual "
          "trips); ECE measures reliability of the stated probabilities; "
          "sharpness is mean entropy (lower = more decisive). A good "
          "model improves RPS without sacrificing calibration.")


if __name__ == "__main__":
    main()
