"""Graclus-style graph coarsening and cluster-aware pooling order.

The paper's pooling stage (§V-A2, "geometrical pooling") requires that
consecutive nodes in the pooled ordering be spatial neighbours — pooling
regions 3 and 4 of Figure 1(b) together would mix non-adjacent regions.
We follow the classical ChebNet construction (Defferrard et al., the
paper's reference [32]):

1. repeatedly coarsen the proximity graph with Graclus heavy-edge
   matching, pairing each node with the neighbour that maximizes the
   normalized-cut score ``w_ij * (1/d_i + 1/d_j)``;
2. derive from the matching forest a permutation of the original nodes in
   which every aligned block of ``2^levels`` nodes is one spatial cluster,
   inserting disconnected "fake" nodes where matchings were incomplete;
3. pool the permuted signal with plain stride-``2^levels`` windows.

Fake nodes carry zero signal and zero adjacency, so with max pooling they
never win and with mean pooling they are excluded via a per-block count
correction handled by the pooling layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


def heavy_edge_matching(weights: np.ndarray) -> np.ndarray:
    """One Graclus matching pass.

    Returns an array ``cluster`` of length N where ``cluster[i]`` is the
    id of the coarse node that ``i`` maps to.  Nodes are visited in order
    of increasing degree (the usual heuristic); each unmatched node is
    paired with the unmatched neighbour maximizing
    ``w_ij * (1/d_i + 1/d_j)``, or becomes a singleton if no unmatched
    neighbour exists.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    degree = weights.sum(axis=1)
    # Denormal degrees overflow under reciprocal; the safe divide keeps
    # isolated (or near-isolated) nodes at zero priority.
    inv_degree = np.divide(1.0, degree, out=np.zeros_like(degree),
                           where=degree > np.finfo(np.float64).tiny)
    order = np.argsort(degree, kind="stable")
    cluster = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for i in order:
        if cluster[i] >= 0:
            continue
        neighbours = np.flatnonzero(weights[i])
        neighbours = neighbours[cluster[neighbours] < 0]
        if neighbours.size:
            scores = weights[i, neighbours] * (
                inv_degree[i] + inv_degree[neighbours])
            j = neighbours[int(np.argmax(scores))]
            cluster[i] = cluster[j] = next_id
        else:
            cluster[i] = next_id
        next_id += 1
    return cluster


def coarsen_adjacency(weights: np.ndarray,
                      cluster: np.ndarray) -> np.ndarray:
    """Collapse matched node pairs, summing inter-cluster edge weights."""
    n_coarse = int(cluster.max()) + 1
    coarse = np.zeros((n_coarse, n_coarse))
    np.add.at(coarse, (cluster[:, None], cluster[None, :]), weights)
    np.fill_diagonal(coarse, 0.0)
    return coarse


def _compute_perm(parents: List[np.ndarray]) -> List[np.ndarray]:
    """Per-level orderings placing each parent's children consecutively.

    ``parents[k]`` maps level-``k`` nodes to level-``k+1`` nodes.  The
    returned list has one index array per level (finest first).  Indices
    beyond the level's real node count denote fake nodes.
    """
    if not parents:
        return []
    orderings = [np.arange(int(parents[-1].max()) + 1)]
    for parent in reversed(parents):
        fake = len(parent)
        layer = []
        for coarse_node in orderings[-1]:
            children = list(np.flatnonzero(parent == coarse_node))
            while len(children) < 2:
                children.append(fake)
                fake += 1
            layer.extend(children)
        orderings.append(np.asarray(layer, dtype=np.int64))
    return orderings[::-1]


def _perm_adjacency(weights: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Pad ``weights`` with disconnected fake nodes and permute by ``order``."""
    n = weights.shape[0]
    m = len(order)
    padded = np.zeros((m, m))
    padded[:n, :n] = weights
    return padded[np.ix_(order, order)]


@dataclass
class Coarsening:
    """Result of multi-level coarsening of a proximity graph.

    Attributes
    ----------
    graphs:
        Adjacency per level (finest first), padded with fake nodes and
        permuted so stride-2 pooling between consecutive levels is valid.
    perm:
        Permutation (with fake indices) applied to the *original* node
        order at the finest level; length ``graphs[0].shape[0]``.
    n_original:
        Number of real nodes at the finest level.
    real_mask:
        Boolean masks per level marking real (non-fake) node slots.
    """

    graphs: List[np.ndarray]
    perm: np.ndarray
    n_original: int
    real_mask: List[np.ndarray] = field(default_factory=list)

    @property
    def levels(self) -> int:
        return len(self.graphs) - 1

    def padded_size(self, level: int = 0) -> int:
        return self.graphs[level].shape[0]

    def permute_signal(self, signal: np.ndarray, axis: int = 0) -> np.ndarray:
        """Numpy helper: pad with zeros and reorder ``signal`` along ``axis``."""
        signal = np.asarray(signal)
        n = signal.shape[axis]
        if n != self.n_original:
            raise ValueError(
                f"signal has {n} nodes, coarsening built for "
                f"{self.n_original}")
        m = len(self.perm)
        pad = [(0, 0)] * signal.ndim
        pad[axis] = (0, m - n)
        padded = np.pad(signal, pad)
        return np.take(padded, self.perm, axis=axis)


def naive_coarsening(weights: np.ndarray, levels: int) -> Coarsening:
    """Id-order coarsening — the ablation of cluster-aware pooling.

    Pairs node ``2i`` with node ``2i+1`` regardless of adjacency, which is
    exactly the pitfall the paper's §V-A2 example describes (pooling
    regions 3 and 4 of its Fig. 1(b) together although they are not
    neighbours).  Used by the ablation benchmark to quantify what the
    Graclus ordering buys.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    graphs = [weights.copy()]
    current = weights
    for _ in range(levels):
        m = current.shape[0]
        if m % 2:
            padded = np.zeros((m + 1, m + 1))
            padded[:m, :m] = current
            current = padded
            m += 1
        cluster = np.repeat(np.arange(m // 2), 2)
        current = coarsen_adjacency(current, cluster)
        graphs.append(current)
    # Rebuild each level's padded adjacency to match pooled sizes.
    sizes = [g.shape[0] for g in graphs]
    padded_sizes = [sizes[-1] * (2 ** (levels - k))
                    for k in range(levels)] + [sizes[-1]]
    fixed = []
    masks = []
    for g, target in zip(graphs, padded_sizes):
        out = np.zeros((target, target))
        out[:g.shape[0], :g.shape[0]] = g
        fixed.append(out)
        mask = np.zeros(target, dtype=bool)
        mask[:g.shape[0]] = True
        masks.append(mask)
    # Real-node mask at level 0 marks the n original nodes only.
    masks[0] = np.arange(padded_sizes[0]) < n
    return Coarsening(graphs=fixed, perm=np.arange(padded_sizes[0]),
                      n_original=n, real_mask=masks)


def coarsen_graph(weights: np.ndarray, levels: int) -> Coarsening:
    """Coarsen ``weights`` ``levels`` times and compute pooling orderings.

    After this, pooling the permuted level-0 signal with stride
    ``2**levels`` yields one value per level-``levels`` cluster, and
    ``graphs[k]`` is the correctly-ordered adjacency to convolve with
    after ``k`` stride-2 pools.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if levels == 0:
        return Coarsening(graphs=[weights.copy()],
                          perm=np.arange(n), n_original=n,
                          real_mask=[np.ones(n, dtype=bool)])
    raw_graphs = [weights]
    parents = []
    current = weights
    for _ in range(levels):
        cluster = heavy_edge_matching(current)
        current = coarsen_adjacency(current, cluster)
        parents.append(cluster)
        raw_graphs.append(current)
    orderings = _compute_perm(parents)
    graphs = [_perm_adjacency(g, order)
              for g, order in zip(raw_graphs, orderings)]
    masks = [np.asarray(order) < g.shape[0]
             for g, order in zip(raw_graphs, orderings)]
    return Coarsening(graphs=graphs, perm=np.asarray(orderings[0]),
                      n_original=n, real_mask=masks)
