"""The paper's contribution: BF and AF forecasting frameworks."""

from .af import AdvancedFramework
from .attention import AttentiveSeq2Seq, TemporalAttention
from .bf import BasicFramework
from .cnrnn import CNRNNCell, GraphSeq2Seq
from .config import (PaperHyperParameters, PracticalHyperParameters,
                     paper_af, paper_bf, practical_af, practical_bf)
from .losses import (af_loss, bf_loss, factor_dirichlet, factor_frobenius,
                     masked_frobenius)
from .recovery import recover
from .shardexec import (DataParallelUnit, ShardedExecution,
                        ShardMemoryBudgetError)
from .spatial import (DEFAULT_BLOCKS, GCNNBlock, SpatialFactorizer,
                      factorize_tensor_batch,
                      sharded_factorize_tensor_batch)
from .trainer import (ENGINE_MODES, NonFiniteGradError, TrainConfig,
                      Trainer, TrainResult)

__all__ = [
    "BasicFramework", "AdvancedFramework",
    "CNRNNCell", "GraphSeq2Seq",
    "TemporalAttention", "AttentiveSeq2Seq",
    "SpatialFactorizer", "GCNNBlock", "DEFAULT_BLOCKS",
    "factorize_tensor_batch", "sharded_factorize_tensor_batch",
    "ShardedExecution", "ShardMemoryBudgetError", "DataParallelUnit",
    "recover",
    "masked_frobenius", "bf_loss", "af_loss",
    "factor_frobenius", "factor_dirichlet",
    "Trainer", "TrainConfig", "TrainResult", "ENGINE_MODES",
    "PaperHyperParameters", "PracticalHyperParameters",
    "paper_bf", "paper_af", "practical_bf", "practical_af",
]
