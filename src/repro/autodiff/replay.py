"""Capture/replay execution engine: run a recorded training step directly.

Every training step of a fixed (model, input-shape, horizon) signature
builds the *same* autodiff graph: the op sequence, all shapes, and the
parameter tensors never change between iterations — only the batch
contents and the weights' values do.  Eager execution nevertheless pays
the full Python graph-construction tax each step: a ``Tensor`` and two
closures per op, a topological sort per backward, and fresh output
arrays everywhere.

:class:`ReplayEngine` removes that tax.  On the first step for a given
signature it runs the model **eagerly under a tape**: every op appends
its ``(output Tensor, forward thunk)`` pair (see
:mod:`repro.autodiff.tensor`).  Subsequent steps with the same signature
*replay* the tape: new batch data is copied into the persistent input
buffers the capture step was built on, each recorded thunk is
re-executed in original order (rebinding, via its closure cells,
everything the matching backward needs), and the memoized backward pass
reuses the captured graph.  No Tensors, closures, or topo sorts are
rebuilt — the recorded step *is* the program, and the captured output
arrays form the reusable buffer arena.

Because the thunks re-run the exact arithmetic of the eager step — in
the same order, against the same RNG generators — replay is bit-for-bit
identical to eager execution (tests/test_replay.py), so checkpointing
and kill-and-resume determinism are unaffected.

Fallback rules (see docs/EXECUTION.md):

* anomaly mode (:func:`repro.autodiff.detect_anomaly`) needs per-op
  introspection at graph-build time → the engine declines and the caller
  runs eagerly;
* a capture whose tape does not account for every Tensor created during
  the step (an op bypassing the thunk protocol) disables the engine for
  the rest of the run — the eagerly-computed loss of the failed capture
  is still used, so the step is not wasted and no RNG draw happens twice;
* a signature change (new batch shape, horizon, dtype, fused/training
  mode) simply captures a new tape; :meth:`ReplayEngine.invalidate`
  drops all tapes (the trainer calls it after checkpoint restore).
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import ops as _ops
from .lowering import LoweredPlan, LoweringFallbackWarning, lower_tape
from .tensor import (Tensor, _active_profiler, _run_forward, _set_tape,
                     anomaly_enabled, get_default_dtype)

__all__ = ["CaptureMismatchWarning", "InferenceEngine",
           "LoweringFallbackWarning", "ReplayEngine"]


class CaptureMismatchWarning(RuntimeWarning):
    """A capture step created Tensors its tape did not record."""


class _Tape:
    """One recorded training step: thunks, loss, and input buffers."""

    __slots__ = ("signature", "entries", "made", "loss",
                 "hist_buf", "truth_buf", "mask_buf", "plan")

    def __init__(self, signature: Tuple):
        self.signature = signature
        #: ``(output Tensor, forward thunk, spec)`` per recorded op, in
        #: creation order — which is execution order, so replay repeats
        #: eager's RNG draws exactly.  ``spec`` describes the op to the
        #: lowering pass (``None`` for ops without a lowering spec).
        self.entries: List[Tuple[Tensor, Callable[[], np.ndarray],
                                 Optional[tuple]]] = []
        #: Tensors created via ``Tensor._make`` while recording; must
        #: equal ``len(entries)`` for the capture to be trusted.
        self.made = 0
        self.loss: Optional[Tensor] = None
        self.hist_buf: Optional[np.ndarray] = None
        self.truth_buf: Optional[np.ndarray] = None
        self.mask_buf: Optional[np.ndarray] = None
        #: Lowered execution plan: ``None`` until compiled, ``False`` if
        #: lowering declined (this tape replays forever), else the plan.
        self.plan = None

    def arena_nbytes(self) -> int:
        """Bytes held live by this tape's buffers and op outputs."""
        total = (self.hist_buf.nbytes + self.truth_buf.nbytes
                 + self.mask_buf.nbytes)
        for out, _, _ in self.entries:
            total += out.data.nbytes
        return total


class ReplayEngine:
    """Capture-once, replay-many executor for training steps.

    Parameters
    ----------
    model:
        The module to train; called as ``model(history, horizon)``.
    loss_fn:
        ``loss_fn(prediction, targets, masks, r, c) -> scalar Tensor``
        (the :class:`repro.core.Trainer` contract).
    max_tapes:
        Tapes kept per engine; the least-recently-used is evicted beyond
        this (a ragged final batch per epoch needs 2; more only helps
        when batch shapes genuinely alternate).
    lower:
        When true, each tape is compiled into a flat
        :class:`~repro.autodiff.lowering.LoweredPlan` on its first reuse
        and steady-state steps run the plan's two instruction loops
        instead of walking thunks and closures.  A tape the lowerer
        declines (:class:`LoweringFallbackWarning`) keeps replaying.

    Usage (what ``Trainer.fit`` does per batch)::

        loss = engine.forward(histories, targets, masks, horizon)
        if loss is None:          # engine declined -> eager step
            ...
        else:
            optimizer.zero_grad()
            engine.backward(loss)
    """

    def __init__(self, model, loss_fn, max_tapes: int = 4,
                 lower: bool = False):
        self.model = model
        self.loss_fn = loss_fn
        self.max_tapes = int(max_tapes)
        self.lower = bool(lower)
        self.enabled = True
        self.captures = 0
        self.replays = 0
        self.eager_steps = 0
        self.lowered_steps = 0
        self.plan_fallbacks = 0
        self._tapes: "OrderedDict[Tuple, _Tape]" = OrderedDict()
        self._active: Optional[_Tape] = None
        self._plan_active: Optional[LoweredPlan] = None

    # ------------------------------------------------------------------
    def _signature(self, histories, targets, masks, horizon: int) -> Tuple:
        """Everything that must match for a recorded step to be reusable."""
        return (np.shape(histories), np.shape(targets), np.shape(masks),
                int(horizon), np.dtype(get_default_dtype()).name,
                _ops.fused_enabled(), bool(self.model.training))

    # ------------------------------------------------------------------
    def forward(self, histories, targets, masks,
                horizon: int) -> Optional[Tensor]:
        """Loss for one batch via capture or replay.

        Returns ``None`` when the engine declines (disabled after a
        failed capture, or anomaly mode active) — the caller must then
        run its own eager step.  Otherwise the returned loss is ready
        for :meth:`backward`.
        """
        if not self.enabled or anomaly_enabled():
            self.eager_steps += 1
            return None
        signature = self._signature(histories, targets, masks, horizon)
        tape = self._tapes.get(signature)
        if tape is None:
            return self._capture(signature, histories, targets, masks,
                                 horizon)
        self._tapes.move_to_end(signature)
        if self.lower:
            plan = tape.plan
            if plan is None:
                # Lazy compile on first reuse: the capture step's
                # backward has already memoized the topological order on
                # the loss, so the backward schedule freezes for free.
                plan = lower_tape(tape)
                tape.plan = plan if plan is not None else False
                if plan is None:
                    self.plan_fallbacks += 1
            if plan:
                return self._run_plan(tape, plan, histories, targets,
                                      masks)
        return self._replay(tape, histories, targets, masks)

    def backward(self, loss: Tensor) -> None:
        """Backward pass for a loss returned by :meth:`forward`.

        A lowered step runs the plan's precomputed backward schedule; on
        a live (non-lowered) tape the graph is retained (and its
        topological order memoized on the loss Tensor) so the next
        replay can reuse it; a capture-fallback loss backpropagates
        normally.
        """
        if self._plan_active is not None:
            self._plan_active.run_backward()
        elif self._active is not None:
            loss.backward(retain_graph=True)
        else:
            loss.backward()

    # ------------------------------------------------------------------
    def _capture(self, signature, histories, targets, masks,
                 horizon: int) -> Tensor:
        """Record one eager step into a fresh tape."""
        dtype = get_default_dtype()
        tape = _Tape(signature)
        # Persistent input buffers in the library dtype: the model and
        # loss wrap/alias default-dtype arrays without copying, so every
        # captured closure sees these exact buffers and a replay only
        # has to np.copyto new batch contents into them.
        tape.hist_buf = np.array(histories, dtype=dtype)
        tape.truth_buf = np.array(targets, dtype=dtype)
        tape.mask_buf = np.array(masks, dtype=dtype)
        previous = _set_tape(tape)
        try:
            prediction, r, c = self.model(tape.hist_buf, horizon)
            loss = self.loss_fn(prediction, tape.truth_buf, tape.mask_buf,
                                r, c)
        finally:
            _set_tape(previous)
        if tape.made != len(tape.entries) or loss.ndim != 0:
            # Some op created a Tensor without recording its thunk (or
            # the loss is not the scalar Trainer expects): replaying
            # this tape would silently reuse stale values.  The eager
            # pass we just ran is still a perfectly valid step — use its
            # loss (so no RNG draw is repeated) and stop capturing.
            self.enabled = False
            self._tapes.clear()
            self._active = None
            self.eager_steps += 1
            warnings.warn(
                f"capture incomplete: {tape.made} tensors created but "
                f"{len(tape.entries)} ops recorded"
                + ("" if loss.ndim == 0 else
                   f" (loss has shape {loss.shape}, expected scalar)")
                + "; an op is bypassing the run()-thunk protocol — "
                "falling back to eager execution for this run",
                CaptureMismatchWarning)
            return loss
        tape.loss = loss
        if len(self._tapes) >= self.max_tapes:
            self._tapes.popitem(last=False)     # evict least recently used
        self._tapes[signature] = tape
        self._active = tape
        self._plan_active = None
        self.captures += 1
        return loss

    def _replay(self, tape: _Tape, histories, targets, masks) -> Tensor:
        """Re-execute a recorded step on new batch contents."""
        np.copyto(tape.hist_buf, histories)
        np.copyto(tape.truth_buf, targets)
        np.copyto(tape.mask_buf, masks)
        # Coerce each output to its captured dtype: Tensor._make casts op
        # results to the default dtype on the eager path, and a thunk
        # whose internal math runs wider (e.g. a float64 structural
        # matrix under float32 training) must round identically here or
        # every downstream op drifts off the eager bit pattern.
        # np.asarray is a no-op when the dtype already matches.
        if _active_profiler() is None:
            for out, run, _ in tape.entries:
                out.data = np.asarray(run(), dtype=out.data.dtype)
        else:
            for out, run, _ in tape.entries:
                out.data = np.asarray(_run_forward(run),
                                      dtype=out.data.dtype)
        self._active = tape
        self._plan_active = None
        self.replays += 1
        return tape.loss

    def _run_plan(self, tape: _Tape, plan: LoweredPlan, histories,
                  targets, masks) -> Tensor:
        """Steady-state lowered step: one flat forward instruction loop."""
        loss = plan.run_forward(histories, targets, masks)
        self._active = tape
        self._plan_active = plan
        self.lowered_steps += 1
        return loss

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every recorded tape (e.g. after a checkpoint restore).

        Cheap insurance: thunks re-read parameter arrays and
        ``load_state_dict`` writes weights in place, so tapes actually
        survive restores — but a stale tape after *any* structural
        change would be silently wrong, so state-rewriting call sites
        invalidate anyway and pay one re-capture.
        """
        self._tapes.clear()
        self._active = None
        self._plan_active = None

    def arena_nbytes(self) -> int:
        """Total bytes held live across all recorded tapes' arenas."""
        return sum(t.arena_nbytes() for t in self._tapes.values())

    def plan_stats(self) -> Dict[str, int]:
        """Aggregated lowering statistics across the live tapes' plans."""
        plans = [t.plan for t in self._tapes.values()
                 if isinstance(t.plan, LoweredPlan)]
        totals = {"plans": len(plans), "plan_instructions": 0,
                  "plan_fused_chains": 0, "plan_fused_ops": 0,
                  "plan_elided": 0, "plan_scratch_nbytes": 0}
        for plan in plans:
            totals["plan_instructions"] += plan.n_forward + plan.n_backward
            totals["plan_fused_chains"] += plan.n_fused_chains
            totals["plan_fused_ops"] += plan.n_fused_ops
            totals["plan_elided"] += plan.n_elided
            totals["plan_scratch_nbytes"] += plan.scratch_nbytes
        return totals

    def stats(self) -> Dict[str, float]:
        """Counters for telemetry: how the engine actually executed."""
        stats = {"captures": self.captures, "replays": self.replays,
                 "eager_steps": self.eager_steps,
                 "lowered_steps": self.lowered_steps,
                 "plan_fallbacks": self.plan_fallbacks,
                 "tapes": len(self._tapes),
                 "arena_nbytes": self.arena_nbytes(),
                 "enabled": self.enabled}
        if self.lower:
            stats.update(self.plan_stats())
        return stats


class InferenceEngine:
    """Capture-once, replay-many executor for *inference* forwards.

    The serving hot path (``repro.serve``) runs the same model forward
    for every request of a given (batch shape, horizon, dtype)
    signature.  This engine applies the tape machinery to that path with
    the training-only weight dropped: tapes are captured with the model
    in eval mode and **no loss or backward schedule attached** — the
    arena holds only the prediction subgraph (no truth/mask buffers, no
    regularizer terms), warm steps re-execute just the prediction
    thunks, and with ``lower=True`` each tape compiles into a
    forward-only :class:`~repro.autodiff.lowering.LoweredPlan`.

    Same fallback rules as :class:`ReplayEngine`: declines under
    anomaly mode, disables itself permanently on a capture mismatch
    (still returning the eagerly-computed prediction), and recaptures on
    signature change with LRU tape eviction.

    :meth:`predict` always returns a fresh ndarray copy — the arena
    buffers it reads from are overwritten by the next request.
    """

    def __init__(self, model, max_tapes: int = 4, lower: bool = False):
        self.model = model
        self.max_tapes = int(max_tapes)
        self.lower = bool(lower)
        self.enabled = True
        self.captures = 0
        self.replays = 0
        self.eager_steps = 0
        self.lowered_steps = 0
        self.plan_fallbacks = 0
        self._tapes: "OrderedDict[Tuple, _Tape]" = OrderedDict()

    # ------------------------------------------------------------------
    def _signature(self, histories, horizon: int) -> Tuple:
        return (np.shape(histories), int(horizon),
                np.dtype(get_default_dtype()).name, _ops.fused_enabled())

    def _forward(self, histories, horizon: int) -> Tensor:
        prediction, _, _ = self.model(histories, horizon)
        return prediction

    # ------------------------------------------------------------------
    def predict(self, histories, horizon: int) -> np.ndarray:
        """One inference forward: ``(B, h, N, N', K)`` prediction array.

        The model is forced into eval mode for the call (and restored
        afterwards) so a capture is never polluted by dropout draws.
        """
        was_training = bool(self.model.training)
        if was_training:
            self.model.eval()
        try:
            return self._predict(histories, horizon)
        finally:
            if was_training:
                self.model.train()

    def _predict(self, histories, horizon: int) -> np.ndarray:
        if not self.enabled or anomaly_enabled():
            self.eager_steps += 1
            return np.array(self._forward(histories, horizon).data,
                            copy=True)
        signature = self._signature(histories, horizon)
        tape = self._tapes.get(signature)
        if tape is None:
            return self._capture(signature, histories, horizon)
        self._tapes.move_to_end(signature)
        if self.lower:
            plan = tape.plan
            if plan is None:
                plan = lower_tape(tape, forward_only=True)
                tape.plan = plan if plan is not None else False
                if plan is None:
                    self.plan_fallbacks += 1
            if plan:
                out = plan.run_forward(histories)
                self.lowered_steps += 1
                return np.array(out.data, copy=True)
        np.copyto(tape.hist_buf, histories)
        if _active_profiler() is None:
            for out, run, _ in tape.entries:
                out.data = np.asarray(run(), dtype=out.data.dtype)
        else:
            for out, run, _ in tape.entries:
                out.data = np.asarray(_run_forward(run),
                                      dtype=out.data.dtype)
        self.replays += 1
        return np.array(tape.loss.data, copy=True)

    # ------------------------------------------------------------------
    def _capture(self, signature, histories, horizon: int) -> np.ndarray:
        dtype = get_default_dtype()
        tape = _Tape(signature)
        tape.hist_buf = np.array(histories, dtype=dtype)
        # No targets at inference time; keep the slots as empty arrays so
        # arena accounting stays uniform with training tapes.
        tape.truth_buf = np.empty(0, dtype=dtype)
        tape.mask_buf = np.empty(0, dtype=dtype)
        previous = _set_tape(tape)
        try:
            prediction = self._forward(tape.hist_buf, horizon)
        finally:
            _set_tape(previous)
        if tape.made != len(tape.entries):
            self.enabled = False
            self._tapes.clear()
            self.eager_steps += 1
            warnings.warn(
                f"capture incomplete: {tape.made} tensors created but "
                f"{len(tape.entries)} ops recorded; an op is bypassing "
                "the run()-thunk protocol — serving falls back to eager "
                "forwards", CaptureMismatchWarning)
            return np.array(prediction.data, copy=True)
        # The tape root is the prediction itself: there is no loss at
        # inference time, and forward-only lowering never touches the
        # root beyond adopting its buffer.
        tape.loss = prediction
        if len(self._tapes) >= self.max_tapes:
            self._tapes.popitem(last=False)
        self._tapes[signature] = tape
        self.captures += 1
        return np.array(prediction.data, copy=True)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every tape (call after hot-reloading the model weights).

        Thunks re-read parameter arrays in place, so tapes usually
        survive a ``load_state_dict`` — but serving correctness must not
        ride on that: a reloaded model pays one re-capture instead.
        """
        self._tapes.clear()

    def arena_nbytes(self) -> int:
        return sum(t.arena_nbytes() for t in self._tapes.values())

    def stats(self) -> Dict[str, float]:
        """Counters for telemetry: how inference actually executed."""
        return {"captures": self.captures, "replays": self.replays,
                "eager_steps": self.eager_steps,
                "lowered_steps": self.lowered_steps,
                "plan_fallbacks": self.plan_fallbacks,
                "tapes": len(self._tapes),
                "arena_nbytes": self.arena_nbytes(),
                "enabled": self.enabled}
