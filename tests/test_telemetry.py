"""Tests for the JSONL telemetry event log and the Trainer hook."""

import io
import json

import numpy as np
import pytest

from repro.core import BasicFramework, TrainConfig, Trainer, bf_loss
from repro.telemetry import TelemetryLogger, emit, peak_rss_mb, read_events


class TestTelemetryLogger:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLogger(path) as log:
            log.emit("a", x=1)
            log.emit("b", y="two")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "a" and first["x"] == 1
        assert "ts" in first

    def test_run_id_stamped_on_every_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLogger(path, run_id="run-7") as log:
            log.emit("a")
        assert read_events(path)[0]["run_id"] == "run-7"

    def test_append_mode_preserves_prior_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLogger(path) as log:
            log.emit("first")
        with TelemetryLogger(path) as log:
            log.emit("second")
        assert [e["event"] for e in read_events(path)] == ["first",
                                                           "second"]

    def test_numpy_values_serialize(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLogger(path) as log:
            log.emit("a", loss=np.float64(0.5), n=np.int64(3),
                     values=np.array([1.0, 2.0]))
        event = read_events(path)[0]
        assert event["loss"] == 0.5
        assert event["n"] == 3
        assert event["values"] == [1.0, 2.0]

    def test_accepts_streams(self):
        stream = io.StringIO()
        log = TelemetryLogger(stream)
        log.emit("a", x=1)
        assert json.loads(stream.getvalue())["x"] == 1

    def test_emit_after_close_is_a_noop(self, tmp_path):
        """Long-running services may race a shutdown against in-flight
        workers; a late emit must neither raise nor lose earlier events."""
        path = tmp_path / "events.jsonl"
        log = TelemetryLogger(path)
        log.emit("before")
        log.close()
        record = log.emit("after", x=1)          # must not raise
        assert record["event"] == "after"        # caller still gets the dict
        assert [e["event"] for e in read_events(path)] == ["before"]

    def test_every_event_flushed_immediately(self, tmp_path):
        """A crash (or a reader tailing the file) must see every event
        already emitted — no buffering until close."""
        path = tmp_path / "events.jsonl"
        log = TelemetryLogger(path)
        log.emit("a", x=1)
        assert [e["event"] for e in read_events(path)] == ["a"]
        log.close()

    def test_read_events_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLogger(path) as log:
            log.emit("epoch", epoch=0)
            log.emit("checkpoint", epoch=0)
            log.emit("epoch", epoch=1)
        assert len(read_events(path, event="epoch")) == 2


class TestEmitDispatch:
    def test_none_sink_is_noop(self):
        emit(None, "anything", x=1)              # must not raise

    def test_callback_sink(self):
        seen = []
        emit(lambda event, fields: seen.append((event, fields)),
             "epoch", loss=0.5)
        assert seen == [("epoch", {"loss": 0.5})]

    def test_logger_sink(self):
        stream = io.StringIO()
        emit(TelemetryLogger(stream), "epoch", loss=0.5)
        assert json.loads(stream.getvalue())["loss"] == 0.5


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_mb()
        assert rss is None or rss > 0


class TestTrainerTelemetry:
    def _loss(self, pred, truth, mask, r, c):
        return bf_loss(pred, truth, mask, r, c, 1e-4, 1e-4)

    def test_epoch_events_schema(self, tmp_path, windows, split):
        model = BasicFramework(12, 12, 7, np.random.default_rng(0), rank=2,
                               encoder_dim=6, hidden_dim=8)
        trainer = Trainer(model, self._loss,
                          TrainConfig(epochs=2, batch_size=8,
                                      max_train_batches=3, patience=10))
        path = tmp_path / "train.jsonl"
        with TelemetryLogger(path) as log:
            trainer.fit(windows, split, horizon=2, telemetry=log)
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "fit_start"
        assert kinds[-1] == "fit_end"
        epochs = read_events(path, event="epoch")
        assert len(epochs) == 2
        for i, event in enumerate(epochs):
            assert event["epoch"] == i
            assert np.isfinite(event["train_loss"])
            assert np.isfinite(event["val_loss"])
            assert event["lr"] > 0
            assert event["grad_norm"] >= 0
            assert event["seconds"] >= 0
            assert event["peak_rss_mb"] is None or event["peak_rss_mb"] > 0
        end = read_events(path, event="fit_end")[0]
        assert end["epochs_run"] == 2
        assert end["diverged"] is False

    def test_checkpoint_events(self, tmp_path, windows, split):
        model = BasicFramework(12, 12, 7, np.random.default_rng(0), rank=2,
                               encoder_dim=6, hidden_dim=8)
        trainer = Trainer(model, self._loss,
                          TrainConfig(epochs=2, batch_size=8,
                                      max_train_batches=3, patience=10))
        path = tmp_path / "train.jsonl"
        with TelemetryLogger(path) as log:
            trainer.fit(windows, split, horizon=2,
                        checkpoint_dir=tmp_path / "ckpt", telemetry=log)
        checkpoints = read_events(path, event="checkpoint")
        assert len(checkpoints) == 2
        assert checkpoints[0]["path"].endswith("checkpoint.npz")

    def test_callback_hook_receives_epochs(self, windows, split):
        model = BasicFramework(12, 12, 7, np.random.default_rng(0), rank=2,
                               encoder_dim=6, hidden_dim=8)
        trainer = Trainer(model, self._loss,
                          TrainConfig(epochs=2, batch_size=8,
                                      max_train_batches=2, patience=10))
        seen = []
        trainer.fit(windows, split, horizon=2,
                    telemetry=lambda event, fields: seen.append(event))
        assert seen.count("epoch") == 2
