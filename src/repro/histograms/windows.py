"""Sliding-window samples and chronological splits for forecasting.

A sample pairs ``s`` consecutive historical tensors with the ``h``
following tensors (paper problem statement).  Samples are materialized
lazily — the underlying tensor sequence is stored once and windows are
views into it — so a two-week city dataset fits comfortably in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .tensor_builder import ODTensorSequence


@dataclass
class WindowDataset:
    """Sliding (history, future) windows over an OD tensor sequence.

    Sample ``i`` uses intervals ``[i, i+s)`` as history and
    ``[i+s, i+s+h)`` as the forecast target.

    ``offset`` is the absolute interval index of the sequence's first
    element.  It matters only when the sequence is a tail slice of a
    longer history (the serving path): slot-conditioned forecasters key
    on :meth:`target_intervals` modulo slots-per-day, so the absolute
    indices must survive the slicing.
    """

    sequence: ODTensorSequence
    s: int
    h: int
    offset: int = 0

    def __post_init__(self):
        if self.s < 1 or self.h < 1:
            raise ValueError("s and h must be >= 1")
        if len(self) <= 0:
            raise ValueError(
                f"sequence with {self.sequence.n_intervals} intervals too "
                f"short for s={self.s}, h={self.h}")

    def __len__(self) -> int:
        return self.sequence.n_intervals - self.s - self.h + 1

    # ------------------------------------------------------------------
    def history(self, i: int) -> np.ndarray:
        """History tensors, shape ``(s, N, N', K)``."""
        return self.sequence.tensors[i:i + self.s]

    def history_mask(self, i: int) -> np.ndarray:
        return self.sequence.mask[i:i + self.s]

    def target(self, i: int) -> np.ndarray:
        """Future tensors, shape ``(h, N, N', K)``."""
        return self.sequence.tensors[i + self.s:i + self.s + self.h]

    def target_mask(self, i: int) -> np.ndarray:
        """Indication tensors Ω of the future intervals, ``(h, N, N')``."""
        return self.sequence.mask[i + self.s:i + self.s + self.h]

    def target_intervals(self, i: int) -> np.ndarray:
        """Absolute interval indices of the targets (for time-of-day)."""
        return np.arange(i + self.s, i + self.s + self.h) + self.offset

    # ------------------------------------------------------------------
    def gather(self, indices) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack samples: returns (histories, targets, target_masks)."""
        histories = np.stack([self.history(i) for i in indices])
        targets = np.stack([self.target(i) for i in indices])
        masks = np.stack([self.target_mask(i) for i in indices])
        return histories, targets, masks

    def batches(self, indices: np.ndarray, batch_size: int,
                rng: np.random.Generator = None
                ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield shuffled mini-batches over the given sample indices."""
        indices = np.asarray(indices)
        if rng is not None:
            indices = rng.permutation(indices)
        for start in range(0, len(indices), batch_size):
            yield self.gather(indices[start:start + batch_size])


@dataclass(frozen=True)
class Split:
    """Chronological train/validation/test partition of window indices."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray


def chronological_split(dataset: WindowDataset,
                        train_fraction: float = 0.7,
                        val_fraction: float = 0.1) -> Split:
    """Split window indices by time: train on the earliest data,
    validate next, test on the most recent — the standard forecasting
    protocol, preventing leakage from the future into training.
    """
    if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1:
        raise ValueError("train + val fractions must leave room for test")
    n = len(dataset)
    train_end = int(n * train_fraction)
    val_end = int(n * (train_fraction + val_fraction))
    indices = np.arange(n)
    split = Split(train=indices[:train_end],
                  val=indices[train_end:val_end],
                  test=indices[val_end:])
    if min(len(split.train), len(split.val), len(split.test)) == 0:
        raise ValueError(
            f"split produced an empty part for {n} windows; use a longer "
            "sequence or different fractions")
    return split
