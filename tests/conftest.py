"""Shared fixtures: small cities, datasets, and tensor sequences.

Everything here is session-scoped and deterministic so the suite stays
fast; tests that need mutation make their own copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.histograms import WindowDataset, build_od_tensors, chronological_split
from repro.regions import toy_city
from repro.trips import toy_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def city():
    return toy_city(seed=3, n_regions=12)


@pytest.fixture(scope="session")
def dataset():
    return toy_dataset(n_days=3, n_regions=12, seed=42)


@pytest.fixture(scope="session")
def sequence(dataset):
    return build_od_tensors(dataset.trips, dataset.city,
                            n_intervals=dataset.field.n_intervals)


@pytest.fixture(scope="session")
def windows(sequence):
    return WindowDataset(sequence, s=3, h=2)


@pytest.fixture(scope="session")
def split(windows):
    return chronological_split(windows)


@pytest.fixture(scope="session")
def proximity(dataset):
    return dataset.city.proximity()
