"""Evaluation metrics: KL/JS/EMD and masked DisSim aggregation."""

from .bootstrap import BootstrapResult, paired_bootstrap
from .calibration import (expected_calibration_error, histogram_entropy,
                          ranked_probability_score, sharpness,
                          trip_outcomes)
from .divergence import (METRICS, PAPER_DELTA, emd, emd_flow, js_divergence,
                         kl_divergence)
from .evaluation import (EvaluationResult, distance_groups,
                         evaluate_forecasts, grouped_metric,
                         time_of_day_groups)

__all__ = [
    "kl_divergence", "js_divergence", "emd", "emd_flow",
    "METRICS", "PAPER_DELTA",
    "EvaluationResult", "evaluate_forecasts", "grouped_metric",
    "time_of_day_groups", "distance_groups",
    "ranked_probability_score", "expected_calibration_error",
    "histogram_entropy", "sharpness", "trip_outcomes",
    "BootstrapResult", "paired_bootstrap",
]
