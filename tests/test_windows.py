"""Tests for sliding windows and chronological splits."""

import numpy as np
import pytest

from repro.histograms import WindowDataset, chronological_split


class TestWindowDataset:
    def test_window_count(self, sequence):
        w = WindowDataset(sequence, s=3, h=2)
        assert len(w) == sequence.n_intervals - 3 - 2 + 1

    def test_history_target_contiguity(self, sequence):
        w = WindowDataset(sequence, s=3, h=2)
        i = 17
        assert np.allclose(w.history(i), sequence.tensors[17:20])
        assert np.allclose(w.target(i), sequence.tensors[20:22])
        assert np.array_equal(w.target_intervals(i), [20, 21])

    def test_masks_align(self, sequence):
        w = WindowDataset(sequence, s=3, h=2)
        assert np.array_equal(w.target_mask(5), sequence.mask[8:10])
        assert np.array_equal(w.history_mask(5), sequence.mask[5:8])

    def test_gather_shapes(self, windows):
        histories, targets, masks = windows.gather([0, 5, 9])
        n = windows.sequence.n_origins
        assert histories.shape == (3, 3, n, n, 7)
        assert targets.shape == (3, 2, n, n, 7)
        assert masks.shape == (3, 2, n, n)

    def test_batches_cover_all_indices(self, windows):
        indices = np.arange(20)
        seen = 0
        for histories, _, _ in windows.batches(indices, batch_size=6):
            seen += len(histories)
            assert len(histories) <= 6
        assert seen == 20

    def test_batches_shuffle(self, windows):
        indices = np.arange(30)
        rng = np.random.default_rng(0)
        first = next(iter(windows.batches(indices, 30, rng=rng)))[0]
        plain = next(iter(windows.batches(indices, 30)))[0]
        assert not np.allclose(first, plain)

    def test_invalid_parameters(self, sequence):
        with pytest.raises(ValueError):
            WindowDataset(sequence, s=0, h=1)
        with pytest.raises(ValueError):
            WindowDataset(sequence, s=3, h=0)
        with pytest.raises(ValueError):
            WindowDataset(sequence.slice(0, 4), s=3, h=2)


class TestChronologicalSplit:
    def test_partitions_disjoint_and_ordered(self, windows):
        split = chronological_split(windows)
        assert len(split.train) + len(split.val) + len(split.test) \
            == len(windows)
        assert split.train.max() < split.val.min()
        assert split.val.max() < split.test.min()

    def test_fractions(self, windows):
        split = chronological_split(windows, 0.5, 0.25)
        n = len(windows)
        assert len(split.train) == int(n * 0.5)
        assert abs(len(split.val) - n * 0.25) <= 1

    def test_invalid_fractions(self, windows):
        with pytest.raises(ValueError):
            chronological_split(windows, 0.9, 0.2)
        with pytest.raises(ValueError):
            chronological_split(windows, 0.0, 0.1)

    def test_empty_part_rejected(self, sequence):
        tiny = WindowDataset(sequence.slice(0, 8), s=3, h=2)
        with pytest.raises(ValueError):
            chronological_split(tiny, 0.9, 0.05)
