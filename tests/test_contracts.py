"""Tests for the pipeline-boundary data contracts (repro.contracts)."""

import numpy as np
import pytest

from repro.contracts import (ContractPolicy, ContractViolation,
                             check_finite, check_histograms, check_mask,
                             check_shape_dtype, check_symmetric_adjacency,
                             contract_policy, get_contract_policy,
                             set_contract_policy, validate_sequence)
from repro.histograms import HistogramSpec, ODTensorSequence


def _sequence(t=4, n=3, k=5, seed=0):
    rng = np.random.default_rng(seed)
    tensors = rng.random((t, n, n, k))
    tensors /= tensors.sum(axis=-1, keepdims=True)
    mask = np.ones((t, n, n), dtype=bool)
    counts = np.full((t, n, n), 9.0)
    return ODTensorSequence(tensors, mask, counts,
                            HistogramSpec(edges=tuple(range(k + 1))),
                            interval_minutes=15.0)


class Events:
    def __init__(self):
        self.records = []

    def __call__(self, event, fields):
        self.records.append((event, fields))

    def of(self, event):
        return [f for e, f in self.records if e == event]


class TestPolicy:
    def test_default_is_repair(self):
        assert get_contract_policy().mode == "repair"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ContractPolicy(mode="lenient")

    def test_set_accepts_bare_string_and_returns_previous(self):
        previous = set_contract_policy("strict")
        try:
            assert get_contract_policy().strict
        finally:
            set_contract_policy(previous)
        assert get_contract_policy().mode == previous.mode

    def test_context_manager_scopes(self):
        with contract_policy("off") as policy:
            assert not policy.enabled
            assert not get_contract_policy().enabled
        assert get_contract_policy().enabled


class TestCheckFinite:
    def test_clean_passes(self):
        check_finite(np.ones(4), "x", "b", ContractPolicy("repair"))

    @pytest.mark.parametrize("mode", ["repair", "strict"])
    def test_nan_always_hard_errors(self, mode):
        with pytest.raises(ContractViolation) as err:
            check_finite(np.array([1.0, np.nan]), "x", "b",
                         ContractPolicy(mode))
        assert err.value.kind == "non_finite"
        assert err.value.boundary == "b"
        assert "1 NaN" in str(err.value)

    def test_off_skips(self):
        check_finite(np.array([np.inf]), "x", "b", ContractPolicy("off"))


class TestCheckShapeDtype:
    def test_wildcards(self):
        check_shape_dtype(np.zeros((2, 3, 4)), "x", "b",
                          shape=(None, 3, -1),
                          policy=ContractPolicy("strict"))

    def test_mismatch_raises(self):
        with pytest.raises(ContractViolation) as err:
            check_shape_dtype(np.zeros((2, 3)), "x", "b", shape=(2, 4),
                              policy=ContractPolicy("repair"))
        assert err.value.kind == "shape"

    def test_dtype_mismatch_raises(self):
        with pytest.raises(ContractViolation) as err:
            check_shape_dtype(np.zeros(2, dtype=np.float32), "x", "b",
                              dtype=np.float64,
                              policy=ContractPolicy("repair"))
        assert err.value.kind == "dtype"


class TestCheckMask:
    def test_numeric_01_mask_repaired_to_bool(self):
        events = Events()
        policy = ContractPolicy("repair", telemetry=events)
        mask = np.array([[[0, 1], [1, 0]]], dtype=np.int64)
        repaired = check_mask(mask, (1, 2, 2, 5), "b", policy)
        assert repaired.dtype == np.bool_
        assert events.of("contract_repair")

    def test_numeric_mask_strict_rejected(self):
        mask = np.zeros((1, 2, 2), dtype=np.int64)
        with pytest.raises(ContractViolation):
            check_mask(mask, (1, 2, 2, 5), "b", ContractPolicy("strict"))

    def test_non_01_values_unrepairable(self):
        mask = np.full((1, 2, 2), 7, dtype=np.int64)
        with pytest.raises(ContractViolation):
            check_mask(mask, (1, 2, 2, 5), "b", ContractPolicy("repair"))

    def test_shape_mismatch_rejected(self):
        mask = np.ones((2, 2, 2), dtype=bool)
        with pytest.raises(ContractViolation):
            check_mask(mask, (1, 2, 2, 5), "b", ContractPolicy("repair"))


class TestCheckHistograms:
    def test_drifted_renormalized_in_place(self):
        events = Events()
        policy = ContractPolicy("repair", telemetry=events)
        sequence = _sequence()
        sequence.tensors[0, 0, 0] *= 1.37
        _, _, n_drifted, n_malformed = check_histograms(
            sequence.tensors, sequence.mask, "b", policy)
        assert (n_drifted, n_malformed) == (1, 0)
        assert np.allclose(sequence.tensors.sum(axis=-1), 1.0)
        assert events.of("contract_repair")[0]["n_cells"] == 1

    def test_zero_sum_observed_cell_quarantined(self):
        events = Events()
        policy = ContractPolicy("repair", telemetry=events)
        sequence = _sequence()
        sequence.tensors[1, 2, 1] = 0.0
        _, _, n_drifted, n_malformed = check_histograms(
            sequence.tensors, sequence.mask, "b", policy)
        assert (n_drifted, n_malformed) == (0, 1)
        assert not sequence.mask[1, 2, 1]
        assert events.of("contract_quarantine")[0]["n_cells"] == 1

    def test_negative_bucket_quarantined(self):
        sequence = _sequence()
        sequence.tensors[0, 1, 1, 0] = -0.2
        check_histograms(sequence.tensors, sequence.mask, "b",
                         ContractPolicy("repair"))
        assert not sequence.mask[0, 1, 1]
        assert np.all(sequence.tensors[0, 1, 1] == 0.0)

    def test_unobserved_cells_ignored(self):
        sequence = _sequence()
        sequence.mask[0, 0, 0] = False
        sequence.tensors[0, 0, 0] = 0.0
        _, _, n_drifted, n_malformed = check_histograms(
            sequence.tensors, sequence.mask, "b",
            ContractPolicy("repair"))
        assert (n_drifted, n_malformed) == (0, 0)

    def test_strict_raises_instead_of_repairing(self):
        sequence = _sequence()
        sequence.tensors[0, 0, 0] *= 2.0
        with pytest.raises(ContractViolation) as err:
            check_histograms(sequence.tensors, sequence.mask, "b",
                             ContractPolicy("strict"))
        assert err.value.kind == "histogram"


class TestSymmetricAdjacency:
    def test_asymmetry_repaired(self):
        events = Events()
        policy = ContractPolicy("repair", telemetry=events)
        weights = np.array([[0.0, 1.0], [0.5, 0.0]])
        repaired = check_symmetric_adjacency(weights, "w", "b", policy)
        assert np.allclose(repaired, repaired.T)
        assert np.allclose(repaired[0, 1], 0.75)
        assert events.of("contract_repair")

    def test_negative_weights_clipped(self):
        weights = np.array([[0.0, -1.0], [-1.0, 0.0]])
        repaired = check_symmetric_adjacency(weights, "w", "b",
                                             ContractPolicy("repair"))
        assert (repaired >= 0).all()

    def test_strict_rejects_asymmetry(self):
        weights = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ContractViolation):
            check_symmetric_adjacency(weights, "w", "b",
                                      ContractPolicy("strict"))

    def test_nan_adjacency_hard_errors(self):
        weights = np.array([[0.0, np.nan], [np.nan, 0.0]])
        with pytest.raises(ContractViolation):
            check_symmetric_adjacency(weights, "w", "b",
                                      ContractPolicy("repair"))


class TestBoundaryWiring:
    """The contracts must actually fire at the pipeline boundaries."""

    def test_sequence_construction_repairs_drift(self):
        rng = np.random.default_rng(0)
        tensors = rng.random((2, 3, 3, 5)) + 0.1   # unnormalized on purpose
        with contract_policy("repair"):
            sequence = ODTensorSequence(
                tensors, np.ones((2, 3, 3), dtype=bool),
                np.ones((2, 3, 3)),
                HistogramSpec(edges=(0, 1, 2, 3, 4, 5)), 15.0)
        assert np.allclose(sequence.tensors.sum(axis=-1), 1.0)

    def test_sequence_construction_rejects_nan(self):
        tensors = np.full((1, 2, 2, 3), np.nan)
        with pytest.raises(ContractViolation):
            ODTensorSequence(tensors, np.ones((1, 2, 2), dtype=bool),
                             np.ones((1, 2, 2)),
                             HistogramSpec(edges=(0, 1, 2, 3)), 15.0)

    def test_slice_skips_revalidation(self):
        sequence = _sequence()
        with contract_policy("strict"):
            sequence.tensors[0, 0, 0] *= 2.0     # damage after validation
            sliced = sequence.slice(0, 2)        # must not re-validate
        assert sliced.n_intervals == 2

    def test_scaled_laplacian_repairs_asymmetry(self):
        from repro.graph.laplacian import scaled_laplacian
        weights = np.array([[0.0, 1.0, 0.0],
                            [0.6, 0.0, 1.0],
                            [0.0, 1.0, 0.0]])
        with contract_policy("repair"):
            scaled = scaled_laplacian(weights)   # must not raise
        assert np.allclose(scaled, scaled.T)

    def test_scaled_laplacian_strict_rejects(self):
        from repro.graph.laplacian import scaled_laplacian
        weights = np.array([[0.0, 1.0], [0.5, 0.0]])
        with contract_policy("strict"), pytest.raises(ContractViolation):
            scaled_laplacian(weights)

    def test_bf_forward_rejects_nan_history(self):
        from repro.core import BasicFramework
        model = BasicFramework(3, 3, 4, np.random.default_rng(0), rank=2,
                               encoder_dim=4, hidden_dim=4, dropout=0.0)
        history = np.full((1, 2, 3, 3, 4), np.nan)
        with pytest.raises(ContractViolation) as err:
            model(history, horizon=1)
        assert err.value.boundary == "BF.forward"

    def test_bf_forward_rejects_wrong_buckets(self):
        from repro.core import BasicFramework
        model = BasicFramework(3, 3, 4, np.random.default_rng(0), rank=2,
                               encoder_dim=4, hidden_dim=4, dropout=0.0)
        history = np.zeros((1, 2, 3, 3, 9))
        with pytest.raises(ContractViolation) as err:
            model(history, horizon=1)
        assert err.value.kind == "shape"

    def test_trainer_rejects_nan_batch(self):
        from repro.core import (BasicFramework, TrainConfig, Trainer,
                                bf_loss)
        from repro.histograms import WindowDataset, chronological_split
        sequence = _sequence(t=12, n=3, k=4)
        local_windows = WindowDataset(sequence, s=3, h=2)
        local_split = chronological_split(local_windows)
        model = BasicFramework(3, 3, 4, np.random.default_rng(0),
                               rank=2, encoder_dim=4, hidden_dim=4,
                               dropout=0.0)
        trainer = Trainer(
            model, lambda p, t, m, r, c: bf_loss(p, t, m, r, c, 0, 0),
            TrainConfig(epochs=1, batch_size=4, max_train_batches=1))
        sequence.tensors[:] = np.nan             # poison post-validation
        with pytest.raises(ContractViolation) as err:
            trainer.fit(local_windows, local_split, horizon=2)
        assert err.value.boundary == "trainer.fit"

    def test_load_sequence_validates(self, tmp_path):
        from repro.persistence import load_sequence, save_sequence
        sequence = _sequence()
        path = tmp_path / "seq.npz"
        save_sequence(sequence, path)
        events = Events()
        policy = ContractPolicy("repair", telemetry=events)
        loaded = load_sequence(path, policy=policy)
        assert np.allclose(loaded.tensors.sum(axis=-1), 1.0)

    def test_forecast_latest_rejects_nan_prediction(self):
        from repro.forecast import forecast_latest

        class NaNForecaster:
            def predict(self, windows, indices, horizon):
                t = windows.sequence.tensors
                return np.full((len(indices), horizon) + t.shape[1:],
                               np.nan)

        sequence = _sequence(t=6)
        with pytest.raises(ContractViolation) as err:
            forecast_latest(NaNForecaster(), sequence, s=3, horizon=1)
        assert err.value.boundary == "forecast_latest"

    def test_off_policy_disables_everything(self):
        rng = np.random.default_rng(0)
        tensors = rng.random((1, 2, 2, 3))       # unnormalized
        with contract_policy("off"):
            sequence = ODTensorSequence(
                tensors.copy(), np.ones((1, 2, 2), dtype=bool),
                np.ones((1, 2, 2)),
                HistogramSpec(edges=(0, 1, 2, 3)), 15.0)
        assert np.array_equal(sequence.tensors, tensors)   # untouched
