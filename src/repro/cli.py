"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Fit a roster of methods on a synthetic city and print the Table II
    style accuracy table (optionally export it as JSON).
``sparseness``
    Print Figure 7 style sparseness statistics for a city dataset.
``generate``
    Generate a city dataset and save its OD tensor sequence as ``.npz``.
``serve``
    Fit a quick model, register its checkpoint in a forecast service,
    and replay a stream of "forecast now" requests, printing
    forecasts/sec and latency percentiles (see docs/SERVING.md).
``info``
    Print library version and subsystem summary.

Examples
--------
::

    python -m repro compare --city toy --methods nh,bf,af --epochs 6
    python -m repro sparseness --city nyc --days 4
    python -m repro generate --city cd --days 2 --out cd_tensors.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

CITY_CHOICES = ("toy", "nyc", "cd")


def _build_dataset(args):
    from .trips import (chengdu_like_dataset, nyc_like_dataset,
                        toy_dataset)
    if args.city == "toy":
        return toy_dataset(n_days=args.days, n_regions=12, seed=args.seed)
    if args.city == "nyc":
        return nyc_like_dataset(n_days=args.days, seed=args.seed)
    return chengdu_like_dataset(n_days=args.days, seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", choices=CITY_CHOICES, default="toy",
                        help="which synthetic city to build")
    parser.add_argument("--days", type=int, default=4,
                        help="days of trips to generate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--contracts", default="repair",
                        choices=("off", "repair", "strict"),
                        help="data-contract policy at pipeline "
                             "boundaries (see docs/ROBUSTNESS.md): "
                             "repair fixes what it safely can, strict "
                             "rejects, off trusts the input")


def _apply_contracts(args) -> None:
    from .contracts import set_contract_policy
    set_contract_policy(args.contracts)


def cmd_compare(args) -> int:
    _apply_contracts(args)
    import repro.autodiff as autodiff
    from .experiments import (MethodBudget, full_roster, prepare,
                              run_comparison)
    from .persistence import export_comparison

    if args.float32:
        autodiff.set_default_dtype(np.float32)
    dataset = _build_dataset(args)
    data = prepare(dataset, s=args.s, h=args.h)
    budget = MethodBudget(epochs=args.epochs, batch_size=args.batch_size,
                          max_train_batches=args.max_batches,
                          engine=args.engine)
    roster = full_roster(budget)
    wanted = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in wanted if m not in roster]
    if unknown:
        print(f"unknown methods: {unknown}; choose from "
              f"{sorted(roster)}", file=sys.stderr)
        return 2
    roster = {name: roster[name] for name in wanted}
    print(f"{args.city}: {len(dataset.trips):,} trips, "
          f"{len(data.windows)} windows, "
          f"{data.sequence.sparsity().mean():.1%} mean sparsity")
    telemetry = None
    if args.telemetry:
        from .telemetry import TelemetryLogger
        telemetry = TelemetryLogger(args.telemetry,
                                    run_id=f"compare-{args.city}")
    try:
        result = run_comparison(data, roster,
                                max_test_windows=args.max_test_windows,
                                method_timeout=args.method_timeout,
                                artifact_dir=args.artifact_dir,
                                telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    for name, error in result.failures().items():
        print(f"method {name} failed: {error}", file=sys.stderr)
    print(result.format_table())
    from .viz import bar_chart
    print("\nOverall EMD (lower is better):")
    print(bar_chart({name: method.evaluation.overall("emd")
                     for name, method in result.methods.items()},
                    width=30))
    if args.out:
        export_comparison(result, args.out)
        print(f"rows written to {args.out}")
    return 0


def cmd_sparseness(args) -> int:
    _apply_contracts(args)
    from .experiments import prepare, sparseness_report

    dataset = _build_dataset(args)
    data = prepare(dataset, s=3, h=1)
    report = sparseness_report(data.sequence)
    print(f"{args.city}: {report['n_intervals']} intervals, "
          f"{report['overall_pair_coverage']:.1%} of OD pairs ever seen")
    for level, stats in report["by_min_trips"].items():
        print(f"  min_trips={level}: mean per-interval coverage "
              f"{stats['mean_cell_coverage']:.2%} "
              f"(p90 {stats['p90_cell_coverage']:.2%})")
    return 0


def cmd_generate(args) -> int:
    _apply_contracts(args)
    from .histograms import build_od_tensors
    from .persistence import save_sequence

    dataset = _build_dataset(args)
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    save_sequence(sequence, args.out)
    print(f"{len(dataset.trips):,} trips -> tensors "
          f"{sequence.tensors.shape} saved to {args.out}")
    return 0


def cmd_headroom(args) -> int:
    _apply_contracts(args)
    from .histograms import build_od_tensors
    from .trips import oracle_headroom

    dataset = _build_dataset(args)
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    report = oracle_headroom(dataset.field, sequence)
    print(f"{args.city}: conditional-oracle EMD "
          f"{report.conditional_emd:.4f}, slot-marginal EMD "
          f"{report.marginal_emd:.4f}")
    print(f"history-conditioning headroom: {report.gain:.1%} "
          "(the EMD gain a perfect short-history forecaster has over a "
          "perfect periodic one)")
    return 0


def cmd_serve(args) -> int:
    _apply_contracts(args)
    import tempfile
    import time
    from pathlib import Path

    from .experiments import MethodBudget, make_bf, prepare
    from .forecast import tail_slice
    from .persistence import save_checkpoint
    from .serve import (ForecastRequest, ForecastService,
                        ForecastWorkerPool, ModelKey, ServeConfig)

    dataset = _build_dataset(args)
    data = prepare(dataset, s=args.s, h=args.h)
    budget = MethodBudget(epochs=args.epochs, batch_size=args.batch_size,
                          max_train_batches=args.max_batches)
    forecaster = make_bf(data, budget)
    print(f"fitting bf on {args.city} "
          f"({len(data.windows)} windows, {args.epochs} epochs)...")
    forecaster.fit(data.windows, data.split, horizon=args.h)
    checkpoint_dir = Path(args.checkpoint_dir
                          or tempfile.mkdtemp(prefix="repro-serve-"))
    path = checkpoint_dir / f"bf-{args.city}.npz"
    save_checkpoint(path, forecaster.model, epoch=args.epochs - 1)
    print(f"checkpoint: {path}")

    telemetry = None
    if args.telemetry:
        from .telemetry import TelemetryLogger
        telemetry = TelemetryLogger(args.telemetry,
                                    run_id=f"serve-{args.city}")
    key = ModelKey(args.city, "demo")
    config = ServeConfig(engine=args.engine)

    def builder():
        return make_bf(data, budget).model

    def factory():
        service = ForecastService(config, telemetry=telemetry)
        service.register(key, path, builder)
        return service

    # Cycle a few distinct "nows" so the stream mixes cache hits with
    # warm-tape forwards, like a live feed where most queries repeat the
    # current interval.
    t = data.sequence.n_intervals
    tails = [data.sequence.slice(0, t - i) for i in range(4)]
    pool = None
    service = None
    if args.workers > 0:
        pool = ForecastWorkerPool(factory, n_workers=args.workers,
                                  request_timeout=args.request_timeout,
                                  transport=args.transport,
                                  telemetry=telemetry)
        run = lambda req: pool.forecast(req)          # noqa: E731
    else:
        service = factory()
        run = lambda req: service.forecast_one(req)   # noqa: E731
    latencies = []
    hits = 0
    try:
        for i in range(args.requests):
            sequence = tails[i % len(tails)]
            request = ForecastRequest(key, tail_slice(sequence, args.s),
                                      args.s, args.h)
            start = time.perf_counter()
            response = run(request)
            latencies.append(time.perf_counter() - start)
            if not response.ok:
                print(f"request {i} failed: {response.error}",
                      file=sys.stderr)
                return 1
            hits += response.cache == "hit"
        total = sum(latencies)
        ms = sorted(1e3 * x for x in latencies)
        pct = lambda q: ms[min(len(ms) - 1,                # noqa: E731
                               int(q * len(ms)))]
        print(f"{args.requests} forecasts in {total:.2f}s = "
              f"{args.requests / total:,.0f}/s  "
              f"(p50 {pct(0.50):.2f}ms, p99 {pct(0.99):.2f}ms, "
              f"{hits}/{args.requests} cache hits)")
        if pool is not None:
            print(f"pool: {pool.stats()}")
        else:
            stats = service.stats()
            print(f"cache: {stats['cache']}  registry: "
                  f"{stats['registry']}")
            for name, engine_stats in stats["engines"].items():
                print(f"engine[{name}]: {engine_stats}")
    finally:
        if pool is not None:
            pool.close()
        if service is not None:
            service.close()
        if telemetry is not None:
            telemetry.close()
    return 0


def cmd_info(args) -> int:
    import repro
    print(f"repro {repro.__version__} — stochastic OD matrix forecasting "
          "(ICDE 2020 reproduction)")
    print("subsystems: autodiff, graph, regions, trips, histograms, "
          "core (BF/AF), baselines (NH/GP/VAR/MR/FC), metrics, "
          "experiments")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core.trainer import ENGINE_MODES
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="fit methods, print table")
    _add_common(compare)
    compare.add_argument("--methods", default="nh,bf,af",
                         help="comma-separated subset of "
                              "nh,gp,var,mr,fc,bf,af")
    compare.add_argument("--s", type=int, default=6)
    compare.add_argument("--h", type=int, default=3)
    compare.add_argument("--epochs", type=int, default=6)
    compare.add_argument("--batch-size", type=int, default=16)
    compare.add_argument("--max-batches", type=int, default=12)
    compare.add_argument("--max-test-windows", type=int, default=32)
    compare.add_argument("--float32", action="store_true",
                         help="train in float32 (2x faster)")
    compare.add_argument("--engine", default="eager",
                         choices=ENGINE_MODES,
                         help="training-step executor: replay captures "
                              "each step's op tape once and re-executes "
                              "it; lowered also compiles the tape into a "
                              "flat fused instruction plan (both "
                              "bit-for-bit identical to eager, faster; "
                              "see docs/EXECUTION.md)")
    compare.add_argument("--out", default=None,
                         help="write the result rows as JSON")
    compare.add_argument("--telemetry", default=None, metavar="FILE",
                         help="append JSONL run events to FILE "
                              "(see docs/CHECKPOINTING.md)")
    compare.add_argument("--artifact-dir", default=None, metavar="DIR",
                         help="persist per-method results in DIR and "
                              "skip already-completed methods on rerun")
    compare.add_argument("--method-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill and retry a method stuck longer "
                              "than this")
    compare.set_defaults(fn=cmd_compare)

    sparse = sub.add_parser("sparseness", help="Fig. 7 style statistics")
    _add_common(sparse)
    sparse.set_defaults(fn=cmd_sparseness)

    generate = sub.add_parser("generate", help="save OD tensors as .npz")
    _add_common(generate)
    generate.add_argument("--out", required=True)
    generate.set_defaults(fn=cmd_generate)

    headroom = sub.add_parser(
        "headroom", help="oracle forecastability diagnostic (DESIGN §7)")
    _add_common(headroom)
    headroom.set_defaults(fn=cmd_headroom)

    serve = sub.add_parser(
        "serve", help="serve forecasts from a registry of checkpoints")
    _add_common(serve)
    serve.add_argument("--s", type=int, default=6)
    serve.add_argument("--h", type=int, default=3)
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=16)
    serve.add_argument("--max-batches", type=int, default=8)
    serve.add_argument("--requests", type=int, default=50,
                       help="number of forecast-now requests to replay")
    serve.add_argument("--engine", default="replay",
                       choices=("eager", "replay", "lowered"),
                       help="inference executor for loaded models "
                            "(forward-only tapes; see docs/SERVING.md)")
    serve.add_argument("--workers", type=int, default=0,
                       help="serve through this many fork-isolated "
                            "worker processes (0 = in-process)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request worker timeout in seconds")
    serve.add_argument("--transport", default="shm",
                       choices=("shm", "pickle"),
                       help="worker payload transport: zero-copy "
                            "shared-memory ring (default, falls back "
                            "to pickle per oversized payload) or the "
                            "pickled pipe (see docs/SERVING.md)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="where to write the demo checkpoint "
                            "(default: a temp dir)")
    serve.add_argument("--telemetry", default=None, metavar="FILE",
                       help="append JSONL serve events to FILE "
                            "(see docs/SERVING.md)")
    serve.set_defaults(fn=cmd_serve)

    info = sub.add_parser("info", help="version and subsystem summary")
    info.set_defaults(fn=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
