"""Tests for the FC/RNN and MR deep baselines and the neural adapter."""

import numpy as np
import pytest

from repro.baselines import (FCBaseline, MRForecaster, NeuralForecaster,
                             plain_loss)
from repro.core import TrainConfig


class TestFCBaseline:
    def test_forward_contract(self, rng):
        model = FCBaseline(6, 7, 3, rng, encoder_dim=4, hidden_dim=5)
        pred, r, c = model(rng.uniform(size=(2, 3, 6, 7, 3)), horizon=2)
        assert pred.shape == (2, 2, 6, 7, 3)
        assert r is None and c is None

    def test_valid_histograms(self, rng):
        model = FCBaseline(6, 7, 3, rng)
        pred, _, _ = model(rng.uniform(size=(2, 3, 6, 7, 3)), horizon=1)
        assert np.allclose(pred.numpy().sum(-1), 1.0)

    def test_rejects_wrong_ndim(self, rng):
        model = FCBaseline(6, 7, 3, rng)
        with pytest.raises(ValueError):
            model(rng.uniform(size=(3, 6, 7, 3)), horizon=1)

    def test_all_params_grad(self, rng):
        model = FCBaseline(5, 5, 3, rng, encoder_dim=4, hidden_dim=5)
        pred, _, _ = model(rng.uniform(size=(2, 3, 5, 5, 3)), horizon=2)
        truth = rng.uniform(size=(2, 2, 5, 5, 3))
        mask = np.ones((2, 2, 5, 5), dtype=bool)
        plain_loss(pred, truth, mask, None, None).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing


class TestMRForecaster:
    def test_fit_predict_shapes(self, windows, split):
        mr = MRForecaster(epochs=2, embedding_dim=8, hidden_dim=16)
        mr.fit(windows, split, horizon=2)
        pred = mr.predict(windows, split.test[:4], horizon=2)
        assert pred.shape[:2] == (4, 2)
        assert np.allclose(pred.sum(-1), 1.0)

    def test_periodic_only_predictions(self, windows, split):
        """MR output depends only on the target's time-of-day slot, not
        on the window's history — the paper's criticism of this family."""
        mr = MRForecaster(epochs=1)
        mr.fit(windows, split, horizon=1)
        per_day = int(round(24 * 60
                            / windows.sequence.interval_minutes))
        candidates = [(i, j) for i in split.test for j in split.test
                      if i < j
                      and (windows.target_intervals(i)[0] % per_day)
                      == (windows.target_intervals(j)[0] % per_day)]
        if not candidates:
            pytest.skip("no same-slot test pairs in toy split")
        i, j = candidates[0]
        a = mr.predict(windows, np.array([i]), 1)
        b = mr.predict(windows, np.array([j]), 1)
        assert np.allclose(a, b)

    def test_learns_time_variation(self, windows, split):
        """Predictions at different slots should differ after training."""
        mr = MRForecaster(epochs=3)
        mr.fit(windows, split, horizon=1)
        slots = [windows.target_intervals(i)[0] % 96 for i in split.test]
        unique = {}
        for i, slot in zip(split.test, slots):
            unique.setdefault(slot, i)
        keys = list(unique.values())[:2]
        if len(keys) < 2:
            pytest.skip("not enough distinct slots")
        a = mr.predict(windows, np.array([keys[0]]), 1)
        b = mr.predict(windows, np.array([keys[1]]), 1)
        assert not np.allclose(a, b)

    def test_predict_before_fit_raises(self, windows, split):
        with pytest.raises(RuntimeError):
            MRForecaster().predict(windows, split.test[:1], 1)


class TestNeuralForecasterAdapter:
    def test_fit_and_predict(self, windows, split, rng):
        model = FCBaseline(12, 12, 7, rng, encoder_dim=4, hidden_dim=6)
        adapter = NeuralForecaster(
            "fc", model, plain_loss,
            TrainConfig(epochs=1, batch_size=8, max_train_batches=3))
        adapter.fit(windows, split, horizon=2)
        assert adapter.result is not None
        pred = adapter.predict(windows, split.test[:3], horizon=2)
        assert pred.shape[0] == 3
