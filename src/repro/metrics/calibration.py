"""Probabilistic-forecast quality: sharpness, calibration, RPS.

The paper scores forecasts against *empirical* histograms (KL/JS/EMD).
A production system also needs to know whether the predicted
distributions are **calibrated** — when the model says "bucket 3 with
probability 0.4", does bucket 3 happen 40 % of the time?  This module
scores predicted histograms directly against per-trip outcomes:

* :func:`ranked_probability_score` — the proper scoring rule for ordinal
  buckets (squared CDF distance to the outcome's step CDF); minimized in
  expectation by the true distribution.
* :func:`expected_calibration_error` — reliability of the predicted
  bucket probabilities.
* :func:`histogram_entropy` / :func:`sharpness` — how concentrated the
  forecasts are (calibration is only meaningful alongside sharpness).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def histogram_entropy(histograms: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of histograms over the last axis."""
    h = np.asarray(histograms, dtype=np.float64)
    safe = np.where(h > 0, h, 1.0)
    return -(h * np.log(safe)).sum(axis=-1)


def sharpness(histograms: np.ndarray) -> float:
    """Mean entropy of a forecast set — lower is sharper."""
    return float(histogram_entropy(histograms).mean())


def ranked_probability_score(predictions: np.ndarray,
                             outcomes: np.ndarray) -> np.ndarray:
    """RPS of predicted histograms against realized bucket indices.

    ``predictions`` is ``(..., K)``; ``outcomes`` holds the realized
    bucket index per forecast, shape ``(...,)``.  RPS is
    ``sum_k (CDF_pred(k) - 1[outcome <= k])^2``; lower is better, 0 is a
    certain correct forecast.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    outcomes = np.asarray(outcomes)
    k = predictions.shape[-1]
    if (outcomes < 0).any() or (outcomes >= k).any():
        raise ValueError("outcomes must be valid bucket indices")
    forecast_cdf = np.cumsum(predictions, axis=-1)
    outcome_cdf = (np.arange(k) >= outcomes[..., None]).astype(np.float64)
    return ((forecast_cdf - outcome_cdf) ** 2).sum(axis=-1)


def expected_calibration_error(predictions: np.ndarray,
                               outcomes: np.ndarray,
                               n_bins: int = 10
                               ) -> Tuple[float, np.ndarray, np.ndarray]:
    """Reliability of per-bucket probabilities.

    Every (forecast, bucket) pair contributes a predicted probability
    and a hit indicator; pairs are grouped into ``n_bins`` confidence
    bins and the ECE is the share-weighted mean |confidence − frequency|.

    Returns ``(ece, bin_confidence, bin_frequency)``; empty bins hold
    NaN in the curves.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    outcomes = np.asarray(outcomes)
    k = predictions.shape[-1]
    flat_prob = predictions.reshape(-1, k).ravel()
    hits = (outcomes[..., None] == np.arange(k)).reshape(-1, k).ravel()
    bins = np.clip((flat_prob * n_bins).astype(int), 0, n_bins - 1)
    confidence = np.zeros(n_bins)
    frequency = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    np.add.at(confidence, bins, flat_prob)
    np.add.at(frequency, bins, hits.astype(np.float64))
    np.add.at(counts, bins, 1.0)
    with np.errstate(invalid="ignore"):
        conf_curve = np.where(counts > 0, confidence / counts, np.nan)
        freq_curve = np.where(counts > 0, frequency / counts, np.nan)
    weights = counts / counts.sum()
    gaps = np.abs(np.nan_to_num(conf_curve) - np.nan_to_num(freq_curve))
    ece = float((gaps * weights).sum())
    return ece, conf_curve, freq_curve


def trip_outcomes(trips, city, spec, interval_minutes: float = 15.0
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray]:
    """Per-trip (interval, origin, destination, bucket) outcome arrays.

    The glue between a :class:`~repro.trips.TripTable` and the scoring
    functions: look up each trip's cell and realized speed bucket so the
    corresponding forecast histogram can be scored.
    """
    interval = (trips.departure_min // interval_minutes).astype(np.int64)
    origin = city.partition.assign(trips.origin_xy)
    dest = city.partition.assign(trips.dest_xy)
    bucket = spec.assign_bucket(trips.speed_ms)
    return interval, origin, dest, bucket
