"""Tests for the paired bootstrap comparison."""

import numpy as np
import pytest

from repro.metrics.bootstrap import BootstrapResult, paired_bootstrap


def _setup(rng, n=400, k=5, noise_b=0.15):
    truth = rng.dirichlet(np.ones(k), size=(n, 1))
    mask = np.ones((n, 1), dtype=bool)
    # A = near-perfect; B = perturbed copy (worse).
    a = truth * 0.9 + 0.1 / k
    b_raw = truth + rng.uniform(0, noise_b, size=truth.shape)
    b = b_raw / b_raw.sum(-1, keepdims=True)
    return truth, a, b, mask


class TestPairedBootstrap:
    def test_clearly_better_method_detected(self, rng):
        truth, a, b, mask = _setup(rng)
        result = paired_bootstrap(truth, a, b, mask, n_resamples=500)
        assert result.mean_difference < 0
        assert result.p_better > 0.95
        assert result.significant
        assert result.ci_low < result.ci_high

    def test_identical_predictions_not_significant(self, rng):
        truth, a, _, mask = _setup(rng)
        result = paired_bootstrap(truth, a, a.copy(), mask,
                                  n_resamples=300)
        assert result.mean_difference == pytest.approx(0.0)
        assert not result.significant

    def test_symmetry(self, rng):
        truth, a, b, mask = _setup(rng)
        ab = paired_bootstrap(truth, a, b, mask, n_resamples=300, seed=1)
        ba = paired_bootstrap(truth, b, a, mask, n_resamples=300, seed=1)
        assert ab.mean_difference == pytest.approx(-ba.mean_difference)

    def test_respects_mask(self, rng):
        truth, a, b, mask = _setup(rng)
        mask2 = mask.copy()
        mask2[200:] = False
        result = paired_bootstrap(truth, a, b, mask2, n_resamples=100)
        assert result.n_cells == 200

    def test_deterministic_given_seed(self, rng):
        truth, a, b, mask = _setup(rng)
        r1 = paired_bootstrap(truth, a, b, mask, n_resamples=200, seed=7)
        r2 = paired_bootstrap(truth, a, b, mask, n_resamples=200, seed=7)
        assert r1.ci_low == r2.ci_low and r1.p_better == r2.p_better

    def test_metric_argument(self, rng):
        truth, a, b, mask = _setup(rng)
        emd = paired_bootstrap(truth, a, b, mask, metric="emd",
                               n_resamples=100)
        kl = paired_bootstrap(truth, a, b, mask, metric="kl",
                              n_resamples=100)
        assert emd.mean_difference != kl.mean_difference

    def test_shape_validation(self, rng):
        truth, a, b, mask = _setup(rng)
        with pytest.raises(ValueError):
            paired_bootstrap(truth, a[:10], b, mask)
        with pytest.raises(ValueError):
            paired_bootstrap(truth, a, b, mask[:, 0])

    def test_empty_mask_rejected(self, rng):
        truth, a, b, mask = _setup(rng)
        with pytest.raises(ValueError):
            paired_bootstrap(truth, a, b, np.zeros_like(mask))
