"""Tests for KL, JS, and EMD."""

import numpy as np
import pytest

from repro.metrics import emd, emd_flow, js_divergence, kl_divergence


def _random_histograms(rng, shape=(20,), k=7):
    raw = rng.uniform(0.01, 1.0, size=shape + (k,))
    return raw / raw.sum(axis=-1, keepdims=True)


class TestKL:
    def test_zero_for_identical(self, rng):
        m = _random_histograms(rng)
        assert np.allclose(kl_divergence(m, m), 0.0)

    def test_positive_for_different(self):
        m = np.array([0.9, 0.1])
        m_hat = np.array([0.1, 0.9])
        assert kl_divergence(m, m_hat) > 0

    def test_delta_smoothing_handles_zeros(self):
        m = np.array([1.0, 0.0])
        m_hat = np.array([0.0, 1.0])
        value = kl_divergence(m, m_hat)
        assert np.isfinite(value)

    def test_matches_manual_formula(self):
        m = np.array([0.5, 0.3, 0.2])
        m_hat = np.array([0.2, 0.5, 0.3])
        delta = 0.001
        manual = (m_hat * np.log((m_hat + delta) / (m + delta))).sum()
        assert kl_divergence(m, m_hat) == pytest.approx(manual)

    def test_vectorized(self, rng):
        m = _random_histograms(rng, shape=(4, 5))
        m_hat = _random_histograms(rng, shape=(4, 5))
        assert kl_divergence(m, m_hat).shape == (4, 5)


class TestJS:
    def test_zero_for_identical(self, rng):
        m = _random_histograms(rng)
        assert np.allclose(js_divergence(m, m), 0.0, atol=1e-12)

    def test_symmetry(self, rng):
        m = _random_histograms(rng)
        m_hat = _random_histograms(rng)
        assert np.allclose(js_divergence(m, m_hat),
                           js_divergence(m_hat, m))

    def test_bounded_by_log2(self, rng):
        m = _random_histograms(rng, shape=(50,))
        m_hat = _random_histograms(rng, shape=(50,))
        assert (js_divergence(m, m_hat) <= np.log(2) + 0.01).all()

    def test_opposite_onehots_near_log2(self):
        m = np.array([1.0, 0.0])
        m_hat = np.array([0.0, 1.0])
        assert js_divergence(m, m_hat) == pytest.approx(np.log(2), rel=0.02)


class TestEMD:
    def test_zero_for_identical(self, rng):
        m = _random_histograms(rng)
        assert np.allclose(emd(m, m), 0.0)

    def test_adjacent_shift_costs_one(self):
        m = np.array([1.0, 0.0, 0.0])
        m_hat = np.array([0.0, 1.0, 0.0])
        assert emd(m, m_hat) == pytest.approx(1.0)

    def test_two_bucket_shift_costs_two(self):
        m = np.array([1.0, 0.0, 0.0])
        m_hat = np.array([0.0, 0.0, 1.0])
        assert emd(m, m_hat) == pytest.approx(2.0)

    def test_symmetry(self, rng):
        m = _random_histograms(rng)
        m_hat = _random_histograms(rng)
        assert np.allclose(emd(m, m_hat), emd(m_hat, m))

    def test_triangle_inequality(self, rng):
        a = _random_histograms(rng, shape=(30,))
        b = _random_histograms(rng, shape=(30,))
        c = _random_histograms(rng, shape=(30,))
        assert (emd(a, c) <= emd(a, b) + emd(b, c) + 1e-9).all()

    def test_matches_flow_cost(self, rng):
        for _ in range(10):
            m = _random_histograms(rng, shape=())
            m_hat = _random_histograms(rng, shape=())
            flow = emd_flow(m, m_hat)
            k = len(m)
            ground = np.abs(np.arange(k)[:, None] - np.arange(k)[None, :])
            assert (flow * ground).sum() == pytest.approx(
                float(emd(m, m_hat)), abs=1e-9)

    def test_flow_marginals(self, rng):
        m = _random_histograms(rng, shape=())
        m_hat = _random_histograms(rng, shape=())
        flow = emd_flow(m, m_hat)
        assert np.allclose(flow.sum(axis=1), m, atol=1e-9)
        assert np.allclose(flow.sum(axis=0), m_hat, atol=1e-9)

    def test_flow_rejects_batch(self, rng):
        m = _random_histograms(rng, shape=(3,))
        with pytest.raises(ValueError):
            emd_flow(m, m)
