"""Hygiene checks on the benchmark harness (without running it)."""

import ast
import os
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("test_*.py"))


class TestBenchmarkHygiene:
    def test_every_paper_artifact_has_a_benchmark(self):
        names = {path.stem for path in BENCH_FILES}
        assert "test_table1_configs" in names
        assert "test_table2_overall" in names
        assert "test_fig7_sparseness" in names
        assert "test_fig8_10_time_of_day" in names
        assert "test_fig11_13_distance" in names
        assert "test_fig14_proximity" in names
        assert "test_ablations" in names

    @pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
    def test_parses_with_docstring(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a docstring"

    @pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
    def test_every_test_uses_benchmark_fixture(self, path):
        """--benchmark-only skips tests without the fixture; a bench test
        that forgot it would silently never run."""
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) \
                    and node.name.startswith("test_"):
                args = {a.arg for a in node.args.args}
                assert "benchmark" in args, (
                    f"{path.name}::{node.name} misses the benchmark "
                    "fixture")

    def test_runner_script_executable(self):
        script = BENCH_DIR.parent / "run_benchmarks.sh"
        assert script.exists()
        assert os.access(script, os.X_OK)

    def test_conftest_smoke_mode_documented(self):
        conftest = (BENCH_DIR / "conftest.py").read_text()
        assert "REPRO_BENCH_SCALE" in conftest
        assert "smoke" in conftest

    def test_engine_gates_wired_into_sweep(self):
        """Every execution-engine regression gate must run (and be able
        to fail) the benchmark sweep."""
        script = (BENCH_DIR.parent / "run_benchmarks.sh").read_text()
        for gate in ("replay_smoke.py", "lowered_smoke.py"):
            assert gate in script, f"{gate} not wired into the sweep"
            assert (BENCH_DIR / gate).exists()
            doc = ast.get_docstring(ast.parse((BENCH_DIR / gate)
                                              .read_text()))
            assert doc, f"{gate} lacks a docstring"

    def test_serve_gate_wired_into_sweep(self):
        """The serving regression gate (parity with forecast_latest,
        cache speedup, throughput floor) must run in the sweep."""
        script = (BENCH_DIR.parent / "run_benchmarks.sh").read_text()
        assert "serve_smoke.py" in script
        gate = BENCH_DIR / "serve_smoke.py"
        assert gate.exists()
        assert ast.get_docstring(ast.parse(gate.read_text()))

    def test_serve_smoke_reports_required_sections(self):
        """BENCH_SERVE.json must keep its parity/cache/throughput
        sections and the fields the dashboards read."""
        source = (BENCH_DIR / "serve_smoke.py").read_text()
        tree = ast.parse(source)
        report_keys = {
            key.value
            for node in ast.walk(tree) if isinstance(node, ast.Dict)
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        for section in ("parity", "cache", "throughput", "transport",
                        "shedding"):
            assert section in report_keys, (
                f"serve smoke report lost its '{section}' section")
        for field in ("cold_ms", "hit_ms", "speedup", "forecasts_per_sec",
                      "p50_ms", "p99_ms", "p99_warm_ms", "shm_ms",
                      "pickle_ms", "bit_identical", "leaked_segments",
                      "shed", "shed_full", "shed_deadline",
                      "healthy_after"):
            assert field in source, (
                f"serve smoke report lost its '{field}' field")
        assert "forecast_latest" in source, (
            "the parity gate must compare against forecast_latest")

    def test_serve_smoke_enforces_transport_and_shed_floors(self):
        """The shm-vs-pickle speedup floor and the overload shed
        scenario are load-bearing: losing either silently would let
        the zero-copy data plane regress to a slow pickle path."""
        source = (BENCH_DIR / "serve_smoke.py").read_text()
        assert "MIN_SHM_SPEEDUP" in source
        assert "leaked_segments" in source, (
            "the transport gate must assert no /dev/shm segment "
            "survives pool close")
        assert "ShedError" in source, (
            "the overload scenario must observe ShedError sheds")
        script = (BENCH_DIR.parent / "run_benchmarks.sh").read_text()
        assert "shm" in script, (
            "run_benchmarks.sh must document the shm transport gate")

    def test_shard_gate_wired_into_sweep(self):
        """The block-sparse sharding gate (exact-mode bit-parity with
        dense, metro-scale budgeted epoch) must run in the sweep."""
        script = (BENCH_DIR.parent / "run_benchmarks.sh").read_text()
        assert "shard_smoke.py" in script
        gate = BENCH_DIR / "shard_smoke.py"
        assert gate.exists()
        assert ast.get_docstring(ast.parse(gate.read_text()))

    def test_shard_smoke_reports_required_sections(self):
        """BENCH_SHARD.json must keep its parity/metro sections and the
        fields the scaling claims rest on."""
        source = (BENCH_DIR / "shard_smoke.py").read_text()
        tree = ast.parse(source)
        report_keys = {
            key.value
            for node in ast.walk(tree) if isinstance(node, ast.Dict)
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        for section in ("parity", "metro", "storage", "forward", "epoch"):
            assert section in report_keys, (
                f"shard smoke report lost its '{section}' section")
        for field in ("losses_bit_identical", "weights_bit_identical",
                      "rng_bit_identical", "max_shard_peak_bytes",
                      "budget_bytes", "dense_seconds", "sharded_seconds",
                      "occupancy", "serve_seconds"):
            assert field in source, (
                f"shard smoke report lost its '{field}' field")

    def test_microbench_reports_every_engine_section(self):
        """BENCH_AUTODIFF.json must record all engine comparisons: the
        eager/replay section, the lowered-plan section (with fusion and
        instruction counters), and the end-to-end smoke fit."""
        source = (BENCH_DIR / "microbench.py").read_text()
        tree = ast.parse(source)
        report_keys = {
            key.value
            for node in ast.walk(tree) if isinstance(node, ast.Dict)
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        for section in ("engine_step", "lowered_step", "smoke_epochs",
                        "af_step_op_profile"):
            assert section in report_keys, (
                f"microbench report lost its '{section}' section")
        for field in ("speedup_vs_replay", "speedup_vs_eager",
                      "plan_instructions", "plan_fused_chains",
                      "plan_fused_ops", "lowered_alloc_peak_bytes"):
            assert field in source, (
                f"lowered_step section lost its '{field}' field")
