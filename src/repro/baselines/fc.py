"""FC/RNN deep baseline — paper §VI-A3(1), its reference [30].

A GRU encoder–decoder on the *flattened* OD tensors: an FC layer encodes
each sparse interval tensor, a seq2seq GRU captures temporal dynamics,
and an FC layer projects decoder states back to the full
``N × N' × K`` tensor, with a per-cell softmax producing histograms.
No factorization, no spatial structure — the ablation the frameworks are
measured against (the paper also labels this configuration "FC"/"RNN").
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..autodiff import ops
from ..autodiff.layers import Dropout, Linear
from ..autodiff.module import Module
from ..autodiff.rnn import Seq2Seq
from ..autodiff.tensor import Tensor


class FCBaseline(Module):
    """Flattened GRU encoder–decoder forecaster.

    Same call contract as the frameworks: ``forward(history, horizon)``
    returns ``(prediction, None, None)`` — it has no factor tensors.
    """

    def __init__(self, n_origins: int, n_destinations: int, n_buckets: int,
                 rng: np.random.Generator, encoder_dim: int = 16,
                 hidden_dim: int = 32, num_layers: int = 1,
                 dropout: float = 0.2):
        super().__init__()
        self.n_origins = n_origins
        self.n_destinations = n_destinations
        self.n_buckets = n_buckets
        flat = n_origins * n_destinations * n_buckets
        self.encode = Linear(flat, encoder_dim, rng)
        self.drop = Dropout(dropout, rng)
        self.seq2seq = Seq2Seq(encoder_dim, hidden_dim, flat, rng,
                               num_layers=num_layers)

    def forward(self, history: Union[np.ndarray, Tensor], horizon: int
                ) -> Tuple[Tensor, None, None]:
        x = history if isinstance(history, Tensor) else Tensor(history)
        if x.ndim != 5:
            raise ValueError(f"history must be (B, s, N, N', K), "
                             f"got shape {x.shape}")
        batch, steps = x.shape[0], x.shape[1]
        flat = x.reshape(batch, steps, -1)
        codes = self.drop(ops.relu(self.encode(flat)))
        future = self.seq2seq(codes, horizon)
        scores = future.reshape(batch, horizon, self.n_origins,
                                self.n_destinations, self.n_buckets)
        return ops.softmax(scores, axis=-1), None, None
