"""Tests for the synthetic trip generator."""

import numpy as np
import pytest

from repro.regions import toy_city
from repro.trips import (DemandConfig, LatentTrafficField, TripGenerator,
                         daily_demand_profile, zipf_popularity)


@pytest.fixture(scope="module")
def generator():
    city = toy_city(seed=1, n_regions=10)
    field = LatentTrafficField(city, n_days=1, seed=2)
    return TripGenerator(field, DemandConfig(trips_per_interval=150.0),
                         seed=3)


class TestZipfPopularity:
    def test_normalized(self, rng):
        pop = zipf_popularity(20, 1.0, rng)
        assert pop.sum() == pytest.approx(1.0)
        assert (pop > 0).all()

    def test_skew_increases_with_exponent(self, rng):
        flat = zipf_popularity(50, 0.1, np.random.default_rng(0))
        skewed = zipf_popularity(50, 2.0, np.random.default_rng(0))
        assert skewed.max() > flat.max()


class TestDemandProfile:
    def test_peak_normalized(self):
        profile = daily_demand_profile(96)
        assert profile.max() == pytest.approx(1.0)
        assert (profile >= 0).all()

    def test_night_gap(self):
        profile = daily_demand_profile(96, night_gap=True)
        hours = (np.arange(96) + 0.5) / 4
        assert (profile[hours < 6] == 0).all()
        assert (profile[hours > 7] > 0).all()

    def test_no_gap_by_default(self):
        profile = daily_demand_profile(96)
        assert (profile > 0).all()


class TestTripGenerator:
    def test_interval_trips_in_window(self, generator):
        trips = generator.generate_interval(40)
        assert len(trips) > 0
        assert (trips.departure_min >= 40 * 15).all()
        assert (trips.departure_min < 41 * 15).all()

    def test_expected_counts_track_profile(self, generator):
        peak = generator.expected_counts(72).sum()     # ~18:00
        night = generator.expected_counts(12).sum()    # ~03:00
        assert peak > 3 * night

    def test_volume_calibration(self, generator):
        assert generator.expected_counts(72).sum() == pytest.approx(
            150.0 * generator._profile[72], rel=1e-6)

    def test_generate_range(self, generator):
        trips = generator.generate(first_interval=40, last_interval=44)
        assert (trips.departure_min >= 40 * 15).all()
        assert (trips.departure_min < 44 * 15).all()

    def test_popular_pairs_more_covered(self, generator):
        trips = generator.generate(first_interval=30, last_interval=60)
        owner_o = generator.city.partition.assign(trips.origin_xy)
        counts = np.bincount(owner_o, minlength=10)
        # Zipf demand: the busiest region should dominate the quietest.
        assert counts.max() > 3 * max(counts.min(), 1)

    def test_durations_match_distance_and_speed(self, generator):
        trips = generator.generate_interval(40)
        speeds = trips.speed_ms
        assert (speeds >= 0.3).all() and (speeds <= 30.0).all()

    def test_distances_at_least_straight_line(self, generator):
        trips = generator.generate_interval(44)
        straight = np.sqrt(((trips.origin_xy - trips.dest_xy) ** 2).sum(1))
        assert (trips.distance_km >= straight - 1e-9).all()

    def test_night_gap_config(self):
        city = toy_city(seed=1, n_regions=10)
        field = LatentTrafficField(city, n_days=1, seed=2)
        gen = TripGenerator(field, DemandConfig(trips_per_interval=200,
                                                night_gap=True), seed=4)
        assert len(gen.generate_interval(8)) == 0    # 02:00
        assert len(gen.generate_interval(40)) > 0    # 10:00

    def test_deterministic_given_seed(self):
        city = toy_city(seed=1, n_regions=10)
        field = LatentTrafficField(city, n_days=1, seed=2)
        a = TripGenerator(field, seed=9).generate_interval(40)
        b = TripGenerator(
            LatentTrafficField(city, n_days=1, seed=2),
            seed=9).generate_interval(40)
        assert len(a) == len(b)
        assert np.allclose(a.departure_min, b.departure_min)
