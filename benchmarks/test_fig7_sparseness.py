"""Figure 7: sparseness of original and preprocessed data.

The paper's Figure 7 contrasts cell coverage of the raw per-interval OD
tensors ("original") with the preprocessed variant.  We regenerate the
statistics at several preprocessing thresholds (minimum trips per cell)
for both cities and check the qualitative facts: per-interval tensors
are overwhelmingly sparse even though cumulative pair coverage is high,
and stricter preprocessing monotonically lowers coverage.
"""

from __future__ import annotations

import pytest

from repro.experiments import prepare, sparseness_report

from conftest import run_once


@pytest.mark.parametrize("city_name", ["nyc", "cd"])
def test_fig7_sparseness(benchmark, city_name, nyc_dataset, cd_dataset):
    dataset = nyc_dataset if city_name == "nyc" else cd_dataset

    def analyze():
        data = prepare(dataset, s=3, h=1)
        return sparseness_report(data.sequence, min_trips_levels=(1, 3, 5))

    report = run_once(benchmark, analyze)

    print(f"\nFigure 7 — {city_name.upper()} sparseness:")
    print(f"  OD pairs covered at least once: "
          f"{report['overall_pair_coverage']:.1%}")
    for level, stats in report["by_min_trips"].items():
        print(f"  min_trips={level}: mean per-interval cell coverage "
              f"{stats['mean_cell_coverage']:.2%}, "
              f"p90 {stats['p90_cell_coverage']:.2%}")

    levels = report["by_min_trips"]
    # Per-interval tensors are sparse (the paper's central challenge).
    assert levels[1]["mean_cell_coverage"] < 0.5
    # Cumulative coverage is far higher than per-interval coverage.
    assert report["overall_pair_coverage"] \
        > 3 * levels[1]["mean_cell_coverage"]
    # Preprocessing monotonically trades coverage for reliability.
    assert levels[1]["mean_cell_coverage"] \
        >= levels[3]["mean_cell_coverage"] \
        >= levels[5]["mean_cell_coverage"]
