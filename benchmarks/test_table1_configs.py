"""Table I: model configurations and weight counts.

The paper's Table I lists the layer configurations and total weight
counts of the three deep models on both datasets, the headline being
that AF — architecturally the most complex — carries the *fewest*
weights, because graph-convolution filters are shared across regions
while FC/BF project through N*N'*K-sized dense layers.

This benchmark rebuilds all three models at the paper's hyper-parameter
sizes for NYC (67 regions) and CD (79 regions), prints the weight
table, and checks the ordering #AF < #BF < #FC.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FCBaseline
from repro.core.config import PaperHyperParameters, paper_af, paper_bf
from repro.regions import chengdu_like, manhattan_like, toy_city

from conftest import SMOKE, run_once


def _cities():
    if SMOKE:
        return {"nyc": toy_city(seed=1, n_regions=12),
                "cd": toy_city(seed=2, n_regions=14)}
    return {"nyc": manhattan_like(), "cd": chengdu_like()}


def _build_all(city):
    hp = PaperHyperParameters()
    rng = np.random.default_rng(0)
    n = city.n_regions
    fc = FCBaseline(n, n, hp.n_buckets, rng, encoder_dim=hp.encoder_dim,
                    hidden_dim=hp.gru_units, dropout=hp.dropout)
    bf = paper_bf(n)
    weights = city.proximity()
    af = paper_af(weights, weights)
    return {"fc": fc, "bf": bf, "af": af}


@pytest.mark.parametrize("city_name", ["nyc", "cd"])
def test_table1_weight_counts(benchmark, city_name):
    city = _cities()[city_name]

    models = run_once(benchmark, lambda: _build_all(city))

    counts = {name: model.num_parameters()
              for name, model in models.items()}
    print(f"\nTable I — {city_name.upper()} ({city.n_regions} regions), "
          f"#weights per model:")
    for name in ("fc", "bf", "af"):
        print(f"  {name.upper():3s}: {counts[name]:>10,}")

    # Paper's observation: AF uses the fewest weights, FC the most.
    # Graph-conv filter banks do not shrink with the region count, so
    # the ordering only holds at real city sizes — not in smoke mode.
    if not SMOKE:
        assert counts["af"] < counts["bf"] < counts["fc"]


@pytest.mark.parametrize("city_name", ["nyc", "cd"])
def test_table1_forward_pass(benchmark, city_name):
    """All three Table I models run a forward pass at full size."""
    city = _cities()[city_name]
    models = _build_all(city)
    n, k = city.n_regions, PaperHyperParameters().n_buckets
    rng = np.random.default_rng(1)
    history = rng.uniform(size=(2, 3, n, n, k))

    def forward_all():
        return {name: model(history, horizon=1)[0].numpy()
                for name, model in models.items()}

    outputs = run_once(benchmark, forward_all)
    for name, prediction in outputs.items():
        assert prediction.shape == (2, 1, n, n, k)
        assert np.allclose(prediction.sum(-1), 1.0, atol=1e-4), name
