"""Training losses of the two frameworks.

* :func:`masked_frobenius` — squared error on observed cells only.  The
  ground-truth future tensors are themselves sparse, so errors are
  computed under the indication tensor Ω (paper Eq. 4).
* :func:`bf_loss` — Eq. 4: masked data term + Frobenius regularizers on
  the predicted factor tensors.
* :func:`af_loss` — Eq. 11: masked data term + *Dirichlet-norm*
  regularizers, pulling latent features of spatially-adjacent regions
  together under the two proximity graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor
from ..graph.energy import dirichlet_energy


def masked_frobenius(prediction: Tensor, truth: np.ndarray,
                     mask: np.ndarray) -> Tensor:
    """Mean squared error over observed cells.

    ``prediction`` is ``(..., N, N', K)``; ``truth`` matches; ``mask`` is
    ``(..., N, N')``.  Normalizing by the observed-cell count (not the
    tensor size) keeps the loss scale independent of sparsity.

    Evaluates as one fused graph node (see
    ``ops.fused_masked_frobenius``); the primitive composition is kept
    in ``ops.fused_masked_frobenius_reference``.
    """
    return ops.fused_masked_frobenius(prediction, truth, mask)


def factor_frobenius(factors: Tensor) -> Tensor:
    """Mean squared magnitude of a factor tensor (BF regularizer)."""
    return (factors * factors).sum() * (1.0 / factors.size)


def bf_loss(prediction: Tensor, truth: np.ndarray, mask: np.ndarray,
            r_factors: Tensor, c_factors: Tensor,
            lambda_r: float = 1e-4, lambda_c: float = 1e-4) -> Tensor:
    """Basic-framework loss (paper Eq. 4)."""
    loss = masked_frobenius(prediction, truth, mask)
    if lambda_r:
        loss = loss + lambda_r * factor_frobenius(r_factors)
    if lambda_c:
        loss = loss + lambda_c * factor_frobenius(c_factors)
    return loss


def factor_dirichlet(factors: Tensor, weights: np.ndarray,
                     node_axis: int) -> Tensor:
    """Mean Dirichlet energy of a factor tensor over its region axis."""
    energy = dirichlet_energy(factors, weights, node_axis=node_axis)
    return energy * (1.0 / factors.size)


def af_loss(prediction: Tensor, truth: np.ndarray, mask: np.ndarray,
            r_factors: Tensor, c_factors: Tensor,
            origin_weights: np.ndarray, dest_weights: np.ndarray,
            lambda_r: float = 1e-4, lambda_c: float = 1e-4,
            r_node_axis: Optional[int] = None,
            c_node_axis: Optional[int] = None) -> Tensor:
    """Advanced-framework loss (paper Eq. 11).

    The data term is the masked Frobenius error; the factor regularizers
    are Dirichlet norms under the origin graph (for ``R̂``, whose region
    axis indexes origins) and the destination graph (for ``Ĉ``).

    ``r_factors`` is ``(..., N, beta, K)`` (node axis -3 by default);
    ``c_factors`` is ``(..., beta, N', K)`` (node axis -2 by default).
    """
    loss = masked_frobenius(prediction, truth, mask)
    if lambda_r:
        axis = r_node_axis if r_node_axis is not None else r_factors.ndim - 3
        loss = loss + lambda_r * factor_dirichlet(
            r_factors, origin_weights, axis)
    if lambda_c:
        axis = c_node_axis if c_node_axis is not None else c_factors.ndim - 2
        loss = loss + lambda_c * factor_dirichlet(
            c_factors, dest_weights, axis)
    return loss
