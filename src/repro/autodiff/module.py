"""Module/Parameter abstractions for building neural networks.

A :class:`Module` owns named :class:`Parameter` tensors and child modules
and exposes the usual conveniences: recursive parameter collection,
train/eval mode switching, zeroing gradients, and state-dict style
save/load of raw numpy weights.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a module."""

    def __init__(self, data, name: str = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all network components.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; those are discovered automatically for optimization and
    serialization.  Subclasses implement :meth:`forward`; calling the
    module invokes it.
    """

    def __init__(self):
        self._training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        """Put this module (and all children) in training mode."""
        for module in self.modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        """Put this module (and all children) in evaluation mode."""
        for module in self.modules():
            module._training = False
        return self

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` for all owned weights.

        A parameter reachable through several attributes (weight tying)
        is yielded once, under the first name encountered, so optimizers
        don't double-step it and ``num_parameters`` doesn't double-count.
        """
        yield from self._named_parameters(prefix, set())

    def _named_parameters(self, prefix: str,
                          seen: set) -> Iterator[Tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            if attr.startswith("_") and attr != "_modules":
                continue
            qualified = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield qualified, value
            elif isinstance(value, Module):
                yield from value._named_parameters(f"{qualified}.", seen)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_parameters(
                            f"{qualified}.{i}.", seen)
                    elif isinstance(item, Parameter):
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield f"{qualified}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendant modules, each once."""
        yield from self._modules_impl(set())

    def _modules_impl(self, seen: set) -> Iterator["Module"]:
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value._modules_impl(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._modules_impl(seen)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    def num_parameters(self) -> int:
        """Total number of scalar weights (the paper's '#Weights' column)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all weights, keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load weights saved by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            # Cast to the parameter's *existing* dtype: a float32 model
            # must stay float32 through early-stopping restore and
            # ``load_model``, and a float64 model must not silently
            # truncate to a narrower saved dtype.
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {parameter.shape}")
            # Write through the existing array instead of rebinding:
            # captured replay tapes and flat-optimizer views alias
            # parameter.data, and an in-place copy keeps them live.
            if value is parameter.data:
                continue
            np.copyto(parameter.data, value)
