"""Figures 11-13: forecast accuracy by OD centroid distance.

The paper groups OD pairs into six 0.5 km bands below 3 km and plots
h=1, s=6 accuracy of FC, BF, AF per band.  Shape checks:

* AF is at least as good as FC across the populated bands (the paper's
  clearest margin);
* the distance bands cover the intended range and their data shares sum
  to one;
* speeds of longer trips are intrinsically more dispersed in the
  generator, so the far bands should not be easier than the overall
  best band (the paper's "more route options → harder" trend).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import distance_analysis

from conftest import SMOKE, run_once

EDGES = None if not SMOKE else [0.0, 0.8, 1.6, 2.4, 3.2, 4.0, 4.8]


@pytest.mark.parametrize("metric", ["emd", "kl", "js"])
@pytest.mark.parametrize("city_name", ["nyc", "cd"])
def test_fig11_13_distance(benchmark, metric, city_name, nyc_s6, cd_s6):
    data, comparison = nyc_s6 if city_name == "nyc" else cd_s6

    out = run_once(benchmark,
                   lambda: distance_analysis(data, comparison,
                                             metric=metric,
                                             edges_km=EDGES))

    print(f"\nFig 11-13 — {city_name.upper()}, {metric.upper()} per "
          "distance band:")
    shares = out["af"]["share"]
    print("  band:   " + " ".join(f"{b:>7d}" for b in range(len(shares))))
    print("  share:  " + " ".join(f"{s:>7.2%}" for s in shares))
    for name in ("fc", "bf", "af"):
        if name not in out:
            continue
        row = " ".join("    n/a" if np.isnan(v) else f"{v:7.3f}"
                       for v in out[name]["value"])
        print(f"  {name:4s}:   {row}")

    assert shares.sum() == pytest.approx(1.0)

    populated = np.flatnonzero(shares > 0.05)
    assert len(populated) >= 2, "distance bands degenerate"

    # AF at least matches FC on the populated bands (weighted).
    af = np.nansum(out["af"]["value"][populated] * shares[populated])
    fc = np.nansum(out["fc"]["value"][populated] * shares[populated])
    assert af <= fc * 1.05, f"AF worse than FC across bands: {af} vs {fc}"
