"""Tests for optimizer/scheduler serialization and checkpoint/resume."""

import numpy as np
import pytest

from repro.autodiff import SGD, Adam, StepDecay
from repro.autodiff.module import Parameter
from repro.core import BasicFramework, TrainConfig, Trainer, bf_loss
from repro.faultinject import corrupt_file
from repro.persistence import (Checkpoint, CheckpointCorruptError,
                               load_checkpoint, load_model,
                               save_checkpoint)


def _loss(pred, truth, mask, r, c):
    return bf_loss(pred, truth, mask, r, c, 1e-4, 1e-4)


def _make_model(seed=7, dropout=0.2):
    return BasicFramework(12, 12, 7, np.random.default_rng(seed), rank=3,
                          encoder_dim=8, hidden_dim=12, dropout=dropout)


def _step(param, optimizer):
    loss = ((param - 3.0) ** 2).sum()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()


class TestOptimizerStateDict:
    def test_adam_round_trip_continues_identically(self):
        p1 = Parameter(np.array([0.0, 10.0]))
        opt1 = Adam([p1], lr=0.3)
        for _ in range(5):
            _step(p1, opt1)
        state = opt1.state_dict()

        p2 = Parameter(p1.data.copy())
        opt2 = Adam([p2], lr=0.999)          # wrong lr, fixed by load
        opt2.load_state_dict(state)
        assert opt2.lr == opt1.lr
        assert opt2._t == opt1._t
        for _ in range(5):
            _step(p1, opt1)
            _step(p2, opt2)
        assert np.array_equal(p1.data, p2.data)

    def test_adam_state_is_a_copy(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        _step(p, opt)
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert not np.allclose(opt._m[0], 99.0)

    def test_adam_slot_count_mismatch_raises(self):
        p, q = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        state = Adam([p], lr=0.1).state_dict()
        with pytest.raises(ValueError):
            Adam([p, q], lr=0.1).load_state_dict(state)

    def test_adam_slot_shape_mismatch_raises(self):
        state = Adam([Parameter(np.zeros(2))], lr=0.1).state_dict()
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(3))], lr=0.1).load_state_dict(state)

    def test_sgd_momentum_round_trip(self):
        p1 = Parameter(np.array([0.0]))
        opt1 = SGD([p1], lr=0.05, momentum=0.9)
        for _ in range(3):
            _step(p1, opt1)
        p2 = Parameter(p1.data.copy())
        opt2 = SGD([p2], lr=0.05, momentum=0.9)
        opt2.load_state_dict(opt1.state_dict())
        for _ in range(3):
            _step(p1, opt1)
            _step(p2, opt2)
        assert np.array_equal(p1.data, p2.data)

    def test_float32_params_keep_float32_slots(self):
        from repro.autodiff import set_default_dtype
        set_default_dtype(np.float32)
        try:
            p = Parameter(np.zeros(2))
            opt = Adam([p], lr=0.1)
            opt.load_state_dict(opt.state_dict())
        finally:
            set_default_dtype(np.float64)
        assert opt._m[0].dtype == np.float32
        assert opt._v[0].dtype == np.float32


class TestStepDecayStateDict:
    def test_round_trip_restores_epoch_and_lr(self):
        p = Parameter(np.zeros(1))
        opt1 = Adam([p], lr=1e-3)
        sched1 = StepDecay(opt1, factor=0.8, every=5)
        for _ in range(7):
            sched1.step()
        opt2 = Adam([Parameter(np.zeros(1))], lr=1e-3)
        sched2 = StepDecay(opt2, factor=0.8, every=5)
        sched2.load_state_dict(sched1.state_dict())
        assert sched2.epoch == 7
        assert opt2.lr == opt1.lr
        assert sched2.step() == sched1.step()


class TestCheckpointFile:
    def test_full_round_trip(self, tmp_path, windows, split):
        model = _make_model()
        trainer = Trainer(model, _loss,
                          TrainConfig(epochs=2, batch_size=8,
                                      max_train_batches=3, seed=5))
        result = trainer.fit(windows, split, horizon=2)
        rng = np.random.default_rng(11)
        rng.normal(size=10)                      # advance past seed state
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=trainer.optimizer,
                        scheduler=trainer.scheduler, epoch=4,
                        result=result, rng_state=rng.bit_generator.state,
                        best_state=model.state_dict(),
                        extra={"stall": 2})

        clone = _make_model(seed=99)
        opt = Adam(clone.parameters(), lr=0.5)
        sched = StepDecay(opt, factor=0.5, every=3)
        checkpoint = load_checkpoint(path, model=clone, optimizer=opt,
                                     scheduler=sched)
        assert isinstance(checkpoint, Checkpoint)
        assert checkpoint.epoch == 4
        assert checkpoint.extra["stall"] == 2
        assert checkpoint.result_state["val_losses"] == result.val_losses
        # model weights restored bit-for-bit
        for name, value in model.state_dict().items():
            assert np.array_equal(checkpoint.model_state[name], value)
            assert np.array_equal(clone.state_dict()[name], value)
        # optimizer moments and step counter restored
        assert opt._t == trainer.optimizer._t
        for m1, m2 in zip(opt._m, trainer.optimizer._m):
            assert np.array_equal(m1, m2)
        assert sched.epoch == trainer.scheduler.epoch
        # the restored RNG continues exactly where the saved one left off
        resumed = np.random.default_rng(1)
        resumed.bit_generator.state = checkpoint.rng_state
        assert np.array_equal(rng.normal(size=4), resumed.normal(size=4))

    def test_optimizer_type_mismatch_raises(self, tmp_path):
        model = _make_model()
        adam = Adam(model.parameters(), lr=0.1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=adam, epoch=0)
        sgd = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            load_checkpoint(path, optimizer=sgd)

    def test_non_checkpoint_file_raises(self, tmp_path):
        path = tmp_path / "weights.npz"
        np.savez(path, w=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_no_temp_files_left_behind(self, tmp_path):
        model = _make_model()
        save_checkpoint(tmp_path / "ckpt.npz", model, epoch=0)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "ckpt.npz"]
        assert leftovers == []


class TestCorruptCheckpoint:
    """Damaged checkpoint files must raise CheckpointCorruptError with a
    readable message — never a zipfile/zlib/KeyError traceback."""

    def _save(self, tmp_path):
        model = _make_model()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=Adam(model.parameters(),
                                                    lr=0.1), epoch=1)
        return path

    def test_truncated_file(self, tmp_path):
        path = self._save(tmp_path)
        corrupt_file(path, seed=0, mode="truncate")
        with pytest.raises(CheckpointCorruptError) as err:
            load_checkpoint(path)
        assert "ckpt.npz" in str(err.value)

    def test_bit_flipped_file(self, tmp_path):
        path = self._save(tmp_path)
        corrupt_file(path, seed=1, mode="bitflip", n_bits=16)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_not_even_a_zip(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_wrong_schema_missing_meta(self, tmp_path):
        path = tmp_path / "weights.npz"
        np.savez(path, w=np.zeros(3))
        with pytest.raises(CheckpointCorruptError) as err:
            load_checkpoint(path)
        assert "__meta__" in str(err.value)

    def test_wrong_schema_unreadable_meta(self, tmp_path):
        path = tmp_path / "badmeta.npz"
        np.savez(path, __meta__=np.frombuffer(b"not json{", dtype=np.uint8))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_checksum_catches_swapped_arrays(self, tmp_path):
        # Valid zip, valid JSON meta, but the stored arrays were altered
        # after the fact: only the embedded SHA-256 can catch this.
        path = self._save(tmp_path)
        with np.load(path) as archive:
            entries = {name: archive[name] for name in archive.files}
        victim = next(n for n in entries if n.startswith("model/"))
        entries[victim] = entries[victim] + 1.0
        np.savez(path, **entries)
        with pytest.raises(CheckpointCorruptError) as err:
            load_checkpoint(path)
        assert "SHA-256" in str(err.value)

    def test_corrupt_error_is_a_value_error(self):
        assert issubclass(CheckpointCorruptError, ValueError)

    def test_trainer_falls_back_to_best_npz(self, tmp_path, windows,
                                            split):
        directory = tmp_path / "run"
        cfg = dict(batch_size=8, max_train_batches=4, patience=10, seed=3)
        trainer = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=2, **cfg))
        trainer.fit(windows, split, horizon=2, checkpoint_dir=directory)
        corrupt_file(directory / "checkpoint.npz", seed=2, mode="truncate")

        resumed = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=2, **cfg))
        events = []
        with pytest.warns(RuntimeWarning, match="corrupt"):
            result = resumed.fit(
                windows, split, horizon=2, checkpoint_dir=directory,
                resume=True,
                telemetry=lambda e, f: events.append((e, f)))
        assert len(result.val_losses) == 2       # retrained from scratch
        fallbacks = [f for e, f in events if e == "checkpoint_fallback"]
        assert fallbacks and "best.npz" in fallbacks[0]["fallback"]


class TestKillAndResume:
    """Interrupting fit after a checkpoint must not change the outcome."""

    CFG = dict(batch_size=8, max_train_batches=4, patience=10, seed=3)

    def _fit_uninterrupted(self, windows, split, epochs):
        trainer = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=epochs, **self.CFG))
        result = trainer.fit(windows, split, horizon=2)
        return trainer, result

    @pytest.mark.parametrize("interrupt_after", [1, 2, 3])
    def test_bit_identical_weights_and_curves(self, tmp_path, windows,
                                              split, interrupt_after):
        epochs = 4
        baseline, expected = self._fit_uninterrupted(windows, split, epochs)

        # "Crash" after `interrupt_after` epochs, then resume in a fresh
        # trainer (new model object, new optimizer) from the checkpoint.
        directory = tmp_path / f"run{interrupt_after}"
        partial = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=interrupt_after, **self.CFG))
        partial.fit(windows, split, horizon=2, checkpoint_dir=directory)
        resumed = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=epochs, **self.CFG))
        result = resumed.fit(windows, split, horizon=2,
                             checkpoint_dir=directory, resume=True)

        assert result.train_losses == expected.train_losses
        assert result.val_losses == expected.val_losses
        assert result.best_epoch == expected.best_epoch
        state, expected_state = (resumed.model.state_dict(),
                                 baseline.model.state_dict())
        for name in expected_state:
            assert np.array_equal(state[name], expected_state[name]), name

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path,
                                                    windows, split):
        trainer = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=2, **self.CFG))
        result = trainer.fit(windows, split, horizon=2,
                             checkpoint_dir=tmp_path / "empty",
                             resume=True)
        assert len(result.val_losses) == 2

    def test_best_npz_written_and_loadable(self, tmp_path, windows, split):
        directory = tmp_path / "ckpt"
        trainer = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=3, **self.CFG))
        result = trainer.fit(windows, split, horizon=2,
                             checkpoint_dir=directory)
        assert (directory / "best.npz").exists()
        assert (directory / "checkpoint.npz").exists()
        clone = _make_model(seed=123)
        load_model(clone, directory / "best.npz")
        # fit restores the best weights, so best.npz == final weights
        for name, value in trainer.model.state_dict().items():
            assert np.array_equal(clone.state_dict()[name], value)
        assert result.best_epoch >= 0

    def test_checkpoint_every_respected(self, tmp_path, windows, split):
        directory = tmp_path / "sparse"
        trainer = Trainer(_make_model(), _loss,
                          TrainConfig(epochs=3, **self.CFG))
        trainer.fit(windows, split, horizon=2, checkpoint_dir=directory,
                    checkpoint_every=2)
        checkpoint = load_checkpoint(directory / "checkpoint.npz")
        assert checkpoint.epoch == 1             # epochs 0,1 -> one write
