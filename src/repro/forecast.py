"""Operational forecasting facade.

The experiment harness scores forecasters on historical windows; a
deployed service instead asks: *given everything observed up to now,
what are the next ``h`` OD tensors?*  :func:`forecast_latest` adapts a
fitted :class:`~repro.baselines.Forecaster` to that call by windowing
the tail of a tensor sequence (padding unknown future intervals with
empty tensors, which every forecaster ignores at prediction time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .baselines.base import Forecaster
from .contracts import (ContractPolicy, check_finite, validate_sequence)
from .histograms.tensor_builder import ODTensorSequence
from .histograms.windows import WindowDataset


def forecast_latest(forecaster: Forecaster, sequence: ODTensorSequence,
                    s: int, horizon: int,
                    policy: Optional[ContractPolicy] = None) -> np.ndarray:
    """Forecast the ``horizon`` intervals following the sequence's end.

    Parameters
    ----------
    forecaster:
        A fitted forecaster (the ``s`` used here must match the history
        length it was trained with).
    sequence:
        All observations up to "now"; the last ``s`` intervals form the
        model input.
    s, horizon:
        History length and number of future intervals.
    policy:
        Contract policy for the facade boundary (default: the
        process-wide one).  The incoming sequence runs the full data
        contract — this is the last gate before an operational model
        sees live data — and the outgoing prediction is checked finite,
        so a silently diverged model cannot serve NaN forecasts.

    Returns
    -------
    ``(horizon, N, N', K)`` full OD stochastic speed tensors.
    """
    if sequence.n_intervals < s:
        raise ValueError(
            f"need at least s={s} observed intervals, have "
            f"{sequence.n_intervals}")
    validate_sequence(sequence, "forecast_latest", policy)
    t, n, n_prime, k = sequence.tensors.shape
    pad_shape = (horizon, n, n_prime, k)
    padded = ODTensorSequence(
        tensors=np.concatenate([sequence.tensors,
                                np.zeros(pad_shape)]),
        mask=np.concatenate([sequence.mask,
                             np.zeros(pad_shape[:3], dtype=bool)]),
        counts=np.concatenate([sequence.counts,
                               np.zeros(pad_shape[:3])]),
        spec=sequence.spec,
        interval_minutes=sequence.interval_minutes,
        _validated=True)    # validated above; padding is trivially clean
    windows = WindowDataset(padded, s=s, h=horizon)
    last = len(windows) - 1   # history = final s real intervals
    prediction = forecaster.predict(windows, np.array([last]), horizon)
    check_finite(prediction[0], "prediction", "forecast_latest", policy)
    return prediction[0]
