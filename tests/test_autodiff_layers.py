"""Tests for dense layers (Linear, Dropout, MLP, Sequential)."""

import numpy as np
import pytest

from repro.autodiff import (MLP, Activation, Dropout, Linear, Sequential,
                            Tensor, check_gradients, ops)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(Tensor(rng.normal(size=(7, 4)))).shape == (7, 3)

    def test_leading_axes_broadcast(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0

    def test_matches_manual(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradcheck_params(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))

        def loss(w, b):
            layer.weight.data = w.data
            layer.bias.data = b.data
            out = x.matmul(w) + b
            return (out * out).sum()

        w = Tensor(layer.weight.data.copy(), requires_grad=True)
        b = Tensor(layer.bias.data.copy(), requires_grad=True)
        check_gradients(loss, [w, b])


class TestDropoutLayer:
    def test_respects_training_mode(self, rng):
        layer = Dropout(0.9, np.random.default_rng(0))
        x = Tensor(np.ones(1000))
        layer.eval()
        assert np.allclose(layer(x).data, 1.0)
        layer.train()
        assert (layer(x).data == 0).mean() > 0.5


class TestSequential:
    def test_chaining(self, rng):
        seq = Sequential(Linear(3, 5, rng), Activation(ops.relu),
                         Linear(5, 2, rng))
        assert seq(Tensor(rng.normal(size=(4, 3)))).shape == (4, 2)
        assert len(seq) == 3
        assert isinstance(seq[0], Linear)


class TestMLP:
    def test_sizes(self, rng):
        mlp = MLP([4, 8, 8, 3], rng)
        assert mlp(Tensor(rng.normal(size=(2, 4)))).shape == (2, 3)

    def test_too_few_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_output_activation(self, rng):
        mlp = MLP([4, 8, 3], rng,
                  output_activation=lambda t: ops.softmax(t, axis=-1))
        out = mlp(Tensor(rng.normal(size=(5, 4))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_dropout_layers_present(self, rng):
        mlp = MLP([4, 8, 3], rng, dropout=0.5)
        assert any(isinstance(step, Dropout) for step in mlp.net.steps)

    def test_trains_toward_target(self, rng):
        from repro.autodiff import Adam
        mlp = MLP([2, 16, 1], rng)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2 - x[:, 1:] * 0.5)
        opt = Adam(mlp.parameters(), lr=0.01)
        first = None
        for step in range(150):
            out = mlp(Tensor(x))
            loss = ((out - Tensor(y)) ** 2).mean()
            if first is None:
                first = loss.item()
            mlp.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.1


class TestLayerNorm:
    def test_output_statistics(self, rng):
        from repro.autodiff import LayerNorm
        norm = LayerNorm(8)
        out = norm(Tensor(rng.normal(2.0, 5.0, size=(10, 8)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_apply(self, rng):
        from repro.autodiff import LayerNorm
        norm = LayerNorm(4)
        norm.gain.data[:] = 2.0
        norm.bias.data[:] = 3.0
        out = norm(Tensor(rng.normal(size=(5, 4)))).numpy()
        assert out.mean() == pytest.approx(3.0, abs=0.05)

    def test_gradcheck(self, rng):
        from repro.autodiff import LayerNorm
        norm = LayerNorm(5)
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda x: (norm(x) ** 2).sum(), [x], atol=1e-4)

    def test_size_mismatch(self, rng):
        from repro.autodiff import LayerNorm
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(rng.normal(size=(2, 5))))

    def test_invalid_size(self):
        from repro.autodiff import LayerNorm
        with pytest.raises(ValueError):
            LayerNorm(0)
