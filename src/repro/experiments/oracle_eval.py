"""Evaluation against the analytic ground truth.

The paper can only score forecasts against *sparse empirical* histograms
(Eq. 12's masked DisSim) because real data has no ground-truth
distribution.  Our synthetic substrate knows the generating distribution
exactly (:meth:`LatentTrafficField.true_histogram`), enabling a stronger
complementary evaluation: score every cell (not just observed ones)
against the noise-free truth.  Useful for separating "model error" from
"empirical-histogram sampling noise" — the noise floor that dominates
sparse-cell KL values.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..metrics.evaluation import EvaluationResult, evaluate_forecasts
from .runner import ComparisonResult, ExperimentData


def true_targets(data: ExperimentData, test_indices: np.ndarray
                 ) -> np.ndarray:
    """Dense analytic target tensors for the given windows.

    Returns ``(B, h, N, N', K)`` exact bucket probabilities from the
    latent field for every forecast step of every window.
    """
    field = data.dataset.field
    edges = np.asarray(data.sequence.spec.edges)
    windows = data.windows
    cache: Dict[int, np.ndarray] = {}

    def truth_at(t: int) -> np.ndarray:
        if t not in cache:
            cache[t] = field.true_histogram(t, edges)
        return cache[t]

    stacked = []
    for i in np.atleast_1d(test_indices):
        steps = [truth_at(int(t)) for t in windows.target_intervals(i)]
        stacked.append(np.stack(steps))
    return np.stack(stacked)


def evaluate_against_truth(data: ExperimentData,
                           comparison: ComparisonResult,
                           metrics: Sequence[str] = ("kl", "js", "emd")
                           ) -> Dict[str, EvaluationResult]:
    """Score every kept-prediction method against the analytic truth.

    All cells count (mask all-true): with the generating distribution as
    the target there is no unobserved-cell ambiguity.  Requires
    ``run_comparison(..., keep_predictions=True)``.
    """
    results: Dict[str, EvaluationResult] = {}
    truth_cache: Dict[tuple, np.ndarray] = {}
    for name, method in comparison.methods.items():
        if method.predictions is None:
            continue
        key = tuple(method.test_indices)
        if key not in truth_cache:
            truth_cache[key] = true_targets(data, method.test_indices)
        truth = truth_cache[key]
        mask = np.ones(truth.shape[:-1], dtype=bool)
        results[name] = evaluate_forecasts(
            truth, method.predictions.astype(np.float64), mask,
            metrics=metrics)
    return results
