"""Trip-data substrate: latent traffic fields, trip & GPS generation."""

from .datasets import (CityDataset, chengdu_like_dataset, metro_dataset,
                       nyc_like_dataset, toy_dataset)
from .diagnostics import HeadroomReport, oracle_headroom
from .generator import (DemandConfig, TripGenerator, daily_demand_profile,
                        zipf_popularity)
from .gps import GpsRecords, GpsSimulator, extract_trips
from .traffic import (LatentTrafficField, TrafficFieldConfig,
                      daily_congestion_profile)
from .trip import Trip, TripTable

__all__ = [
    "Trip", "TripTable",
    "LatentTrafficField", "TrafficFieldConfig", "daily_congestion_profile",
    "TripGenerator", "DemandConfig", "zipf_popularity",
    "daily_demand_profile",
    "GpsRecords", "GpsSimulator", "extract_trips",
    "CityDataset", "nyc_like_dataset", "chengdu_like_dataset",
    "metro_dataset", "toy_dataset",
    "HeadroomReport", "oracle_headroom",
]
