"""Tests for the deterministic fault-injection harness
(repro.faultinject) and the trainer's non-finite-gradient policies."""

import warnings

import numpy as np
import pytest

from repro import faultinject
from repro.core import (BasicFramework, NonFiniteGradError, TrainConfig,
                        Trainer, bf_loss)
from repro.histograms import (HistogramSpec, ODTensorSequence,
                              WindowDataset, chronological_split)


def _sequence(t=12, n=3, k=4, seed=0):
    rng = np.random.default_rng(seed)
    tensors = rng.random((t, n, n, k))
    tensors /= tensors.sum(axis=-1, keepdims=True)
    return ODTensorSequence(tensors, np.ones((t, n, n), dtype=bool),
                            np.full((t, n, n), 5.0),
                            HistogramSpec(edges=tuple(range(k + 1))),
                            15.0)


def _trainer(**overrides):
    model = BasicFramework(3, 3, 4, np.random.default_rng(0), rank=2,
                           encoder_dim=4, hidden_dim=4, dropout=0.0)
    cfg = dict(epochs=1, batch_size=4, max_train_batches=2, seed=1)
    cfg.update(overrides)
    return Trainer(model,
                   lambda p, t, m, r, c: bf_loss(p, t, m, r, c, 0, 0),
                   TrainConfig(**cfg))


class TestDataInjectors:
    def test_drift_is_deterministic(self):
        a, b = _sequence(), _sequence()
        na = faultinject.drift_histograms(a.tensors, a.mask, seed=7)
        nb = faultinject.drift_histograms(b.tensors, b.mask, seed=7)
        assert na == nb > 0
        assert np.array_equal(a.tensors, b.tensors)

    def test_drift_breaks_normalization_only(self):
        sequence = _sequence()
        before = sequence.tensors.copy()
        n = faultinject.drift_histograms(sequence.tensors, sequence.mask,
                                         seed=3, fraction=0.25)
        sums = sequence.tensors.sum(axis=-1)
        assert (np.abs(sums - 1.0) > 1e-6).sum() == n
        assert np.isfinite(sequence.tensors).all()
        assert (sequence.tensors >= 0).all()
        changed = ~np.isclose(sequence.tensors, before).all(axis=-1)
        assert changed.sum() == n

    def test_drop_keeps_mask_set(self):
        sequence = _sequence()
        n = faultinject.drop_cells(sequence.tensors, sequence.mask,
                                   seed=5, fraction=0.1)
        assert n > 0
        zeroed = (sequence.tensors.sum(axis=-1) == 0) & sequence.mask
        assert zeroed.sum() == n                 # observed-but-empty cells

    def test_poison_nan_counts(self):
        sequence = _sequence()
        n = faultinject.poison_nan(sequence.tensors, seed=2, n_cells=3)
        assert n == 3
        assert np.isnan(sequence.tensors).sum() == 3

    def test_empty_mask_is_a_noop(self):
        sequence = _sequence()
        sequence.mask[:] = False
        n = faultinject.drift_histograms(sequence.tensors, sequence.mask,
                                         seed=1)
        assert n == 0


class TestCorruptFile:
    def test_truncate_shrinks(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(100)) * 10)
        faultinject.corrupt_file(path, seed=0, mode="truncate",
                                 keep_fraction=0.5)
        assert path.stat().st_size == 500

    def test_bitflip_changes_content_keeps_size(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(1000)
        path.write_bytes(original)
        faultinject.corrupt_file(path, seed=0, mode="bitflip", n_bits=4)
        damaged = path.read_bytes()
        assert len(damaged) == 1000
        assert damaged != original

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            faultinject.corrupt_file(path, seed=0, mode="shred")


class TestNaNGradInjector:
    def _data(self):
        sequence = _sequence()
        windows = WindowDataset(sequence, s=3, h=2)
        return windows, chronological_split(windows)

    def test_skip_policy_drops_update_and_warns(self):
        windows, split = self._data()
        trainer = _trainer(on_nonfinite_grad="skip")
        injector = faultinject.NaNGradInjector(at=[(0, 0)], seed=0)
        events = []
        with pytest.warns(RuntimeWarning, match="non-finite gradient"):
            trainer.fit(windows, split, horizon=2,
                        telemetry=lambda e, f: events.append((e, f)),
                        after_backward=injector)
        assert injector.injected == [(0, 0)]
        nonfinite = [f for e, f in events if e == "nonfinite_grad"]
        assert nonfinite and nonfinite[0]["action"] == "skip"
        state = trainer.model.state_dict()
        assert all(np.isfinite(v).all() for v in state.values())

    def test_halve_lr_policy(self):
        windows, split = self._data()
        trainer = _trainer(on_nonfinite_grad="halve_lr",
                           learning_rate=1e-3)
        injector = faultinject.NaNGradInjector(at=[(0, 0)], seed=0)
        with pytest.warns(RuntimeWarning):
            trainer.fit(windows, split, horizon=2,
                        after_backward=injector)
        # one halving, then StepDecay's epoch-0 step leaves it alone
        assert trainer.optimizer.lr == pytest.approx(5e-4)

    def test_abort_policy_raises_with_location(self):
        windows, split = self._data()
        trainer = _trainer(on_nonfinite_grad="abort")
        injector = faultinject.NaNGradInjector(at=[(0, 1)], seed=0)
        with pytest.raises(NonFiniteGradError) as err:
            trainer.fit(windows, split, horizon=2,
                        after_backward=injector)
        assert (err.value.epoch, err.value.batch) == (0, 1)

    def test_invalid_policy_rejected_at_config(self):
        with pytest.raises(ValueError):
            TrainConfig(on_nonfinite_grad="ignore")

    def test_clean_run_without_hook_unchanged(self):
        windows, split = self._data()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = _trainer().fit(windows, split, horizon=2)
        assert all(np.isfinite(v) for v in result.train_losses)


class TestKillOnce:
    def test_first_call_dies_second_succeeds(self, tmp_path):
        # Simulated in-process: the marker file is the only state, so
        # verify the factory protocol without forking (the real forked
        # path is exercised by benchmarks/chaos_smoke.py).
        marker = tmp_path / "kill.marker"
        calls = []
        wrapped = faultinject.kill_once(lambda data: calls.append(data),
                                        marker)
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=wrapped, args=("data",))
        proc.start()
        proc.join(30)
        assert proc.exitcode == 13
        assert marker.exists()
        wrapped("data2")                         # second attempt: normal
        assert calls == ["data2"]
