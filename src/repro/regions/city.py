"""City models: region layouts mirroring the paper's two study areas.

The paper evaluates on Manhattan (67 taxizones) and central Chengdu
(79 main-road regions).  Real shapefiles are not redistributable here, so
each city is modelled as a seeded irregular partition with the same region
count and a geometry that preserves what the evaluation depends on:

* **Manhattan-like** — a long, narrow strip (≈ 3.2 km × 18 km), so many
  region pairs are far apart along one axis, and regions are relatively
  homogeneous (the paper credits this for NYC's lower errors).
* **Chengdu-like** — a roughly isotropic disc (≈ 9 km across, the second
  ring road), with a larger, more diverse area that makes traffic harder
  to forecast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.proximity import ProximityConfig, build_proximity
from .geometry import BoundingBox
from .partition import Partition, SeededPartition


@dataclass
class City:
    """A named city: partition plus spatial metadata.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"nyc"`` or ``"cd"``.
    partition:
        Region partition (implements assign/centroids).
    box:
        Bounding box of the study area (km).
    heterogeneity:
        How spatially diverse the traffic is (0 = uniform); the trip
        generator uses it to mimic the NYC-vs-Chengdu contrast.
    """

    name: str
    partition: Partition
    box: BoundingBox
    heterogeneity: float = 0.3

    @property
    def n_regions(self) -> int:
        return self.partition.n_regions

    @property
    def centroids(self) -> np.ndarray:
        return self.partition.centroids

    def centroid_distances(self) -> np.ndarray:
        return self.partition.centroid_distances()

    def proximity(self, config: ProximityConfig = None) -> np.ndarray:
        """Proximity matrix of the regions (thresholded Gaussian kernel)."""
        if config is None:
            config = self.default_proximity_config()
        return build_proximity(self.centroids, config)

    def default_proximity_config(self) -> ProximityConfig:
        """σ/α scaled to the city's size: neighbours within ~2 cells."""
        spacing = np.sqrt(self.box.area / self.n_regions)
        return ProximityConfig(sigma=1.5 * spacing, alpha=2.5 * spacing)


def manhattan_like(seed: int = 7, n_regions: int = 67) -> City:
    """Manhattan-style strip city with 67 taxizone-like regions."""
    rng = np.random.default_rng(seed)
    box = BoundingBox(0.0, 0.0, 3.2, 18.0)
    partition = SeededPartition.random(box, n_regions, rng,
                                       lloyd_iterations=4)
    return City(name="nyc", partition=partition, box=box,
                heterogeneity=0.25)


def chengdu_like(seed: int = 11, n_regions: int = 79) -> City:
    """Chengdu-style isotropic city with 79 main-road regions."""
    rng = np.random.default_rng(seed)
    box = BoundingBox(0.0, 0.0, 9.0, 9.0)
    partition = SeededPartition.random(box, n_regions, rng,
                                       lloyd_iterations=4)
    return City(name="cd", partition=partition, box=box,
                heterogeneity=0.55)


def metro_like(seed: int = 21, n_regions: int = 500) -> City:
    """Metro-scale city for the block-sparse sharding path.

    Ridesharing-scale OD forecasting needs hundreds to thousands of
    regions (see docs/SHARDING.md); at that granularity most OD pairs
    see no trips per interval, which is the regime the block-sparse
    sharded execution targets.  The extent grows with the region count
    so the per-region cell size stays city-like (~1.2 km across at the
    500-region default).
    """
    rng = np.random.default_rng(seed)
    extent = float(np.sqrt(n_regions) * 1.25)
    box = BoundingBox(0.0, 0.0, extent, extent)
    partition = SeededPartition.random(box, n_regions, rng,
                                       lloyd_iterations=2)
    return City(name="metro", partition=partition, box=box,
                heterogeneity=0.5)


def toy_city(seed: int = 3, n_regions: int = 12,
             extent_km: float = 4.0) -> City:
    """Small city for unit tests and quick examples."""
    rng = np.random.default_rng(seed)
    box = BoundingBox(0.0, 0.0, extent_km, extent_km)
    partition = SeededPartition.random(box, n_regions, rng,
                                       lloyd_iterations=2)
    return City(name="toy", partition=partition, box=box,
                heterogeneity=0.3)


def grid_city(rows: int = 6, cols: int = 6, cell_km: float = 1.0,
              name: str = "grid", heterogeneity: float = 0.3) -> City:
    """Uniform-grid city (the paper's Fig. 1(a) partition style).

    Region ids follow the row-major numbering of the illustration, which
    is exactly the case where matrix adjacency and geographic adjacency
    diverge (regions 1 and 4 of a 3-wide grid are neighbours on the map
    but three rows apart in the OD matrix) — the motivating example for
    the graph machinery.
    """
    from .partition import GridPartition

    box = BoundingBox(0.0, 0.0, cols * cell_km, rows * cell_km)
    partition = GridPartition(box, rows=rows, cols=cols)
    return City(name=name, partition=partition, box=box,
                heterogeneity=heterogeneity)
