"""Tests for the Dirichlet energy (AF regularizer)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.graph import (build_proximity, dirichlet_energy,
                         dirichlet_energy_numpy)


@pytest.fixture
def weights(rng):
    return build_proximity(rng.uniform(0, 4, size=(9, 2)))


class TestDirichletEnergy:
    def test_constant_signal_zero_energy(self, weights):
        x = Tensor(np.ones((9, 4)))
        assert dirichlet_energy(x, weights).item() == pytest.approx(0.0)

    def test_nonnegative(self, weights, rng):
        for _ in range(5):
            x = Tensor(rng.normal(size=(9, 3)))
            assert dirichlet_energy(x, weights).item() >= -1e-9

    def test_matches_numpy_reference(self, weights, rng):
        x = rng.normal(size=(9, 3, 2))
        a = dirichlet_energy(Tensor(x), weights).item()
        b = dirichlet_energy_numpy(x, weights)
        assert a == pytest.approx(b)

    def test_matches_pairwise_formula(self, weights, rng):
        x = rng.normal(size=9)
        energy = dirichlet_energy(Tensor(x.reshape(9, 1)), weights).item()
        direct = 0.5 * sum(weights[i, j] * (x[i] - x[j]) ** 2
                           for i in range(9) for j in range(9))
        assert energy == pytest.approx(direct)

    def test_node_axis_argument(self, weights, rng):
        x = rng.normal(size=(3, 9, 2))
        a = dirichlet_energy(Tensor(x), weights, node_axis=1).item()
        b = sum(dirichlet_energy_numpy(x[i], weights) for i in range(3))
        assert a == pytest.approx(b)

    def test_smoother_signal_lower_energy(self, weights, rng):
        rough = rng.normal(size=(9, 1))
        # Smooth by diffusing over the graph.
        smoother = weights + np.eye(9)
        smoother = smoother / smoother.sum(axis=1, keepdims=True)
        smooth = smoother @ (smoother @ rough)
        e_rough = dirichlet_energy_numpy(rough, weights)
        e_smooth = dirichlet_energy_numpy(smooth, weights)
        assert e_smooth < e_rough

    def test_gradcheck(self, weights, rng):
        x = Tensor(rng.normal(size=(9, 2)), requires_grad=True)
        check_gradients(lambda x: dirichlet_energy(x, weights), [x])

    def test_wrong_node_count(self, weights):
        with pytest.raises(ValueError):
            dirichlet_energy(Tensor(np.zeros((8, 2))), weights)
