"""Experiment runner: fit → forecast → evaluate, for a roster of methods.

This is the engine behind the Table II and figure benchmarks: it wires a
city dataset through the windowing, fits every requested method once per
``s`` setting with the maximum horizon, and scores per-step KL/JS/EMD on
the test windows — the protocol of the paper's §VI.

Methods are independent once the data is prepared (every stochastic
component draws from its own seeded generator), so the roster can train
in parallel worker processes: pass ``n_jobs`` to :func:`run_comparison`
or set ``REPRO_BENCH_JOBS``.  Results are bit-for-bit identical to a
sequential run.

The roster is fault-isolated and resumable: a method that raises (or,
in worker mode, a worker that dies or hangs past ``method_timeout``) is
recorded as a :class:`MethodResult` with its ``error`` instead of
aborting the whole comparison; timeouts and crashes get one retry by
default; and ``artifact_dir`` persists every completed method so a
rerun skips work already done.  Per-method start/finish/fail events can
be streamed through the optional ``telemetry`` hook
(:mod:`repro.telemetry`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import Forecaster
from ..histograms.tensor_builder import ODTensorSequence, build_od_tensors
from ..histograms.windows import (Split, WindowDataset,
                                  chronological_split)
from ..metrics.evaluation import EvaluationResult, evaluate_forecasts
from ..telemetry import TelemetrySink, emit
from ..trips.datasets import CityDataset

MethodFactory = Callable[["ExperimentData"], Forecaster]


@dataclass
class ExperimentData:
    """A city dataset prepared for forecasting experiments."""

    dataset: CityDataset
    sequence: ODTensorSequence
    windows: WindowDataset
    split: Split

    @property
    def city(self):
        return self.dataset.city

    def origin_proximity(self) -> np.ndarray:
        return self.city.proximity()

    def dest_proximity(self) -> np.ndarray:
        return self.city.proximity()


def prepare(dataset: CityDataset, s: int, h: int,
            train_fraction: float = 0.7,
            val_fraction: float = 0.1) -> ExperimentData:
    """Build tensors, windows, and the chronological split for a city."""
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    windows = WindowDataset(sequence, s=s, h=h)
    split = chronological_split(windows, train_fraction, val_fraction)
    return ExperimentData(dataset=dataset, sequence=sequence,
                          windows=windows, split=split)


@dataclass
class MethodResult:
    """Evaluation of one fitted method.

    ``evaluation`` is ``None`` — and ``error`` holds the reason — when
    the method failed (raised, crashed its worker, or timed out).
    """

    name: str
    evaluation: Optional[EvaluationResult] = None
    fit_seconds: float = 0.0
    predictions: Optional[np.ndarray] = None
    test_indices: Optional[np.ndarray] = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ComparisonResult:
    """All methods' results for one (dataset, s, h) setting."""

    s: int
    h: int
    methods: Dict[str, MethodResult] = field(default_factory=dict)

    def failures(self) -> Dict[str, str]:
        """``{method: error}`` for every method that failed."""
        return {name: result.error
                for name, result in self.methods.items()
                if result.failed}

    def table(self, metrics: Sequence[str] = ("kl", "js", "emd")
              ) -> List[dict]:
        """Rows: one per method per forecast step (Table II layout).

        Failed methods contribute no rows; see :meth:`failures`.
        """
        rows = []
        for name, result in self.methods.items():
            if result.evaluation is None:
                continue
            for k in range(self.h):
                row = {"method": name, "step": k + 1}
                for metric in metrics:
                    row[metric] = float(
                        result.evaluation.per_step[metric][k])
                rows.append(row)
        return rows

    def compare_methods(self, windows, name_a: str, name_b: str,
                        metric: str = "emd", n_resamples: int = 1000):
        """Paired bootstrap of two kept-prediction methods (A vs B).

        Requires the comparison to have been run with
        ``keep_predictions=True``.  Returns a
        :class:`repro.metrics.bootstrap.BootstrapResult`; negative mean
        difference means method A is better.
        """
        from ..metrics.bootstrap import paired_bootstrap

        a, b = self.methods[name_a], self.methods[name_b]
        if a.predictions is None or b.predictions is None:
            raise ValueError(
                "compare_methods needs keep_predictions=True results")
        if not np.array_equal(a.test_indices, b.test_indices):
            raise ValueError("methods were scored on different windows")
        _, truth, masks = windows.gather(a.test_indices)
        return paired_bootstrap(truth, a.predictions.astype(np.float64),
                                b.predictions.astype(np.float64), masks,
                                metric=metric, n_resamples=n_resamples)

    def format_table(self, metrics: Sequence[str] = ("kl", "js", "emd")
                     ) -> str:
        """Human-readable fixed-width table (failures listed at the end)."""
        lines = [f"s={self.s}  (rows: method x step)"]
        header = f"{'method':8s} {'step':>4s} " + " ".join(
            f"{m:>8s}" for m in metrics)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.table(metrics):
            lines.append(
                f"{row['method']:8s} {row['step']:4d} " + " ".join(
                    f"{row[m]:8.4f}" for m in metrics))
        for name, error in self.failures().items():
            lines.append(f"{name:8s} FAILED: {error}")
        return "\n".join(lines)


def _fit_and_score(name: str, factory: MethodFactory, data: ExperimentData,
                   test: np.ndarray, truth: np.ndarray, masks: np.ndarray,
                   keep_predictions: bool) -> MethodResult:
    """Build, train, and evaluate one method (shared by both run modes)."""
    windows, split = data.windows, data.split
    h = windows.h
    forecaster = factory(data)
    start = time.time()
    forecaster.fit(windows, split, horizon=h)
    fit_seconds = time.time() - start
    predictions = forecaster.predict(windows, test, horizon=h)
    evaluation = evaluate_forecasts(truth, predictions, masks)
    return MethodResult(
        name=name, evaluation=evaluation, fit_seconds=fit_seconds,
        # Stored as float32: kept predictions feed the figure
        # groupings, where 1e-7 histogram error is immaterial, and a
        # full-city test set is hundreds of MB in float64.
        predictions=(predictions.astype(np.float32)
                     if keep_predictions else None),
        test_indices=test)


def _fit_and_score_safe(name: str, factory: MethodFactory,
                        data: ExperimentData, test: np.ndarray,
                        truth: np.ndarray, masks: np.ndarray,
                        keep_predictions: bool) -> MethodResult:
    """Like :func:`_fit_and_score` but an exception becomes a recorded
    failure instead of aborting the roster."""
    try:
        return _fit_and_score(name, factory, data, test, truth, masks,
                              keep_predictions)
    except Exception as exc:
        return MethodResult(name=name, evaluation=None,
                            error=f"{type(exc).__name__}: {exc}")


def _worker_entry(conn, name: str, factory: MethodFactory,
                  data: ExperimentData, test: np.ndarray,
                  truth: np.ndarray, masks: np.ndarray,
                  keep_predictions: bool) -> None:
    """Per-method worker process: runs one method, ships the result back.

    Started with the ``fork`` context, so ``factory`` (often a lambda)
    and the prepared data are inherited from the parent's memory — only
    the finished :class:`MethodResult` is pickled through the pipe.
    """
    result = _fit_and_score_safe(name, factory, data, test, truth, masks,
                                 keep_predictions)
    try:
        conn.send(result)
    except Exception:
        pass                                     # parent gone; nothing to do
    finally:
        conn.close()


def resolve_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit ``n_jobs``, else ``REPRO_BENCH_JOBS``.

    Values < 1 mean "one process per roster method" (capped by CPU
    count).  Parallelism needs the ``fork`` start method; where it is
    unavailable the runner silently falls back to sequential execution.
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_BENCH_JOBS", "1")
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_JOBS must be an integer, got {raw!r}"
            ) from None
    if n_jobs < 1:
        n_jobs = os.cpu_count() or 1
    if n_jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
        return 1
    return n_jobs


def _run_roster_workers(names: List[str], methods: Dict[str, MethodFactory],
                        data: ExperimentData, test: np.ndarray,
                        truth: np.ndarray, masks: np.ndarray,
                        keep_predictions: bool, n_jobs: int,
                        method_timeout: Optional[float], retries: int,
                        telemetry: TelemetrySink
                        ) -> Dict[str, MethodResult]:
    """Run each method in its own forked worker, at most ``n_jobs`` at once.

    Unlike a shared ``Pool``, one worker dying (or hanging past
    ``method_timeout``) costs only that method: it is retried up to
    ``retries`` times and then recorded as a failure.  Python exceptions
    inside a method are deterministic, so they are recorded without
    retry (the worker reports them as an error-carrying result).
    """
    ctx = multiprocessing.get_context("fork")
    results: Dict[str, MethodResult] = {}
    attempts = {name: 0 for name in names}
    pending = list(names)
    running: Dict[str, tuple] = {}               # name -> (proc, conn, t0)

    def finish(name: str, result: MethodResult) -> None:
        results[name] = result
        if result.failed:
            emit(telemetry, "method_fail", method=name,
                 error=result.error, attempt=attempts[name])
        else:
            emit(telemetry, "method_end", method=name,
                 fit_seconds=result.fit_seconds, attempt=attempts[name])

    def fail_or_retry(name: str, reason: str) -> None:
        if attempts[name] <= retries:
            emit(telemetry, "method_fail", method=name, error=reason,
                 attempt=attempts[name], will_retry=True)
            pending.append(name)
        else:
            finish(name, MethodResult(name=name, error=reason))

    while pending or running:
        while pending and len(running) < n_jobs:
            name = pending.pop(0)
            attempts[name] += 1
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_entry,
                args=(child_conn, name, methods[name], data, test, truth,
                      masks, keep_predictions))
            proc.start()
            child_conn.close()
            emit(telemetry, "method_start", method=name,
                 attempt=attempts[name])
            running[name] = (proc, parent_conn, time.time())
        for name in list(running):
            proc, conn, started = running[name]
            if conn.poll(0.05):
                try:
                    result = conn.recv()
                except EOFError:                 # died mid-send
                    result = None
                proc.join()
                conn.close()
                del running[name]
                if result is None:
                    fail_or_retry(name, "worker process died")
                else:
                    finish(name, result)
            elif method_timeout is not None \
                    and time.time() - started > method_timeout:
                proc.terminate()
                proc.join()
                conn.close()
                del running[name]
                fail_or_retry(
                    name, f"timed out after {method_timeout:.1f}s")
            elif not proc.is_alive():
                proc.join()
                # Drain the race where the worker sent its result and
                # exited between our poll and liveness check.
                if conn.poll(0):
                    try:
                        result = conn.recv()
                    except EOFError:
                        result = None
                else:
                    result = None
                conn.close()
                del running[name]
                if result is None:
                    fail_or_retry(name, "worker process died")
                else:
                    finish(name, result)
    return results


def run_comparison(data: ExperimentData,
                   methods: Dict[str, MethodFactory],
                   keep_predictions: bool = False,
                   max_test_windows: Optional[int] = None,
                   n_jobs: Optional[int] = None,
                   method_timeout: Optional[float] = None,
                   retries: int = 1,
                   artifact_dir: Optional[str] = None,
                   telemetry: TelemetrySink = None
                   ) -> ComparisonResult:
    """Fit and evaluate every method on the prepared data.

    Each method is trained with the dataset's full horizon ``h`` and
    scored per forecast step on the test windows, exactly once.

    ``n_jobs`` (default: the ``REPRO_BENCH_JOBS`` env var, else 1) trains
    methods in that many parallel worker processes.  Every method seeds
    its own generators, so parallel results match sequential ones
    bit-for-bit; only the ``fit_seconds`` wall-clocks differ.

    Failures never abort the roster: a raising method (or a worker that
    crashes or exceeds ``method_timeout`` seconds) is recorded in its
    :class:`MethodResult` under ``error`` while the other methods
    complete; timeouts and crashes are retried up to ``retries`` times.
    ``method_timeout`` requires the ``fork`` start method and is ignored
    where that is unavailable.

    With ``artifact_dir`` set, every successful method is written to
    ``<artifact_dir>/<name>.npz`` and a rerun skips methods whose
    artifact matches the current test windows — so a killed roster run
    resumes where it left off.  ``telemetry`` receives per-method
    start/finish/fail/skip events (see :mod:`repro.telemetry`).
    """
    windows, split = data.windows, data.split
    h = windows.h
    test = split.test
    if max_test_windows is not None and len(test) > max_test_windows:
        # Evenly thin the test windows to bound evaluation cost.
        keep = np.linspace(0, len(test) - 1, max_test_windows).astype(int)
        test = test[keep]
    _, truth, masks = windows.gather(test)
    outcome = ComparisonResult(s=windows.s, h=h)
    n_jobs = resolve_n_jobs(n_jobs)
    names = list(methods)

    completed: Dict[str, MethodResult] = {}
    artifacts: Optional[Path] = None
    if artifact_dir is not None:
        from ..persistence import load_method_result
        artifacts = Path(artifact_dir)
        artifacts.mkdir(parents=True, exist_ok=True)
        for name in names:
            path = artifacts / f"{name}.npz"
            if not path.exists():
                continue
            try:
                saved = load_method_result(path)
            except Exception:
                continue                         # unreadable: recompute
            # Only reuse clean results scored on the same test windows.
            if saved.error is None \
                    and np.array_equal(saved.test_indices, test):
                completed[name] = saved
                emit(telemetry, "method_skip", method=name,
                     reason="artifact exists")
    todo = [name for name in names if name not in completed]

    use_workers = (n_jobs > 1 or method_timeout is not None) \
        and "fork" in multiprocessing.get_all_start_methods()
    if use_workers and todo:
        fitted = _run_roster_workers(
            todo, methods, data, test, truth, masks, keep_predictions,
            max(n_jobs, 1), method_timeout, retries, telemetry)
    else:
        fitted = {}
        for name in todo:
            emit(telemetry, "method_start", method=name, attempt=1)
            result = _fit_and_score_safe(name, methods[name], data, test,
                                         truth, masks, keep_predictions)
            fitted[name] = result
            if result.failed:
                emit(telemetry, "method_fail", method=name,
                     error=result.error, attempt=1)
            else:
                emit(telemetry, "method_end", method=name,
                     fit_seconds=result.fit_seconds, attempt=1)

    if artifacts is not None:
        from ..persistence import save_method_result
        for name, result in fitted.items():
            if not result.failed:
                save_method_result(result, artifacts / f"{name}.npz")

    for name in names:                           # preserve roster order
        outcome.methods[name] = completed.get(name) or fitted[name]
    return outcome
