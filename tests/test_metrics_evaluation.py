"""Tests for masked evaluation and the figure groupings."""

import numpy as np
import pytest

from repro.metrics import (distance_groups, evaluate_forecasts,
                           grouped_metric, time_of_day_groups)


def _toy_eval(rng, b=4, h=2, n=5, k=3):
    truth = rng.uniform(0.1, 1.0, size=(b, h, n, n, k))
    truth /= truth.sum(axis=-1, keepdims=True)
    pred = rng.uniform(0.1, 1.0, size=(b, h, n, n, k))
    pred /= pred.sum(axis=-1, keepdims=True)
    mask = rng.random(size=(b, h, n, n)) < 0.5
    return truth, pred, mask


class TestEvaluateForecasts:
    def test_perfect_prediction_zero_error(self, rng):
        truth, _, mask = _toy_eval(rng)
        result = evaluate_forecasts(truth, truth, mask)
        for metric in ("kl", "js", "emd"):
            assert np.allclose(result.per_step[metric], 0.0)

    def test_per_step_shapes_and_counts(self, rng):
        truth, pred, mask = _toy_eval(rng, h=3)
        result = evaluate_forecasts(truth, pred, mask)
        assert result.per_step["emd"].shape == (3,)
        assert result.n_cells.sum() == mask.sum()

    def test_only_masked_cells_counted(self, rng):
        truth, pred, mask = _toy_eval(rng)
        # Corrupt predictions on unobserved cells: score must not change.
        corrupted = pred.copy()
        corrupted[~mask] = 1.0 / truth.shape[-1]
        a = evaluate_forecasts(truth, pred, mask)
        b = evaluate_forecasts(truth, corrupted, mask)
        assert np.allclose(a.per_step["emd"], b.per_step["emd"])

    def test_empty_step_is_zero(self, rng):
        truth, pred, mask = _toy_eval(rng)
        mask[:, 1] = False
        result = evaluate_forecasts(truth, pred, mask)
        assert result.per_step["kl"][1] == 0.0
        assert result.n_cells[1] == 0

    def test_overall_weighted_mean(self, rng):
        truth, pred, mask = _toy_eval(rng)
        result = evaluate_forecasts(truth, pred, mask)
        values = result.per_step["emd"]
        weights = result.n_cells
        expected = (values * weights).sum() / weights.sum()
        assert result.overall("emd") == pytest.approx(expected)

    def test_shape_mismatch_raises(self, rng):
        truth, pred, mask = _toy_eval(rng)
        with pytest.raises(ValueError):
            evaluate_forecasts(truth, pred[:, :1], mask)
        with pytest.raises(ValueError):
            evaluate_forecasts(truth, pred, mask[..., :-1])


class TestGroupedMetric:
    def test_sample_groups(self, rng):
        truth, pred, mask = _toy_eval(rng, b=6, h=2)
        groups = rng.integers(0, 3, size=(6, 2))
        out = grouped_metric(truth, pred, mask, groups, 3)
        assert out["value"].shape == (3,)
        assert out["share"].sum() == pytest.approx(1.0)

    def test_cell_groups(self, rng):
        truth, pred, mask = _toy_eval(rng, n=5)
        groups = rng.integers(0, 2, size=(5, 5))
        out = grouped_metric(truth, pred, mask, groups, 2,
                             cell_groups=True)
        assert out["value"].shape == (2,)

    def test_negative_group_excluded(self, rng):
        truth, pred, mask = _toy_eval(rng, n=5)
        groups = np.zeros((5, 5), dtype=int)
        groups[0, :] = -1
        out = grouped_metric(truth, pred, mask, groups, 1,
                             cell_groups=True)
        expected_count = mask[:, :, 1:, :].sum()
        assert out["share"][0] == pytest.approx(1.0)
        # group 0 counted only non-excluded cells
        total = mask.sum()
        assert total >= expected_count

    def test_empty_group_nan(self, rng):
        truth, pred, mask = _toy_eval(rng)
        groups = np.zeros(mask.shape[:2], dtype=int)   # only group 0 used
        out = grouped_metric(truth, pred, mask, groups, 2)
        assert np.isnan(out["value"][1])
        assert out["share"][1] == 0.0

    def test_group_mean_consistency(self, rng):
        """Single group mean == evaluate_forecasts overall mean."""
        truth, pred, mask = _toy_eval(rng)
        groups = np.zeros(mask.shape[:2], dtype=int)
        out = grouped_metric(truth, pred, mask, groups, 1, metric="emd")
        reference = evaluate_forecasts(truth, pred, mask)
        assert out["value"][0] == pytest.approx(reference.overall("emd"))


class TestGroupings:
    def test_time_of_day_blocks(self):
        intervals = np.array([0, 12, 40, 95, 96])   # 96 intervals/day
        blocks = time_of_day_groups(intervals, 96, hours_per_block=3)
        assert list(blocks) == [0, 1, 3, 7, 0]

    def test_time_of_day_custom_block(self):
        blocks = time_of_day_groups(np.array([50]), 96, hours_per_block=6)
        assert blocks[0] == 2   # 12:30 -> block [12, 18)

    def test_distance_groups_default_bands(self):
        d = np.array([[0.2, 0.7], [1.6, 3.5]])
        groups = distance_groups(d)
        assert groups[0, 0] == 0    # [0, 0.5)
        assert groups[0, 1] == 1    # [0.5, 1)
        assert groups[1, 0] == 3    # [1.5, 2)
        assert groups[1, 1] == -1   # beyond 3 km: excluded

    def test_distance_custom_edges(self):
        groups = distance_groups(np.array([0.5, 1.5]),
                                 edges_km=[0.0, 1.0, 2.0])
        assert list(groups) == [0, 1]

    def test_boundary_exactly_at_last_edge(self):
        groups = distance_groups(np.array([3.0]))
        # 3.0 falls on the closing edge: excluded from the last band
        assert groups[0] in (-1, 5)
