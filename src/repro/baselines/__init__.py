"""Baseline forecasters: NH, GP, VAR, FC/RNN, and MR (paper §VI-A3)."""

from .base import Forecaster, training_interval_range
from .fc import FCBaseline
from .gp import GaussianProcessForecaster, rbf_kernel
from .mr import MRForecaster
from .neural import NeuralForecaster, plain_loss
from .nh import NaiveHistogram
from .var import VARForecaster

__all__ = [
    "Forecaster", "training_interval_range",
    "NaiveHistogram",
    "GaussianProcessForecaster", "rbf_kernel",
    "VARForecaster",
    "FCBaseline",
    "MRForecaster",
    "NeuralForecaster", "plain_loss",
]
