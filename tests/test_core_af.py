"""Tests for the Advanced Framework."""

import numpy as np
import pytest

from repro.core import AdvancedFramework, GCNNBlock, af_loss
from repro.graph import build_proximity


@pytest.fixture
def graphs(rng):
    w_o = build_proximity(rng.uniform(0, 5, size=(10, 2)))
    w_d = build_proximity(rng.uniform(0, 5, size=(12, 2)))
    return w_o, w_d


@pytest.fixture
def model(graphs, rng):
    w_o, w_d = graphs
    return AdvancedFramework(w_o, w_d, n_buckets=3, rng=rng, rank=2,
                             blocks=[GCNNBlock(6, 2, 1)],
                             rnn_hidden=6, rnn_order=2)


class TestAdvancedFramework:
    def test_forward_shapes_rectangular(self, model, rng):
        history = rng.uniform(size=(3, 4, 10, 12, 3))
        pred, r, c = model(history, horizon=2)
        assert pred.shape == (3, 2, 10, 12, 3)
        assert r.shape == (3, 2, 10, 2, 3)
        assert c.shape == (3, 2, 2, 12, 3)

    def test_predictions_are_histograms(self, model, rng):
        pred, _, _ = model(rng.uniform(size=(2, 3, 10, 12, 3)), horizon=1)
        assert np.allclose(pred.numpy().sum(-1), 1.0)
        assert (pred.numpy() > 0).all()

    def test_rejects_wrong_ndim(self, model, rng):
        with pytest.raises(ValueError):
            model(rng.uniform(size=(3, 10, 12, 3)), horizon=1)

    def test_all_parameters_receive_gradients(self, model, graphs, rng):
        w_o, w_d = graphs
        history = rng.uniform(size=(2, 3, 10, 12, 3))
        truth = rng.uniform(size=(2, 2, 10, 12, 3))
        mask = np.ones((2, 2, 10, 12), dtype=bool)
        pred, r, c = model(history, horizon=2)
        af_loss(pred, truth, mask, r, c, w_o, w_d, 1e-3, 1e-3).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_fewer_weights_than_bf(self, graphs, rng):
        """Table I's headline: AF uses fewer weights than BF."""
        from repro.core import BasicFramework
        w_o, w_d = graphs
        af = AdvancedFramework(w_o, w_d, 3, rng, rank=2,
                               blocks=[GCNNBlock(6, 2, 1)],
                               rnn_hidden=6, rnn_order=2)
        bf = BasicFramework(10, 12, 3, rng, rank=2, encoder_dim=8,
                            hidden_dim=12)
        assert af.num_parameters() < bf.num_parameters()

    def test_weight_count_independent_of_region_count(self, rng):
        """Graph convolutions share filters across nodes, so AF's RNN
        weight count does not scale with N (unlike BF/FC)."""
        small_w = build_proximity(rng.uniform(0, 5, size=(8, 2)))
        big_w = build_proximity(rng.uniform(0, 10, size=(30, 2)))
        kwargs = dict(n_buckets=3, rank=2, blocks=[GCNNBlock(6, 2, 1)],
                      rnn_hidden=6, rnn_order=2)
        small = AdvancedFramework(small_w, small_w,
                                  rng=np.random.default_rng(0), **kwargs)
        big = AdvancedFramework(big_w, big_w,
                                rng=np.random.default_rng(0), **kwargs)
        # Only the latent projection (pooled_size -> rank) may differ.
        small_rnn = sum(p.size for n, p in small.named_parameters()
                        if n.startswith("rnn"))
        big_rnn = sum(p.size for n, p in big.named_parameters()
                      if n.startswith("rnn"))
        assert small_rnn == big_rnn

    def test_deterministic_in_eval_mode(self, model, rng):
        history = rng.uniform(size=(1, 3, 10, 12, 3))
        model.eval()
        a = model(history, horizon=1)[0].numpy()
        b = model(history, horizon=1)[0].numpy()
        assert np.allclose(a, b)
