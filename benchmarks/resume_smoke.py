#!/usr/bin/env python3
"""Fast checkpoint/resume regression check for run_benchmarks.sh.

Trains a small BF model for 2 epochs with checkpointing in a *child
process that is killed afterwards* (a real mid-run death, not a polite
return), resumes for the remaining epoch in this process, and asserts
the final weights and loss curves are bit-identical to an uninterrupted
3-epoch run.  Exits non-zero on any mismatch so checkpoint regressions
fail the benchmark sweep loudly.

Usage: PYTHONPATH=src python3 benchmarks/resume_smoke.py
"""

import multiprocessing
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BasicFramework, TrainConfig, Trainer, bf_loss
from repro.histograms import (WindowDataset, build_od_tensors,
                              chronological_split)
from repro.trips import toy_dataset

EPOCHS = 3
INTERRUPT_AFTER = 2
CFG = dict(batch_size=8, max_train_batches=6, patience=10, seed=3)


def _make_data():
    dataset = toy_dataset(n_days=3, n_regions=12, seed=42)
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    windows = WindowDataset(sequence, s=3, h=2)
    return windows, chronological_split(windows)


def _make_trainer(epochs):
    model = BasicFramework(12, 12, 7, np.random.default_rng(7), rank=3,
                           encoder_dim=8, hidden_dim=12, dropout=0.2)
    loss = lambda p, t, m, r, c: bf_loss(p, t, m, r, c, 1e-4, 1e-4)
    return Trainer(model, loss, TrainConfig(epochs=epochs, **CFG))


def _partial_run(checkpoint_dir):
    """Child process: train INTERRUPT_AFTER epochs, then die abruptly."""
    windows, split = _make_data()
    trainer = _make_trainer(EPOCHS)
    epochs_done = [0]

    def count(event, fields):
        if event == "checkpoint":
            epochs_done[0] += 1
            if epochs_done[0] >= INTERRUPT_AFTER:
                os._exit(0)                      # simulate a hard crash

    trainer.fit(windows, split, horizon=2, checkpoint_dir=checkpoint_dir,
                telemetry=count)
    os._exit(1)                                  # should never finish


def main() -> int:
    windows, split = _make_data()

    baseline = _make_trainer(EPOCHS)
    expected = baseline.fit(windows, split, horizon=2)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        proc = ctx.Process(target=_partial_run, args=(checkpoint_dir,))
        proc.start()
        proc.join(timeout=300)
        if proc.is_alive():
            proc.terminate()
            print("resume smoke: FAIL (partial run hung)")
            return 1

        resumed = _make_trainer(EPOCHS)
        result = resumed.fit(windows, split, horizon=2,
                             checkpoint_dir=checkpoint_dir, resume=True)

    failures = []
    if result.train_losses != expected.train_losses:
        failures.append("train loss curves differ")
    if result.val_losses != expected.val_losses:
        failures.append("val loss curves differ")
    state = resumed.model.state_dict()
    expected_state = baseline.model.state_dict()
    for name in expected_state:
        if not np.array_equal(state[name], expected_state[name]):
            failures.append(f"weights differ: {name}")
            break
    if failures:
        print(f"resume smoke: FAIL ({'; '.join(failures)})")
        return 1
    print(f"resume smoke: OK (killed after epoch {INTERRUPT_AFTER}, "
          f"resumed to epoch {EPOCHS}, weights and curves bit-identical)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
