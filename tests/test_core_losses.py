"""Tests for the BF and AF losses."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.core import af_loss, bf_loss, factor_dirichlet, masked_frobenius
from repro.graph import build_proximity


@pytest.fixture
def pieces(rng):
    pred = Tensor(rng.uniform(0.1, 0.9, size=(2, 2, 4, 4, 3)),
                  requires_grad=True)
    truth = rng.uniform(0.1, 0.9, size=(2, 2, 4, 4, 3))
    mask = rng.random(size=(2, 2, 4, 4)) < 0.5
    r = Tensor(rng.normal(size=(2, 2, 4, 2, 3)), requires_grad=True)
    c = Tensor(rng.normal(size=(2, 2, 2, 4, 3)), requires_grad=True)
    return pred, truth, mask, r, c


class TestMaskedFrobenius:
    def test_zero_when_equal_on_mask(self, pieces, rng):
        pred, truth, mask, _, _ = pieces
        matched = truth.copy()
        matched[~mask] = rng.uniform(size=((~mask).sum(), 3))  # junk outside
        loss = masked_frobenius(Tensor(matched), truth, mask)
        assert loss.item() == pytest.approx(0.0)

    def test_ignores_unobserved_cells(self, pieces):
        pred, truth, mask, _, _ = pieces
        base = masked_frobenius(pred, truth, mask).item()
        corrupted = truth.copy()
        corrupted[~mask] += 100.0
        assert masked_frobenius(pred, corrupted, mask).item() \
            == pytest.approx(base)

    def test_normalized_by_observed_count(self, pieces):
        pred, truth, mask, _, _ = pieces
        dense = np.ones_like(mask, dtype=bool)
        sparse_loss = masked_frobenius(pred, truth, mask).item()
        dense_loss = masked_frobenius(pred, truth, dense).item()
        # Both are per-cell means: same order of magnitude.
        assert 0.1 < sparse_loss / max(dense_loss, 1e-12) < 10

    def test_all_masked_no_nan(self, pieces):
        pred, truth, _, _, _ = pieces
        empty = np.zeros((2, 2, 4, 4), dtype=bool)
        assert masked_frobenius(pred, truth, empty).item() == 0.0

    def test_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(1, 1, 3, 3, 2)), requires_grad=True)
        truth = rng.normal(size=(1, 1, 3, 3, 2))
        mask = rng.random(size=(1, 1, 3, 3)) < 0.6
        check_gradients(lambda p: masked_frobenius(p, truth, mask), [pred])


class TestBFLoss:
    def test_regularizers_increase_loss(self, pieces):
        pred, truth, mask, r, c = pieces
        bare = bf_loss(pred, truth, mask, r, c, 0.0, 0.0).item()
        regularized = bf_loss(pred, truth, mask, r, c, 0.1, 0.1).item()
        assert regularized > bare

    def test_gradients_reach_factors(self, pieces):
        pred, truth, mask, r, c = pieces
        bf_loss(pred, truth, mask, r, c, 0.1, 0.1).backward()
        assert r.grad is not None and np.abs(r.grad).sum() > 0
        assert c.grad is not None and np.abs(c.grad).sum() > 0

    def test_zero_lambda_skips_factor_grads(self, pieces):
        pred, truth, mask, r, c = pieces
        bf_loss(pred, truth, mask, r, c, 0.0, 0.0).backward()
        assert r.grad is None and c.grad is None


class TestAFLoss:
    def test_dirichlet_prefers_smooth_factors(self, rng):
        weights = build_proximity(rng.uniform(0, 3, size=(4, 2)))
        pred = Tensor(rng.uniform(size=(1, 1, 4, 4, 3)))
        truth = pred.numpy().copy()
        mask = np.ones((1, 1, 4, 4), dtype=bool)
        rough = Tensor(rng.normal(size=(1, 1, 4, 2, 3)))
        smooth = Tensor(np.ones((1, 1, 4, 2, 3)))
        c = Tensor(np.zeros((1, 1, 2, 4, 3)))
        loss_rough = af_loss(pred, truth, mask, rough, c, weights, weights,
                             lambda_r=1.0, lambda_c=0.0).item()
        loss_smooth = af_loss(pred, truth, mask, smooth, c, weights,
                              weights, lambda_r=1.0, lambda_c=0.0).item()
        assert loss_smooth < loss_rough

    def test_uses_correct_graphs(self, rng):
        """R regularized under origin graph (axis N), C under dest graph."""
        w_o = build_proximity(rng.uniform(0, 3, size=(4, 2)))
        w_d = build_proximity(rng.uniform(0, 3, size=(5, 2)))
        pred = Tensor(rng.uniform(size=(1, 1, 4, 5, 3)))
        truth = pred.numpy().copy()
        mask = np.ones((1, 1, 4, 5), dtype=bool)
        r = Tensor(rng.normal(size=(1, 1, 4, 2, 3)), requires_grad=True)
        c = Tensor(rng.normal(size=(1, 1, 2, 5, 3)), requires_grad=True)
        loss = af_loss(pred, truth, mask, r, c, w_o, w_d,
                       lambda_r=1.0, lambda_c=1.0)
        loss.backward()
        assert r.grad.shape == r.shape
        assert c.grad.shape == c.shape

    def test_factor_dirichlet_gradcheck(self, rng):
        weights = build_proximity(rng.uniform(0, 3, size=(4, 2)))
        r = Tensor(rng.normal(size=(2, 4, 3, 2)), requires_grad=True)
        check_gradients(lambda r: factor_dirichlet(r, weights, 1), [r])
