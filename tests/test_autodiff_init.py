"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.autodiff import init


class TestXavier:
    def test_uniform_bounds(self, rng):
        w = init.xavier_uniform((50, 80), rng)
        bound = np.sqrt(6.0 / (50 + 80))
        assert np.abs(w).max() <= bound + 1e-12
        assert w.shape == (50, 80)

    def test_uniform_gain_scales(self, rng):
        small = init.xavier_uniform((40, 40), np.random.default_rng(0),
                                    gain=0.5)
        large = init.xavier_uniform((40, 40), np.random.default_rng(0),
                                    gain=2.0)
        assert np.abs(large).max() > np.abs(small).max()

    def test_normal_std(self, rng):
        w = init.xavier_normal((200, 300), rng)
        expected = np.sqrt(2.0 / 500)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_1d_shape(self, rng):
        w = init.xavier_uniform((64,), rng)
        assert w.shape == (64,)

    def test_fan_from_last_two_axes(self, rng):
        w = init.xavier_uniform((5, 30, 40), rng)
        bound = np.sqrt(6.0 / 70)
        assert np.abs(w).max() <= bound + 1e-12


class TestOrthogonal:
    def test_orthogonal_rows(self, rng):
        w = init.orthogonal((6, 10), rng)
        gram = w @ w.T
        assert np.allclose(gram, np.eye(6), atol=1e-8)

    def test_orthogonal_columns_when_tall(self, rng):
        w = init.orthogonal((10, 6), rng)
        gram = w.T @ w
        assert np.allclose(gram, np.eye(6), atol=1e-8)

    def test_gain(self, rng):
        w = init.orthogonal((4, 4), rng, gain=3.0)
        gram = w @ w.T
        assert np.allclose(gram, 9.0 * np.eye(4), atol=1e-8)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            init.orthogonal((5,), rng)


class TestZeros:
    def test_zeros(self):
        assert init.zeros((3, 2)).sum() == 0.0
