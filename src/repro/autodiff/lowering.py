"""Compile captured replay tapes into flat instruction plans.

The replay engine (``replay.py``) removes graph *construction* from the
steady-state step but still walks Python closures: every forward thunk
allocates fresh arrays, and every backward step re-runs the eager adjoint
closures.  This module lowers a captured ``_Tape`` one level further into a
:class:`LoweredPlan` — two flat lists of zero-argument instructions (one
forward, one backward) over preallocated buffers:

* every intermediate that the lowerer understands is computed straight into
  a persistent destination buffer via ``out=``/``np.copyto`` (the entry's
  captured output array is adopted as that destination, so downstream
  consumers keep reading the same storage);
* runs of adjacent lowered elementwise instructions are fused into single
  plan instructions (one Python dispatch for the whole chain);
* the backward schedule is resolved once at lowering time: the topological
  order, each node's adjoint instruction, and the grad-buffer handoffs are
  frozen into a second flat list, so ``run_backward`` never touches the
  graph.

Bit-identity contract: a lowered step must produce exactly the arrays the
eager step produces — losses, gradients, weight updates and RNG consumption
are compared bitwise in the test-suite.  Every lowering rule therefore
mirrors its op's eager arithmetic *operation for operation* (same ufuncs,
same operand order, same dtypes); anything that cannot be proven equivalent
is left as a *generic* instruction that simply re-runs the captured thunk
(exact replay semantics).  If the tape contains an op the lowerer does not
recognise at all, :func:`lower_tape` declines with a
:class:`LoweringFallbackWarning` and the engine keeps using plain replay.

Gradient-buffer safety: adjoint instructions hand per-instruction scratch
buffers to ``Tensor._accumulate``, which *borrows* the first contribution
without copying.  A buffer handed over this way is written exactly once per
step, before the handoff, and never shared between instructions — by the
time the next step overwrites it, every borrower (optimizer, interior
nodes) has consumed and released its gradient.
"""

from __future__ import annotations

import warnings
from time import perf_counter as _perf_counter
from typing import Callable, Dict, List, Optional

import numpy as np

from .tensor import Tensor, _active_profiler, _op_label, _unbroadcast

__all__ = [
    "LoweredPlan",
    "LoweringFallbackWarning",
    "LoweringUnsupported",
    "lower_tape",
]


class LoweringFallbackWarning(RuntimeWarning):
    """A tape could not be lowered and the engine fell back to replay."""


class LoweringUnsupported(Exception):
    """Raised internally when a tape cannot be lowered safely."""


#: Labels the lowerer knows how to run *generically* (re-running the
#: captured thunk preserves exact replay semantics for these).  An entry
#: with a label outside this set aborts lowering for the whole tape: an
#: unknown op may have capture-time state the generic path cannot see.
GENERIC_SAFE = frozenset({
    "add", "neg", "sub", "mul", "truediv", "pow", "matmul", "sum", "max",
    "reshape", "transpose", "getitem", "expand_dims", "squeeze",
    "exp", "log", "sqrt", "sigmoid", "tanh", "relu", "softmax",
    "concat", "stack", "maximum", "abs_", "clip_min", "dropout", "where",
    "pad_axis", "take_axis", "_pool_axis",
    "cheb_propagate", "cheb_conv",
    "fused_gcnn_stage", "fused_latent_head", "fused_gru_gates",
    "fused_cnrnn_cell",
    "fused_twin_cheb_conv", "fused_twin_cnrnn_cell",
    "fused_twin_gcnn_stage", "fused_twin_latent_head",
    "fused_softmax_recovery", "fused_masked_frobenius",
    "dirichlet_energy",
})

#: Sentinel returned by a rule when the entry needs *no* instruction at
#: all (the captured output already aliases its parent's stable buffer).
_ELIDE = object()


# ----------------------------------------------------------------------
# compile context
# ----------------------------------------------------------------------
class _Build:
    """Mutable state threaded through one ``lower_tape`` compilation."""

    def __init__(self, tape) -> None:
        self.tape = tape
        self.out_ids = {id(out) for out, _, _ in tape.entries}
        self._stable_outs: set = set()
        self.staged: Dict[tuple, np.ndarray] = {}
        self.fwd: List[Callable[[], None]] = []
        self.bwd_special: Dict[int, tuple] = {}
        self.scratch_nbytes = 0
        self.n_specialized = 0
        self.n_generic = 0
        self.n_elided = 0

    def alloc(self, shape, dtype) -> np.ndarray:
        buf = np.empty(shape, dtype=dtype)
        self.scratch_nbytes += buf.nbytes
        return buf

    def zeros(self, shape, dtype) -> np.ndarray:
        buf = np.zeros(shape, dtype=dtype)
        self.scratch_nbytes += buf.nbytes
        return buf

    def stable(self, t: Tensor) -> bool:
        """Whether ``t.data`` is the same array object on every step.

        Leaves qualify unconditionally: parameters are updated in place by
        the optimizer (both Adam paths mutate ``parameter.data``), input
        tensors wrap the tape's refreshed capture buffers, and constants
        never change.  Entry outputs qualify only once a rule adopted
        their buffer (generic instructions rebind ``out.data``).
        """
        return id(t) not in self.out_ids or id(t) in self._stable_outs

    def mark_stable(self, t: Tensor) -> None:
        self._stable_outs.add(id(t))

    def staged_buf(self, key: tuple, shape, dtype):
        """Shared per-step staging buffer (e.g. stacked weight pairs).

        Weight stacks like the CNRNN's ``w_ru`` are identical across every
        cell instruction that uses the same parameter tensors, so they are
        built once per step by the *first* instruction that needs them.
        Returns ``(buffer, first)``; only the first requester emits the
        fill code in its forward instruction (forward always runs before
        any adjoint reads the stack, and the optimizer only mutates the
        source parameters after backward).
        """
        buf = self.staged.get(key)
        if buf is not None:
            return buf, False
        buf = self.alloc(shape, dtype)
        self.staged[key] = buf
        return buf, True


# ----------------------------------------------------------------------
# buffered Chebyshev helpers (mirror ops._cheb_terms/_cheb_feats/_cheb_adjoint)
# ----------------------------------------------------------------------
class _ChebFeatsBuf:
    """Buffered ``_cheb_feats(_cheb_terms(lap, sig, order), order)``.

    The interleaved feature store ``sig_shape + (order,)`` is allocated
    once; term ``s`` is computed directly into the strided slice
    ``store[..., s]`` (eager fills the same slots from fresh term arrays
    — identical values, zero allocation).  ``feats`` is the flattened
    ``(..., B·N, C·S)`` view eager's reshape would produce.
    """

    def __init__(self, build: _Build, lap: np.ndarray, sig_shape: tuple,
                 dtype, order: int) -> None:
        self.lap = lap
        self.order = order
        self.store = build.alloc(sig_shape + (order,), dtype)
        self.views = [self.store[..., s] for s in range(order)]
        c = sig_shape[-1]
        rows = sig_shape[:-3] + (sig_shape[-3] * sig_shape[-2],)
        self.feats = self.store.reshape(rows + (c * order,))

    def run(self, sig: np.ndarray) -> None:
        views = self.views
        views[0][...] = sig
        if self.order > 1:
            np.matmul(self.lap, sig, out=views[1])
        for s in range(2, self.order):
            np.matmul(self.lap, views[s - 1], out=views[s])
            views[s] *= 2.0
            views[s] -= views[s - 2]


class _ChebAdjointBuf:
    """Buffered ``_cheb_adjoint`` against a staged stacked weight.

    ``run(dmixed)`` returns the signal adjoint; the returned array is a
    plan-owned buffer (or view) that is handed to ``_accumulate`` as a
    borrowed gradient — it is rewritten only on the next step's backward,
    after every borrower has released it.
    """

    def __init__(self, build: _Build, lap_t: np.ndarray,
                 w_stack: np.ndarray, sig_shape: tuple, order: int,
                 dtype) -> None:
        self.lap_t = lap_t
        self.w_stack = w_stack
        self.order = order
        cs = sig_shape[-1] * order
        rows = sig_shape[:-3] + (sig_shape[-3] * sig_shape[-2],)
        self.dfull = build.alloc(rows + (cs,), dtype)
        self.dfull_v = self.dfull.reshape(sig_shape + (order,))
        if order >= 2:
            self.adj = [build.alloc(sig_shape, dtype) for _ in range(order)]
            self.tmp = build.alloc(sig_shape, dtype)

    def run(self, dmixed: np.ndarray) -> np.ndarray:
        np.matmul(dmixed, np.swapaxes(self.w_stack, -1, -2), out=self.dfull)
        v = self.dfull_v
        order = self.order
        if order == 1:
            return v[..., 0]
        if order == 2:
            np.copyto(self.tmp, v[..., 1])
            out = self.adj[0]
            np.matmul(self.lap_t, self.tmp, out=out)
            out += v[..., 0]
            return out
        adj = self.adj
        for s in range(order):
            np.copyto(adj[s], v[..., s])
        for s in range(order - 1, 1, -1):
            np.matmul(self.lap_t, adj[s], out=self.tmp)
            self.tmp *= 2.0
            adj[s - 1] += self.tmp
            adj[s - 2] -= adj[s]
        np.matmul(self.lap_t, adj[1], out=self.tmp)
        adj[0] += self.tmp
        return adj[0]


class _StableSigmoidBuf:
    """Buffered ``ops._stable_sigmoid``: same ufunc sequence, no allocs.

    Eager computes ``z = exp(-|y|)`` then ``where(y >= 0, 1, z)/(1+z)``;
    the masked assignment below reproduces the ``where`` select bitwise.
    """

    def __init__(self, build: _Build, shape: tuple, dtype) -> None:
        self.z = build.alloc(shape, dtype)
        self.cond = build.alloc(shape, bool)
        self.den = build.alloc(shape, dtype)

    def run(self, y: np.ndarray, out: np.ndarray) -> None:
        with np.errstate(under="ignore"):
            np.abs(y, out=self.z)
            np.negative(self.z, out=self.z)
            np.exp(self.z, out=self.z)
            np.greater_equal(y, 0, out=self.cond)
            np.add(self.z, 1.0, out=self.den)
            self.z[self.cond] = 1.0
            np.divide(self.z, self.den, out=out)


# ----------------------------------------------------------------------
# lowering rules
# ----------------------------------------------------------------------
# A rule returns:
#   None                        -> keep the entry generic (re-run thunk)
#   _ELIDE                      -> drop the entry (output aliases parent)
#   (instr, bwd_body, fuse)     -> specialized forward instruction, an
#                                  optional specialized adjoint body
#                                  ``body(grad) -> None``, and whether the
#                                  forward instruction is elementwise
#                                  (eligible for chain fusion).

def _same_dtype(out: Tensor, *tensors: Tensor) -> bool:
    dtype = out.data.dtype
    return all(t.data.dtype == dtype for t in tensors)


def _rule_add(build, out, run, spec):
    _, a, b = spec
    if not _same_dtype(out, a, b):
        return None
    buf = out.data

    def instr():
        np.add(a.data, b.data, out=buf)

    return instr, None, True


def _rule_sub(build, out, run, spec):
    _, a, b = spec
    if not _same_dtype(out, a, b):
        return None
    buf = out.data

    def instr():
        np.subtract(a.data, b.data, out=buf)

    return instr, None, True


def _rule_mul(build, out, run, spec):
    _, a, b = spec
    if not _same_dtype(out, a, b):
        return None
    buf = out.data

    def instr():
        np.multiply(a.data, b.data, out=buf)

    return instr, None, True


def _rule_neg(build, out, run, spec):
    _, a = spec
    if not _same_dtype(out, a):
        return None
    buf = out.data

    def instr():
        np.negative(a.data, out=buf)

    return instr, None, True


def _rule_matmul(build, out, run, spec):
    _, a, b = spec
    if a.ndim < 2 or b.ndim < 2 or not _same_dtype(out, a, b):
        return None
    buf = out.data

    def instr():
        np.matmul(a.data, b.data, out=buf)

    return instr, None, False


def _rule_stack(build, out, run, spec):
    _, payload = spec
    tensors = payload["tensors"]
    axis = payload["axis"]
    if not _same_dtype(out, *tensors):
        return None
    buf = out.data

    def instr():
        np.stack([t.data for t in tensors], axis=axis, out=buf)

    return instr, None, False


def _rule_concat(build, out, run, spec):
    _, payload = spec
    tensors = payload["tensors"]
    axis = payload["axis"]
    if not _same_dtype(out, *tensors):
        return None
    buf = out.data

    def instr():
        np.concatenate([t.data for t in tensors], axis=axis, out=buf)

    return instr, None, False


def _rule_view(build, out, run, spec):
    """reshape/transpose/basic-getitem/expand_dims/squeeze elision.

    When the captured output aliases a stable parent buffer, the view
    tracks every in-place parent update for free — the entry needs no
    instruction at all.  ``shares_memory`` is the exact capture-time
    proof (a reshape of a non-contiguous array, or a fancy getitem,
    produced a copy and stays generic).
    """
    parent = spec[1]
    if build.stable(parent) and np.shares_memory(out.data, parent.data):
        return _ELIDE
    return None


def _rule_getitem(build, out, run, spec):
    """Basic-slice getitem: elide the forward, specialize the scatter.

    Eager's adjoint allocates ``zeros_like(parent)`` and writes the slice
    every step; the plan keeps one zeroed buffer per getitem node —
    regions outside the slice stay exactly zero, the slice itself is
    fully rewritten each step.  The adjoint only depends on the parent's
    (signature-fixed) shape, so it applies whether or not the forward
    view could be elided.
    """
    _, parent, index, basic = spec
    if basic and parent.requires_grad:
        full = build.zeros(parent.data.shape, parent.data.dtype)

        def bwd_body(grad):
            full[index] = grad
            parent._accumulate(full)

        build.bwd_special[id(out)] = (bwd_body, "getitem")
    return _rule_view(build, out, run, spec)


def _rule_dropout(build, out, run, spec):
    _, payload = spec
    x = payload["x"]
    keep = payload["keep"]
    rng = payload["rng"]
    dtype = out.data.dtype
    if x.data.dtype != dtype:
        return None
    draws = build.alloc(x.shape, np.float64)
    keep_mask = build.alloc(x.shape, bool)
    mask = build.alloc(x.shape, dtype)
    gbuf = build.alloc(x.shape, dtype) if x.requires_grad else None
    buf = out.data
    x_grad = x.requires_grad

    def instr():
        # Same generator consumption as eager's rng.random(x.shape):
        # out= draws the identical float64 stream into a reused buffer.
        rng.random(out=draws)
        np.less(draws, keep, out=keep_mask)
        np.copyto(mask, keep_mask)
        np.divide(mask, keep, out=mask)
        np.multiply(x.data, mask, out=buf)

    def bwd_body(grad):
        if x_grad:
            np.multiply(grad, mask, out=gbuf)
            x._accumulate(gbuf)

    return instr, bwd_body, False


def _rule_twin_cheb_conv(build, out, run, spec):
    _, d = spec
    x = d["x"]
    w_a, b_a, w_b, b_b = d["w_a"], d["b_a"], d["w_b"], d["b_b"]
    order, lap_b, lap_t = d["order"], d["lap_b"], d["lap_t"]
    two, batch, n, channels = x.shape
    q = w_a.shape[-1]
    dtype = out.data.dtype
    if not _same_dtype(out, x, w_a, b_a, w_b, b_b):
        return None

    feats = _ChebFeatsBuf(build, lap_b, (two, batch, n, channels), dtype,
                          order)
    w2, fill_w2 = build.staged_buf(("w2", id(w_a), id(w_b)),
                                   (two, channels * order, q), dtype)
    b2, fill_b2 = build.staged_buf(("b2", id(b_a), id(b_b)),
                                   (two, q), dtype)
    b2_bc = b2[:, None, None]
    pre = build.alloc((two, batch * n, q), dtype)
    pre_v = pre.reshape(two, batch, n, q)
    buf = out.data

    def instr():
        if fill_w2:
            np.copyto(w2[0], w_a.data)
            np.copyto(w2[1], w_b.data)
        if fill_b2:
            np.copyto(b2[0], b_a.data)
            np.copyto(b2[1], b_b.data)
        feats.run(x.data)
        np.matmul(feats.feats, w2, out=pre)
        np.add(pre_v, b2_bc, out=buf)

    feats_t = np.swapaxes(feats.feats, -1, -2)
    adjoint = _ChebAdjointBuf(build, lap_t, w2, (two, batch, n, channels),
                              order, dtype)
    dw = build.alloc((two, channels * order, q), dtype)
    db = build.alloc((two, q), dtype)
    wg = w_a.requires_grad or w_b.requires_grad
    bg = b_a.requires_grad or b_b.requires_grad
    xg = x.requires_grad

    def bwd_body(grad):
        gm = grad.reshape(two, batch * n, q)
        if wg:
            np.matmul(feats_t, gm, out=dw)
            if w_a.requires_grad:
                w_a._accumulate(dw[0])
            if w_b.requires_grad:
                w_b._accumulate(dw[1])
        if bg:
            np.add.reduce(gm, axis=1, out=db)
            if b_a.requires_grad:
                b_a._accumulate(db[0])
            if b_b.requires_grad:
                b_b._accumulate(db[1])
        if xg:
            x._accumulate(adjoint.run(gm))

    return instr, bwd_body, False


def _rule_twin_gcnn_stage(build, out, run, spec):
    _, d = spec
    x = d["x"]
    w_a, b_a, w_b, b_b = d["w_a"], d["b_a"], d["w_b"], d["b_b"]
    order, stride = d["order"], d["stride"]
    lap_b, lap_t = d["lap_b"], d["lap_t"]
    real, perm_real = d["real"], d["perm_real"]
    cluster_of_node, scale = d["cluster_of_node"], d["scale"]
    perm_size = d["perm_size"]
    # Fast path only for the stride-2 pooling the factorizer uses: a
    # window of two sums as one pairwise add, bitwise the same as
    # reshape(...).sum(axis); other layouts stay generic.
    if stride != 2:
        return None
    two, batch, n, channels = x.shape
    q = w_a.shape[-1]
    dtype = out.data.dtype
    if not _same_dtype(out, x, w_a, b_a, w_b, b_b):
        return None

    feats = _ChebFeatsBuf(build, lap_b, (two, batch, n, channels), dtype,
                          order)
    w2, fill_w2 = build.staged_buf(("w2", id(w_a), id(w_b)),
                                   (two, channels * order, q), dtype)
    b2, fill_b2 = build.staged_buf(("b2", id(b_a), id(b_b)),
                                   (two, q), dtype)
    b2_flat = b2[:, None]
    pre = build.alloc((two, batch * n, q), dtype)
    # Bias + ReLU run in place on the contiguous GEMM output; ``act`` is
    # just its 4-D view (same values eager materializes separately).
    pre_v = pre.reshape(two, batch, n, q)
    act = pre_v
    act_ext = src0 = src1 = take0 = take1 = None
    if perm_size is None:
        # No pad/permute: the pooling pair is just even/odd row views.
        pool0 = act[:, :, 0::2]
        pool1 = act[:, :, 1::2]
    else:
        src = np.full(perm_size, n, dtype=np.intp)
        src[real] = perm_real
        clusters = perm_size // 2
        if perm_size == n and bool(real.all()):
            # Pure permutation, no pad slots: gather pairs directly
            # from the activations.
            src0 = np.ascontiguousarray(src[0::2])
            src1 = np.ascontiguousarray(src[1::2])
            gather_src = act
        else:
            # Pad slots exist: activations are copied into rows [0, n)
            # of an (n+1)-row buffer whose last row is permanently
            # zero; gather indices route pad slots there, so padded
            # positions contribute exact zeros (eager writes real
            # activations into a zeroed scatter buffer — same values).
            act_ext = build.zeros((two, batch, n + 1, q), dtype)
            src0 = np.ascontiguousarray(src[0::2])
            src1 = np.ascontiguousarray(src[1::2])
            gather_src = act_ext
        take0 = build.alloc((two, batch, clusters, q), dtype)
        take1 = build.alloc((two, batch, clusters, q), dtype)
        pool0, pool1 = take0, take1
    buf = out.data

    def instr():
        if fill_w2:
            np.copyto(w2[0], w_a.data)
            np.copyto(w2[1], w_b.data)
        if fill_b2:
            np.copyto(b2[0], b_a.data)
            np.copyto(b2[1], b_b.data)
        feats.run(x.data)
        np.matmul(feats.feats, w2, out=pre)
        np.add(pre, b2_flat, out=pre)
        np.maximum(pre, 0.0, out=pre)
        if take0 is not None:
            if act_ext is not None:
                np.copyto(act_ext[:, :, :n], act)
            np.take(gather_src, src0, axis=2, out=take0)
            np.take(gather_src, src1, axis=2, out=take1)
        np.add(pool0, pool1, out=buf)
        np.multiply(buf, scale, out=buf)

    feats_t = np.swapaxes(feats.feats, -1, -2)
    adjoint = _ChebAdjointBuf(build, lap_t, w2, (two, batch, n, channels),
                              order, dtype)
    gscaled = build.alloc(out.shape, dtype)
    dact = build.alloc((two, batch, n, q), dtype)
    relu_mask = build.alloc((two, batch, n, q), bool)
    gm = dact.reshape(two, batch * n, q)
    dw = build.alloc((two, channels * order, q), dtype)
    db = build.alloc((two, q), dtype)
    wg = w_a.requires_grad or w_b.requires_grad
    bg = b_a.requires_grad or b_b.requires_grad
    xg = x.requires_grad

    def bwd_body(grad):
        np.multiply(grad, scale, out=gscaled)
        np.take(gscaled, cluster_of_node, axis=2, out=dact)
        np.greater(act, 0, out=relu_mask)
        np.multiply(dact, relu_mask, out=dact)
        if wg:
            np.matmul(feats_t, gm, out=dw)
            if w_a.requires_grad:
                w_a._accumulate(dw[0])
            if w_b.requires_grad:
                w_b._accumulate(dw[1])
        if bg:
            np.add.reduce(gm, axis=1, out=db)
            if b_a.requires_grad:
                b_a._accumulate(db[0])
            if b_b.requires_grad:
                b_b._accumulate(db[1])
        if xg:
            x._accumulate(adjoint.run(gm))

    return instr, bwd_body, False


def _rule_twin_cnrnn_cell(build, out, run, spec):
    _, d = spec
    x, h = d["x"], d["h"]
    w_reset_a, b_reset_a, w_update_a, b_update_a, w_cand_a, b_cand_a = \
        d["params_a"]
    w_reset_b, b_reset_b, w_update_b, b_update_b, w_cand_b, b_cand_b = \
        d["params_b"]
    order, lap_b, lap_t = d["order"], d["lap_b"], d["lap_t"]
    two, batch, n, cx = x.shape
    hidden = h.shape[-1]
    joint = hidden + cx
    dtype = out.data.dtype
    params = d["params_a"] + d["params_b"]
    if not _same_dtype(out, x, h, *params):
        return None

    h2 = 2 * hidden
    w_ru, fill_wru = build.staged_buf(
        ("w_ru", id(w_reset_a), id(w_update_a), id(w_reset_b),
         id(w_update_b)), (two, joint * order, h2), dtype)
    b_ru, fill_bru = build.staged_buf(
        ("b_ru", id(b_reset_a), id(b_update_a), id(b_reset_b),
         id(b_update_b)), (two, h2), dtype)
    w_cand, fill_wc = build.staged_buf(
        ("w_cand", id(w_cand_a), id(w_cand_b)),
        (two, joint * order, hidden), dtype)
    b_cand, fill_bc = build.staged_buf(
        ("b_cand", id(b_cand_a), id(b_cand_b)), (two, hidden), dtype)
    b_ru_bc = b_ru[:, None, None]
    b_cand_bc = b_cand[:, None, None]

    full = (two, batch, n, joint)
    gate2 = (two, batch, n, h2)
    gate1 = (two, batch, n, hidden)
    hx = build.alloc(full, dtype)
    feats_hx = _ChebFeatsBuf(build, lap_b, full, dtype, order)
    pre_ru = build.alloc((two, batch * n, h2), dtype)
    pre_ru_v = pre_ru.reshape(gate2)
    ru_in = build.alloc(gate2, dtype)
    sig = _StableSigmoidBuf(build, gate2, dtype)
    ru = build.alloc(gate2, dtype)
    r_v = ru[..., :hidden]
    u_v = ru[..., hidden:]
    rh = build.alloc(gate1, dtype)
    rhx = build.alloc(full, dtype)
    feats_rhx = _ChebFeatsBuf(build, lap_b, full, dtype, order)
    pre_c = build.alloc((two, batch * n, hidden), dtype)
    pre_c_v = pre_c.reshape(gate1)
    c_in = build.alloc(gate1, dtype)
    c = build.alloc(gate1, dtype)
    hmc = build.alloc(gate1, dtype)
    blend = build.alloc(gate1, dtype)
    buf = out.data

    def instr():
        if fill_wru:
            np.copyto(w_ru[0, :, :hidden], w_reset_a.data)
            np.copyto(w_ru[0, :, hidden:], w_update_a.data)
            np.copyto(w_ru[1, :, :hidden], w_reset_b.data)
            np.copyto(w_ru[1, :, hidden:], w_update_b.data)
        if fill_bru:
            np.copyto(b_ru[0, :hidden], b_reset_a.data)
            np.copyto(b_ru[0, hidden:], b_update_a.data)
            np.copyto(b_ru[1, :hidden], b_reset_b.data)
            np.copyto(b_ru[1, hidden:], b_update_b.data)
        if fill_wc:
            np.copyto(w_cand[0], w_cand_a.data)
            np.copyto(w_cand[1], w_cand_b.data)
        if fill_bc:
            np.copyto(b_cand[0], b_cand_a.data)
            np.copyto(b_cand[1], b_cand_b.data)
        np.concatenate((h.data, x.data), axis=-1, out=hx)
        feats_hx.run(hx)
        np.matmul(feats_hx.feats, w_ru, out=pre_ru)
        np.add(pre_ru_v, b_ru_bc, out=ru_in)
        sig.run(ru_in, ru)
        np.multiply(r_v, h.data, out=rh)
        np.concatenate((rh, x.data), axis=-1, out=rhx)
        feats_rhx.run(rhx)
        np.matmul(feats_rhx.feats, w_cand, out=pre_c)
        np.add(pre_c_v, b_cand_bc, out=c_in)
        np.tanh(c_in, out=c)
        np.subtract(h.data, c, out=hmc)
        np.multiply(u_v, hmc, out=blend)
        np.add(c, blend, out=buf)

    feats_hx_t = np.swapaxes(feats_hx.feats, -1, -2)
    feats_rhx_t = np.swapaxes(feats_rhx.feats, -1, -2)
    adj_cand = _ChebAdjointBuf(build, lap_t, w_cand, full, order, dtype)
    adj_ru = _ChebAdjointBuf(build, lap_t, w_ru, full, order, dtype)
    dh = build.alloc(gate1, dtype)
    t_h = build.alloc(gate1, dtype)
    dpre_c = build.alloc(gate1, dtype)
    t_2h = build.alloc(gate2, dtype)
    dru = build.alloc(gate2, dtype)
    dru_r = dru[..., :hidden]
    dru_u = dru[..., hidden:]
    dpre_u = build.alloc(gate1, dtype)
    dw_cand = build.alloc((two, joint * order, hidden), dtype)
    db_cand = build.alloc((two, hidden), dtype)
    dpre_r = build.alloc(gate1, dtype)
    dpre_ru = build.alloc((two, batch * n, h2), dtype)
    dpre_ru_v = dpre_ru.reshape(gate2)
    dpre_ru_r = dpre_ru_v[..., :hidden]
    dpre_ru_u = dpre_ru_v[..., hidden:]
    dw_ru = build.alloc((two, joint * order, h2), dtype)
    db_ru = build.alloc((two, h2), dtype)
    dh_out = build.alloc(gate1, dtype)
    dx_out = build.alloc((two, batch, n, cx), dtype)
    wc_g = w_cand_a.requires_grad or w_cand_b.requires_grad
    bc_g = b_cand_a.requires_grad or b_cand_b.requires_grad
    wru_g = (w_reset_a.requires_grad or w_update_a.requires_grad
             or w_reset_b.requires_grad or w_update_b.requires_grad)
    bru_g = (b_reset_a.requires_grad or b_update_a.requires_grad
             or b_reset_b.requires_grad or b_update_b.requires_grad)
    hg = h.requires_grad
    xg = x.requires_grad

    def bwd_body(grad):
        np.multiply(grad, u_v, out=dh)
        np.subtract(grad, dh, out=t_h)
        np.multiply(c, c, out=dpre_c)
        np.subtract(1.0, dpre_c, out=dpre_c)
        np.multiply(t_h, dpre_c, out=dpre_c)
        np.subtract(1.0, ru, out=t_2h)
        np.multiply(ru, t_2h, out=dru)
        np.multiply(grad, hmc, out=t_h)
        np.multiply(t_h, dru_u, out=dpre_u)
        dpre_c_flat = dpre_c.reshape(two, batch * n, hidden)
        if wc_g:
            np.matmul(feats_rhx_t, dpre_c_flat, out=dw_cand)
            if w_cand_a.requires_grad:
                w_cand_a._accumulate(dw_cand[0])
            if w_cand_b.requires_grad:
                w_cand_b._accumulate(dw_cand[1])
        if bc_g:
            np.add.reduce(dpre_c_flat, axis=1, out=db_cand)
            if b_cand_a.requires_grad:
                b_cand_a._accumulate(db_cand[0])
            if b_cand_b.requires_grad:
                b_cand_b._accumulate(db_cand[1])
        drhx = adj_cand.run(dpre_c_flat)
        drh = drhx[..., :hidden]
        np.multiply(drh, h.data, out=dpre_r)
        np.multiply(dpre_r, dru_r, out=dpre_r)
        np.multiply(drh, r_v, out=t_h)
        np.add(dh, t_h, out=dh)
        np.copyto(dpre_ru_r, dpre_r)
        np.copyto(dpre_ru_u, dpre_u)
        if wru_g:
            np.matmul(feats_hx_t, dpre_ru, out=dw_ru)
            if w_reset_a.requires_grad:
                w_reset_a._accumulate(dw_ru[0, :, :hidden])
            if w_update_a.requires_grad:
                w_update_a._accumulate(dw_ru[0, :, hidden:])
            if w_reset_b.requires_grad:
                w_reset_b._accumulate(dw_ru[1, :, :hidden])
            if w_update_b.requires_grad:
                w_update_b._accumulate(dw_ru[1, :, hidden:])
        if bru_g:
            np.add.reduce(dpre_ru, axis=1, out=db_ru)
            if b_reset_a.requires_grad:
                b_reset_a._accumulate(db_ru[0, :hidden])
            if b_update_a.requires_grad:
                b_update_a._accumulate(db_ru[0, hidden:])
            if b_reset_b.requires_grad:
                b_reset_b._accumulate(db_ru[1, :hidden])
            if b_update_b.requires_grad:
                b_update_b._accumulate(db_ru[1, hidden:])
        dhx = adj_ru.run(dpre_ru)
        if hg:
            np.add(dh, dhx[..., :hidden], out=dh_out)
            h._accumulate(dh_out)
        if xg:
            np.add(drhx[..., hidden:], dhx[..., hidden:], out=dx_out)
            x._accumulate(dx_out)

    return instr, bwd_body, False


def _rule_gru_gates(build, out, run, spec):
    _, d = spec
    x, h = d["x"], d["h"]
    w_reset, b_reset, w_update, b_update, w_cand, b_cand = d["params"]
    hidden = d["hidden"]
    dtype = out.data.dtype
    if not _same_dtype(out, x, h, *d["params"]):
        return None
    lead = h.shape[:-1]
    joint = hidden + x.shape[-1]
    full = lead + (joint,)
    gate = lead + (hidden,)

    hx = build.alloc(full, dtype)
    pre_r = build.alloc(gate, dtype)
    pre_u = build.alloc(gate, dtype)
    sig_r = _StableSigmoidBuf(build, gate, dtype)
    sig_u = _StableSigmoidBuf(build, gate, dtype)
    r = build.alloc(gate, dtype)
    u = build.alloc(gate, dtype)
    rh = build.alloc(gate, dtype)
    rhx = build.alloc(full, dtype)
    pre_c = build.alloc(gate, dtype)
    c = build.alloc(gate, dtype)
    t_a = build.alloc(gate, dtype)
    t_b = build.alloc(gate, dtype)
    buf = out.data

    def instr():
        np.concatenate((h.data, x.data), axis=-1, out=hx)
        np.matmul(hx, w_reset.data, out=pre_r)
        np.add(pre_r, b_reset.data, out=pre_r)
        sig_r.run(pre_r, r)
        np.matmul(hx, w_update.data, out=pre_u)
        np.add(pre_u, b_update.data, out=pre_u)
        sig_u.run(pre_u, u)
        np.multiply(r, h.data, out=rh)
        np.concatenate((rh, x.data), axis=-1, out=rhx)
        np.matmul(rhx, w_cand.data, out=pre_c)
        np.add(pre_c, b_cand.data, out=pre_c)
        np.tanh(pre_c, out=c)
        np.multiply(u, h.data, out=t_a)
        np.subtract(1.0, u, out=t_b)
        np.multiply(t_b, c, out=t_b)
        np.add(t_a, t_b, out=buf)

    rows = 1
    for dim in lead:
        rows *= dim
    hx2 = hx.reshape(rows, joint)
    rhx2 = rhx.reshape(rows, joint)
    hx2_t = hx2.T
    rhx2_t = rhx2.T
    lead_axes = tuple(range(len(lead)))
    dpre_c = build.alloc(gate, dtype)
    dh = build.alloc(gate, dtype)
    dpre_u = build.alloc(gate, dtype)
    dpre_r = build.alloc(gate, dtype)
    g_a = build.alloc(gate, dtype)
    g_b = build.alloc(gate, dtype)
    drhx = build.alloc(full, dtype)
    dhx = build.alloc(full, dtype)
    t_joint = build.alloc(full, dtype)
    dh_out = build.alloc(gate, dtype)
    dx_out = build.alloc(lead + (x.shape[-1],), dtype)
    dw_r = build.alloc((joint, hidden), dtype)
    dw_u = build.alloc((joint, hidden), dtype)
    dw_c = build.alloc((joint, hidden), dtype)
    db_r = build.alloc((hidden,), dtype)
    db_u = build.alloc((hidden,), dtype)
    db_c = build.alloc((hidden,), dtype)
    hg = h.requires_grad
    xg = x.requires_grad
    param_g = any(p.requires_grad for p in d["params"])

    def bwd_body(grad):
        np.subtract(1.0, u, out=g_a)
        np.multiply(grad, g_a, out=g_a)
        np.multiply(c, c, out=g_b)
        np.subtract(1.0, g_b, out=g_b)
        np.multiply(g_a, g_b, out=dpre_c)
        np.multiply(grad, u, out=dh)
        np.subtract(h.data, c, out=g_a)
        np.multiply(grad, g_a, out=g_a)
        np.multiply(g_a, u, out=g_a)
        np.subtract(1.0, u, out=g_b)
        np.multiply(g_a, g_b, out=dpre_u)
        np.matmul(dpre_c, w_cand.data.T, out=drhx)
        drh = drhx[..., :hidden]
        np.multiply(drh, h.data, out=g_a)
        np.multiply(g_a, r, out=g_a)
        np.subtract(1.0, r, out=g_b)
        np.multiply(g_a, g_b, out=dpre_r)
        np.multiply(drh, r, out=g_a)
        np.add(dh, g_a, out=dh)
        np.matmul(dpre_r, w_reset.data.T, out=dhx)
        np.matmul(dpre_u, w_update.data.T, out=t_joint)
        np.add(dhx, t_joint, out=dhx)
        if hg:
            np.add(dh, dhx[..., :hidden], out=dh_out)
            h._accumulate(dh_out)
        if xg:
            np.add(drhx[..., hidden:], dhx[..., hidden:], out=dx_out)
            x._accumulate(dx_out)
        if param_g:
            if w_reset.requires_grad:
                np.matmul(hx2_t, dpre_r.reshape(rows, hidden), out=dw_r)
                w_reset._accumulate(dw_r)
            if b_reset.requires_grad:
                np.add.reduce(dpre_r, axis=lead_axes, out=db_r)
                b_reset._accumulate(db_r)
            if w_update.requires_grad:
                np.matmul(hx2_t, dpre_u.reshape(rows, hidden), out=dw_u)
                w_update._accumulate(dw_u)
            if b_update.requires_grad:
                np.add.reduce(dpre_u, axis=lead_axes, out=db_u)
                b_update._accumulate(db_u)
            if w_cand.requires_grad:
                np.matmul(rhx2_t, dpre_c.reshape(rows, hidden), out=dw_c)
                w_cand._accumulate(dw_c)
            if b_cand.requires_grad:
                np.add.reduce(dpre_c, axis=lead_axes, out=db_c)
                b_cand._accumulate(db_c)

    return instr, bwd_body, False


def _rule_latent_head(build, out, run, spec):
    _, d = spec
    x = d["x"]
    wb_a, bb_a, wl_a, bl_a = d["head_a"]
    wb_b, bb_b, wl_b, bl_b = d["head_b"]
    dtype = out.data.dtype
    heads = d["head_a"] + d["head_b"]
    if not _same_dtype(out, x, *heads):
        return None
    two, b, p, cdim = x.shape
    k = wb_a.shape[-1]
    rank = wl_a.shape[-1]

    w_buckets, fill_wb = build.staged_buf(
        ("w_buckets", id(wb_a), id(wb_b)), (two, 1, cdim, k), dtype)
    b_buckets, fill_bb = build.staged_buf(
        ("b_buckets", id(bb_a), id(bb_b)), (two, k), dtype)
    w_latent, fill_wl = build.staged_buf(
        ("w_latent", id(wl_a), id(wl_b)), (two, 1, p, rank), dtype)
    b_latent, fill_bl = build.staged_buf(
        ("b_latent", id(bl_a), id(bl_b)), (two, rank), dtype)
    bb_bc = b_buckets[:, None, None]
    bl_bc = b_latent[:, None, None]
    t_mul = build.alloc((two, b, p, k), dtype)
    t_buf = build.alloc((two, b, p, k), dtype)
    tt = np.swapaxes(t_buf, -1, -2)
    z_mul = build.alloc((two, b, k, rank), dtype)
    z_buf = build.alloc((two, b, k, rank), dtype)
    z_t = np.swapaxes(z_buf, -1, -2)
    buf = out.data

    def instr():
        if fill_wb:
            np.copyto(w_buckets[0, 0], wb_a.data)
            np.copyto(w_buckets[1, 0], wb_b.data)
        if fill_bb:
            np.copyto(b_buckets[0], bb_a.data)
            np.copyto(b_buckets[1], bb_b.data)
        if fill_wl:
            np.copyto(w_latent[0, 0], wl_a.data)
            np.copyto(w_latent[1, 0], wl_b.data)
        if fill_bl:
            np.copyto(b_latent[0], bl_a.data)
            np.copyto(b_latent[1], bl_b.data)
        np.matmul(x.data, w_buckets, out=t_mul)
        np.add(t_mul, bb_bc, out=t_buf)
        np.matmul(tt, w_latent, out=z_mul)
        np.add(z_mul, bl_bc, out=z_buf)
        np.copyto(buf, z_t)

    gz2 = build.alloc((two, b * k, rank), dtype)
    gz2_v = gz2.reshape(two, b, k, rank)
    tt2 = build.alloc((two, b * k, p), dtype)
    tt2_v = tt2.reshape(two, b, k, p)
    tt2_t = np.swapaxes(tt2, -1, -2)
    dwl = build.alloc((two, p, rank), dtype)
    dbl = build.alloc((two, rank), dtype)
    w_latent_t = np.swapaxes(w_latent, -1, -2)
    dt_mul = build.alloc((two, b, k, p), dtype)
    dt = np.swapaxes(dt_mul, -1, -2)
    dt2 = build.alloc((two, b * p, k), dtype)
    dt2_v = dt2.reshape(two, b, p, k)
    dwb = build.alloc((two, cdim, k), dtype)
    dbb = build.alloc((two, k), dtype)
    w_buckets_t = np.swapaxes(w_buckets, -1, -2)
    dx = build.alloc((two, b, p, cdim), dtype)
    wl_g = wl_a.requires_grad or wl_b.requires_grad
    bl_g = bl_a.requires_grad or bl_b.requires_grad
    wb_g = wb_a.requires_grad or wb_b.requires_grad
    bb_g = bb_a.requires_grad or bb_b.requires_grad
    xg = x.requires_grad

    def bwd_body(grad):
        gz = np.swapaxes(grad, -1, -2)
        np.copyto(gz2_v, gz)
        if wl_g:
            np.copyto(tt2_v, tt)
            np.matmul(tt2_t, gz2, out=dwl)
            if wl_a.requires_grad:
                wl_a._accumulate(dwl[0])
            if wl_b.requires_grad:
                wl_b._accumulate(dwl[1])
        if bl_g:
            np.add.reduce(gz2, axis=1, out=dbl)
            if bl_a.requires_grad:
                bl_a._accumulate(dbl[0])
            if bl_b.requires_grad:
                bl_b._accumulate(dbl[1])
        np.matmul(gz, w_latent_t, out=dt_mul)
        np.copyto(dt2_v, dt)
        if wb_g:
            x2_t = np.swapaxes(x.data.reshape(two, -1, cdim), -1, -2)
            np.matmul(x2_t, dt2, out=dwb)
            if wb_a.requires_grad:
                wb_a._accumulate(dwb[0])
            if wb_b.requires_grad:
                wb_b._accumulate(dwb[1])
        if bb_g:
            np.add.reduce(dt2, axis=1, out=dbb)
            if bb_a.requires_grad:
                bb_a._accumulate(dbb[0])
            if bb_b.requires_grad:
                bb_b._accumulate(dbb[1])
        if xg:
            np.matmul(dt, w_buckets_t, out=dx)
            x._accumulate(dx)

    return instr, bwd_body, False


def _rule_softmax_recovery(build, out, run, spec):
    _, d = spec
    r, c = d["r"], d["c"]
    dtype = out.data.dtype
    if not _same_dtype(out, r, c):
        return None
    rb_shape = np.moveaxis(r.data, -1, -3).shape
    cb_shape = np.moveaxis(c.data, -1, -3).shape
    raw_shape = np.broadcast_shapes(rb_shape[:-2], cb_shape[:-2]) \
        + (rb_shape[-2], cb_shape[-1])
    raw = build.alloc(raw_shape, dtype)
    scores = np.moveaxis(raw, -3, -1)
    red_shape = scores.shape[:-1] + (1,)
    mx = build.alloc(red_shape, dtype)
    sm = build.alloc(red_shape, dtype)
    buf = out.data

    def instr():
        rb = np.moveaxis(r.data, -1, -3)
        cb = np.moveaxis(c.data, -1, -3)
        np.matmul(rb, cb, out=raw)
        np.max(scores, axis=-1, keepdims=True, out=mx)
        np.subtract(scores, mx, out=scores)
        np.exp(scores, out=scores)
        np.add.reduce(scores, axis=-1, keepdims=True, out=sm)
        np.divide(scores, sm, out=scores)
        np.copyto(buf, scores)

    t_buf = build.alloc(out.shape, dtype)
    dot = build.alloc(out.shape[:-1] + (1,), dtype)
    draw = build.alloc(out.shape, dtype)
    draw_k = np.moveaxis(draw, -1, -3)
    dr_shape = np.broadcast_shapes(draw_k.shape[:-2], cb_shape[:-2]) \
        + (draw_k.shape[-2], cb_shape[-2])
    dc_shape = np.broadcast_shapes(rb_shape[:-2], draw_k.shape[:-2]) \
        + (rb_shape[-1], draw_k.shape[-1])
    rg = r.requires_grad
    cg = c.requires_grad
    dr = build.alloc(dr_shape, dtype) if rg else None
    dc = build.alloc(dc_shape, dtype) if cg else None

    def bwd_body(grad):
        np.multiply(grad, buf, out=t_buf)
        np.add.reduce(t_buf, axis=-1, keepdims=True, out=dot)
        np.subtract(grad, dot, out=t_buf)
        np.multiply(buf, t_buf, out=draw)
        if rg:
            cb = np.moveaxis(c.data, -1, -3)
            np.matmul(draw_k, cb.swapaxes(-1, -2), out=dr)
            r._accumulate(_unbroadcast(np.moveaxis(dr, -3, -1), r.shape))
        if cg:
            rb = np.moveaxis(r.data, -1, -3)
            np.matmul(rb.swapaxes(-1, -2), draw_k, out=dc)
            c._accumulate(_unbroadcast(np.moveaxis(dc, -3, -1), c.shape))

    return instr, bwd_body, False


def _rule_masked_frobenius(build, out, run, spec):
    _, d = spec
    prediction = d["prediction"]
    truth_arr, mask_arr, weights = d["truth"], d["mask"], d["weights"]
    dtype = out.data.dtype
    if prediction.data.dtype != dtype or truth_arr.dtype != dtype:
        return None
    diff = build.alloc(prediction.shape, dtype)
    sq = build.alloc(prediction.shape, dtype)
    state = {"observed": 1.0}
    buf = out.data

    def instr():
        np.subtract(prediction.data, truth_arr, out=diff)
        np.multiply(diff, weights, out=diff)
        state["observed"] = max(float(mask_arr.sum()), 1.0)
        np.multiply(diff, diff, out=sq)
        buf[...] = sq.sum() / state["observed"]

    g = build.alloc(prediction.shape, dtype)
    pg = prediction.requires_grad

    def bwd_body(grad):
        if pg:
            coef = float(grad) * 2.0 / state["observed"]
            np.multiply(diff, coef, out=g)
            np.multiply(g, weights, out=g)
            prediction._accumulate(_unbroadcast(g, prediction.shape))

    return instr, bwd_body, False


_RULES: Dict[str, Callable] = {
    "add": _rule_add,
    "sub": _rule_sub,
    "mul": _rule_mul,
    "neg": _rule_neg,
    "matmul": _rule_matmul,
    "stack": _rule_stack,
    "concat": _rule_concat,
    "reshape": _rule_view,
    "transpose": _rule_view,
    "expand_dims": _rule_view,
    "squeeze": _rule_view,
    "getitem": _rule_getitem,
    "dropout": _rule_dropout,
    "fused_twin_cheb_conv": _rule_twin_cheb_conv,
    "fused_twin_gcnn_stage": _rule_twin_gcnn_stage,
    "fused_twin_cnrnn_cell": _rule_twin_cnrnn_cell,
    "fused_gru_gates": _rule_gru_gates,
    "fused_twin_latent_head": _rule_latent_head,
    "fused_softmax_recovery": _rule_softmax_recovery,
    "fused_masked_frobenius": _rule_masked_frobenius,
}


# ----------------------------------------------------------------------
# generic instructions (exact replay semantics)
# ----------------------------------------------------------------------
def _generic_forward(out: Tensor, run: Callable, label: str) -> Callable:
    dtype = out.data.dtype

    def instr():
        out.data = np.asarray(run(), dtype=dtype)

    instr.__qualname__ = label
    return instr


def _generic_backward(node: Tensor) -> Callable:
    backward = node._backward

    def instr():
        grad = node.grad
        if grad is not None:
            backward(grad)
            node.grad = None

    instr.__qualname__ = _op_label(backward)
    return instr


def _special_backward(node: Tensor, body: Callable, label: str) -> Callable:
    def instr():
        grad = node.grad
        if grad is not None:
            body(grad)
            node.grad = None

    instr.__qualname__ = label
    return instr


def _fuse_elementwise(instrs: List[Callable]):
    """Merge maximal runs of adjacent elementwise instructions.

    The merged closure executes its members in the original order, so
    fusing is semantically the identity — it only collapses Python
    dispatch.  Returns ``(instructions, chains, ops_fused)``.
    """
    fused: List[Callable] = []
    chain: List[Callable] = []
    chains = 0
    ops_fused = 0

    def flush():
        nonlocal chains, ops_fused
        if len(chain) == 1:
            fused.append(chain[0])
        elif chain:
            members = tuple(chain)

            def fused_instr(_members=members):
                for member in _members:
                    member()

            fused_instr.__qualname__ = "fused_elementwise"
            chains += 1
            ops_fused += len(members)
            fused.append(fused_instr)
        chain.clear()

    for ins in instrs:
        if getattr(ins, "_fuse", False):
            chain.append(ins)
        else:
            flush()
            fused.append(ins)
    flush()
    return fused, chains, ops_fused


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class LoweredPlan:
    """A compiled tape: two flat instruction lists over arena buffers."""

    __slots__ = ("loss", "forward_instrs", "backward_instrs",
                 "hist_buf", "truth_buf", "mask_buf", "_seed",
                 "n_forward", "n_backward", "n_specialized", "n_generic",
                 "n_elided", "n_fused_chains", "n_fused_ops",
                 "scratch_nbytes")

    def __init__(self, tape, forward_instrs, backward_instrs, build,
                 n_fused_chains, n_fused_ops) -> None:
        self.loss = tape.loss
        self.forward_instrs = forward_instrs
        self.backward_instrs = backward_instrs
        self.hist_buf = tape.hist_buf
        self.truth_buf = tape.truth_buf
        self.mask_buf = tape.mask_buf
        # Forward-only plans (inference tapes) have no backward schedule
        # and their root is a full prediction tensor, not a scalar loss —
        # don't allocate a prediction-sized seed nobody will use.
        self._seed = np.ones_like(tape.loss.data) if backward_instrs \
            else None
        self.n_forward = len(forward_instrs)
        self.n_backward = len(backward_instrs)
        self.n_specialized = build.n_specialized
        self.n_generic = build.n_generic
        self.n_elided = build.n_elided
        self.n_fused_chains = n_fused_chains
        self.n_fused_ops = n_fused_ops
        self.scratch_nbytes = build.scratch_nbytes

    def run_forward(self, histories, targets=None, masks=None) -> Tensor:
        np.copyto(self.hist_buf, histories)
        if targets is not None:
            np.copyto(self.truth_buf, targets)
        if masks is not None:
            np.copyto(self.mask_buf, masks)
        profiler = _active_profiler()
        if profiler is None:
            for instr in self.forward_instrs:
                instr()
        else:
            for instr in self.forward_instrs:
                start = _perf_counter()
                instr()
                profiler._record_forward(instr, _perf_counter() - start)
        return self.loss

    def run_backward(self) -> None:
        if self._seed is None:
            raise RuntimeError(
                "this plan was compiled forward_only; it has no backward "
                "schedule")
        # Mirrors Tensor.backward's seed: a ones array accumulated into
        # the loss (borrowed, never mutated -> reusable across steps).
        self.loss._accumulate(self._seed)
        profiler = _active_profiler()
        if profiler is None:
            for instr in self.backward_instrs:
                instr()
        else:
            for instr in self.backward_instrs:
                start = _perf_counter()
                instr()
                profiler._record_backward(instr, _perf_counter() - start)

    def stats(self) -> dict:
        return {
            "instructions": self.n_forward + self.n_backward,
            "forward_instructions": self.n_forward,
            "backward_instructions": self.n_backward,
            "specialized": self.n_specialized,
            "generic": self.n_generic,
            "elided": self.n_elided,
            "fused_chains": self.n_fused_chains,
            "fused_ops": self.n_fused_ops,
            "scratch_nbytes": self.scratch_nbytes,
        }


# ----------------------------------------------------------------------
# the lowering pass
# ----------------------------------------------------------------------
def lower_tape(tape, forward_only: bool = False) -> Optional[LoweredPlan]:
    """Compile ``tape`` into a :class:`LoweredPlan`.

    Returns ``None`` (after emitting :class:`LoweringFallbackWarning`)
    when any entry cannot be lowered or run generically with confidence —
    the caller should keep using plain replay for this tape.

    With ``forward_only=True`` (inference tapes, whose root is the
    prediction rather than a scalar loss) no backward schedule is
    compiled: the plan runs forward instructions only and
    :meth:`LoweredPlan.run_backward` raises.
    """
    try:
        build = _compile_forward(tape)
        backward_instrs = [] if forward_only \
            else _compile_backward(tape, build)
    except LoweringUnsupported as exc:
        warnings.warn(
            f"tape lowering fell back to plain replay: {exc}",
            LoweringFallbackWarning, stacklevel=2)
        return None
    forward_instrs, chains, ops_fused = _fuse_elementwise(build.fwd)
    return LoweredPlan(tape, forward_instrs, backward_instrs, build,
                       chains, ops_fused)


def _compile_forward(tape) -> _Build:
    build = _Build(tape)
    for out, run, spec in tape.entries:
        kind = spec[0] if spec else None
        label = kind if kind is not None else _op_label(run)
        if label not in GENERIC_SAFE:
            raise LoweringUnsupported(f"op '{label}' is not known to the "
                                      "lowerer")
        rule = _RULES.get(kind) if spec is not None else None
        lowered = rule(build, out, run, spec) if rule is not None else None
        if lowered is None:
            build.fwd.append(_generic_forward(out, run, label))
            build.n_generic += 1
        elif lowered is _ELIDE:
            build.mark_stable(out)
            build.n_elided += 1
        else:
            instr, bwd_body, fuse = lowered
            instr.__qualname__ = label
            if fuse:
                instr._fuse = True
            build.fwd.append(instr)
            build.mark_stable(out)
            if bwd_body is not None:
                build.bwd_special[id(out)] = (bwd_body, label)
            build.n_specialized += 1
    return build


def _compile_backward(tape, build: _Build) -> List[Callable]:
    loss = tape.loss
    order = loss._topo_cache
    if order is None:
        order = loss._topo_order()
    instrs: List[Callable] = []
    for node in order:
        if node._backward is None:
            continue
        special = build.bwd_special.get(id(node))
        if special is None:
            instrs.append(_generic_backward(node))
        else:
            body, label = special
            instrs.append(_special_backward(node, body, label))
    return instrs
