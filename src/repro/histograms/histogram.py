"""Equi-width speed histograms (the paper's stochastic cost model).

A stochastic speed is a K-bucket equi-width histogram over speeds in m/s.
The paper uses 7 buckets ``[0,3), [3,6), ..., [15,18), [18,∞)`` — the
final bucket absorbs the open tail.  :class:`HistogramSpec` owns the
bucket edges; building, normalizing, and summarizing histograms lives
here, independent of the OD tensor machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HistogramSpec:
    """Bucket layout of stochastic speed histograms.

    Attributes
    ----------
    edges:
        Monotone bucket boundaries of length ``K+1``; ``edges[-1]`` may be
        ``inf`` (open last bucket).  Units are m/s.
    """

    edges: tuple

    def __post_init__(self):
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("edges must be a 1-D sequence of length >= 2")
        if not (np.diff(edges) > 0).all():
            raise ValueError("edges must be strictly increasing")
        object.__setattr__(self, "edges", tuple(float(e) for e in edges))

    @classmethod
    def paper_default(cls) -> "HistogramSpec":
        """The paper's 7 buckets: [0,3), [3,6), ..., [15,18), [18,inf)."""
        return cls(edges=(0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0, np.inf))

    @property
    def n_buckets(self) -> int:
        return len(self.edges) - 1

    @property
    def finite_edges(self) -> np.ndarray:
        """Edges with the open tail replaced by one extra bucket width."""
        edges = np.asarray(self.edges)
        if np.isinf(edges[-1]):
            width = edges[-2] - edges[-3] if len(edges) > 2 else 1.0
            edges = edges.copy()
            edges[-1] = edges[-2] + width
        return edges

    @property
    def centers(self) -> np.ndarray:
        """Representative speed per bucket (midpoints; open tail capped)."""
        edges = self.finite_edges
        return 0.5 * (edges[:-1] + edges[1:])

    def assign_bucket(self, speeds: np.ndarray) -> np.ndarray:
        """Bucket index per speed; out-of-range speeds clamp to the ends."""
        speeds = np.asarray(speeds, dtype=np.float64)
        idx = np.searchsorted(np.asarray(self.edges), speeds, side="right") - 1
        return np.clip(idx, 0, self.n_buckets - 1)

    def build(self, speeds: np.ndarray) -> np.ndarray:
        """Normalized histogram of the given speeds, shape ``(K,)``.

        Raises on empty input: an empty OD cell is represented by the
        all-zero vector at the tensor level, not by a histogram.
        """
        speeds = np.asarray(speeds, dtype=np.float64)
        if speeds.size == 0:
            raise ValueError("cannot build a histogram from zero speeds")
        counts = np.bincount(self.assign_bucket(speeds),
                             minlength=self.n_buckets).astype(np.float64)
        return counts / counts.sum()

    def mean_speed(self, histogram: np.ndarray) -> float:
        """Expected speed implied by a histogram (bucket midpoints)."""
        histogram = np.asarray(histogram, dtype=np.float64)
        return float((histogram * self.centers).sum())


def is_valid_histogram(histogram: np.ndarray, atol: float = 1e-6) -> bool:
    """True if non-negative and summing to 1 (within tolerance)."""
    histogram = np.asarray(histogram, dtype=np.float64)
    return bool((histogram >= -atol).all()
                and abs(histogram.sum() - 1.0) <= atol)


def normalize_histogram(raw: np.ndarray) -> np.ndarray:
    """Clip negatives and renormalize; zero vectors become uniform."""
    raw = np.clip(np.asarray(raw, dtype=np.float64), 0.0, None)
    total = raw.sum(axis=-1, keepdims=True)
    uniform = np.ones_like(raw) / raw.shape[-1]
    # Dividing by the true total (not a clamped one) keeps even denormal
    # inputs exactly normalized; zero totals take the uniform branch.
    safe_total = np.where(total > 0, total, 1.0)
    with np.errstate(invalid="ignore", over="ignore", under="ignore"):
        out = np.where(total > 0, raw / safe_total, uniform)
    return out


def rebin_histogram(histograms: np.ndarray, spec: HistogramSpec,
                    new_spec: HistogramSpec) -> np.ndarray:
    """Re-express histograms on a different bucket layout.

    Mass is redistributed assuming uniform density within each source
    bucket (open tails use the capped width from ``finite_edges``).
    Vectorized over leading axes: ``(..., K) -> (..., K')``.  Exact when
    the new edges are a coarsening of the old ones; an approximation
    otherwise.
    """
    histograms = np.asarray(histograms, dtype=np.float64)
    if histograms.shape[-1] != spec.n_buckets:
        raise ValueError(
            f"histograms have {histograms.shape[-1]} buckets, spec has "
            f"{spec.n_buckets}")
    old_edges = spec.finite_edges
    new_edges = new_spec.finite_edges
    # overlap[i, j] = |old bucket i ∩ new bucket j| / |old bucket i|
    old_lo, old_hi = old_edges[:-1], old_edges[1:]
    new_lo, new_hi = new_edges[:-1], new_edges[1:]
    inter_lo = np.maximum(old_lo[:, None], new_lo[None, :])
    inter_hi = np.minimum(old_hi[:, None], new_hi[None, :])
    overlap = np.clip(inter_hi - inter_lo, 0.0, None)
    widths = (old_hi - old_lo)[:, None]
    share = overlap / widths
    # Mass below/above the new range collapses into the end buckets.
    covered = share.sum(axis=1, keepdims=True)
    leftover = np.clip(1.0 - covered, 0.0, None)
    below = old_hi <= new_edges[0]
    above = old_lo >= new_edges[-1]
    share[below, 0] += leftover[below, 0]
    share[above, -1] += leftover[above, 0]
    return histograms @ share
