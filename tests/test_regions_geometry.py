"""Tests for planar geometry helpers."""

import numpy as np
import pytest

from repro.regions import (BoundingBox, euclidean, point_in_polygon,
                           polygon_area, polygon_centroid)


class TestBoundingBox:
    def test_properties(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4 and box.height == 3 and box.area == 12

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 3)
        with pytest.raises(ValueError):
            BoundingBox(2, 0, 1, 3)

    def test_contains(self):
        box = BoundingBox(0, 0, 2, 2)
        pts = np.array([[1, 1], [3, 1], [0, 0], [2, 2], [-0.1, 1]])
        assert list(box.contains(pts)) == [True, False, True, True, False]

    def test_sample_inside(self, rng):
        box = BoundingBox(1, 2, 3, 5)
        pts = box.sample(rng, 500)
        assert pts.shape == (500, 2)
        assert box.contains(pts).all()


class TestEuclidean:
    def test_known(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_broadcast(self, rng):
        a = rng.normal(size=(10, 2))
        d = euclidean(a, a)
        assert np.allclose(d, 0.0)


class TestPolygon:
    SQUARE = [(0, 0), (2, 0), (2, 2), (0, 2)]
    TRIANGLE = [(0, 0), (4, 0), (0, 3)]

    def test_area_ccw_positive(self):
        assert polygon_area(self.SQUARE) == pytest.approx(4.0)
        assert polygon_area(self.TRIANGLE) == pytest.approx(6.0)

    def test_area_cw_negative(self):
        assert polygon_area(self.SQUARE[::-1]) == pytest.approx(-4.0)

    def test_area_needs_three_vertices(self):
        with pytest.raises(ValueError):
            polygon_area([(0, 0), (1, 1)])

    def test_centroid_square(self):
        assert np.allclose(polygon_centroid(self.SQUARE), [1.0, 1.0])

    def test_centroid_triangle(self):
        assert np.allclose(polygon_centroid(self.TRIANGLE), [4 / 3, 1.0])

    def test_centroid_degenerate_falls_back_to_mean(self):
        line = [(0, 0), (1, 0), (2, 0)]
        assert np.allclose(polygon_centroid(line), [1.0, 0.0])

    def test_point_in_polygon(self):
        assert point_in_polygon([1, 1], self.SQUARE)
        assert not point_in_polygon([3, 1], self.SQUARE)
        assert point_in_polygon([0.5, 0.5], self.TRIANGLE)
        assert not point_in_polygon([3, 2], self.TRIANGLE)

    def test_point_in_concave_polygon(self):
        concave = [(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)]
        assert point_in_polygon([1, 0.5], concave)
        assert not point_in_polygon([2, 3], concave)
