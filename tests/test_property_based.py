"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, ops
from repro.graph import (coarsen_adjacency, coarsen_graph,
                         heavy_edge_matching, laplacian, scaled_laplacian)
from repro.histograms import HistogramSpec, normalize_histogram
from repro.metrics import emd, js_divergence, kl_divergence

finite_floats = st.floats(min_value=-50, max_value=50,
                          allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-3, max_value=50,
                            allow_nan=False, allow_infinity=False)


def histograms(k=7):
    return arrays(np.float64, (k,),
                  elements=st.floats(min_value=1e-6, max_value=1.0)
                  ).map(lambda raw: raw / raw.sum())


@st.composite
def symmetric_adjacency(draw, max_n=10):
    n = draw(st.integers(min_value=2, max_value=max_n))
    raw = draw(arrays(np.float64, (n, n),
                      elements=st.floats(min_value=0, max_value=5)))
    sym = np.triu(raw, k=1)
    return sym + sym.T


class TestMetricProperties:
    @given(histograms())
    def test_metrics_zero_on_identity(self, m):
        assert abs(kl_divergence(m, m)) < 1e-9
        assert abs(js_divergence(m, m)) < 1e-9
        assert abs(emd(m, m)) < 1e-9

    @given(histograms(), histograms())
    def test_js_symmetric_nonneg_bounded(self, m, m_hat):
        a = js_divergence(m, m_hat)
        b = js_divergence(m_hat, m)
        assert abs(a - b) < 1e-9
        assert a >= -1e-12
        assert a <= np.log(2) + 1e-6

    @given(histograms(), histograms())
    def test_emd_symmetric_nonneg(self, m, m_hat):
        assert abs(emd(m, m_hat) - emd(m_hat, m)) < 1e-9
        assert emd(m, m_hat) >= -1e-12

    @given(histograms(), histograms(), histograms())
    def test_emd_triangle_inequality(self, a, b, c):
        assert emd(a, c) <= emd(a, b) + emd(b, c) + 1e-9

    @given(histograms(), histograms())
    def test_emd_bounded_by_k_minus_one(self, m, m_hat):
        assert emd(m, m_hat) <= (len(m) - 1) + 1e-9


class TestHistogramProperties:
    @given(arrays(np.float64, array_shapes(min_dims=1, max_dims=3,
                                           min_side=1, max_side=6),
                  elements=st.floats(min_value=-2, max_value=5,
                                     allow_nan=False)))
    def test_normalize_always_valid(self, raw):
        out = normalize_histogram(raw)
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    @given(arrays(np.float64, (50,),
                  elements=st.floats(min_value=0, max_value=40,
                                     allow_nan=False)))
    def test_build_histogram_valid(self, speeds):
        hist = HistogramSpec.paper_default().build(speeds)
        assert abs(hist.sum() - 1.0) < 1e-9
        assert (hist >= 0).all()

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_bucket_assignment_in_range(self, speed):
        spec = HistogramSpec.paper_default()
        bucket = spec.assign_bucket(np.array([speed]))[0]
        assert 0 <= bucket < spec.n_buckets
        # the speed actually falls in the assigned bucket's range
        lo = spec.edges[bucket]
        hi = spec.edges[bucket + 1]
        assert lo <= speed < hi or (bucket == spec.n_buckets - 1
                                    and speed >= lo)


class TestAutodiffProperties:
    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (3, 4), elements=finite_floats),
           arrays(np.float64, (3, 4), elements=finite_floats))
    def test_addition_gradient_is_ones(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (2, 5), elements=finite_floats))
    def test_softmax_rows_valid(self, data):
        out = ops.softmax(Tensor(data), axis=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (4, 3), elements=finite_floats))
    def test_mul_grad_matches_other_operand(self, data):
        a = Tensor(data, requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (6, 2), elements=finite_floats))
    def test_mean_pool_preserves_mean(self, data):
        pooled = ops.mean_pool_axis(Tensor(data), 0, 2).numpy()
        assert np.allclose(pooled.mean(axis=0), data.mean(axis=0))


class TestGraphProperties:
    @settings(max_examples=30, deadline=None)
    @given(symmetric_adjacency())
    def test_matching_is_partition(self, weights):
        cluster = heavy_edge_matching(weights)
        assert len(cluster) == len(weights)
        assert (cluster >= 0).all()
        _, counts = np.unique(cluster, return_counts=True)
        assert counts.max() <= 2

    @settings(max_examples=30, deadline=None)
    @given(symmetric_adjacency())
    def test_coarsening_conserves_cross_weights(self, weights):
        cluster = heavy_edge_matching(weights)
        coarse = coarsen_adjacency(weights, cluster)
        assert np.allclose(coarse, coarse.T)
        # Total coarse weight <= total fine weight (intra-cluster edges
        # collapse onto the dropped diagonal).
        assert coarse.sum() <= weights.sum() + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(symmetric_adjacency(max_n=8))
    def test_laplacian_psd(self, weights):
        eigenvalues = np.linalg.eigvalsh(laplacian(weights))
        assert eigenvalues.min() > -1e-8

    @settings(max_examples=20, deadline=None)
    @given(symmetric_adjacency(max_n=8))
    def test_scaled_laplacian_spectrum(self, weights):
        eigenvalues = np.linalg.eigvalsh(scaled_laplacian(weights))
        assert eigenvalues.max() <= 1.0 + 1e-8
        assert eigenvalues.min() >= -1.0 - 1e-8

    @settings(max_examples=15, deadline=None)
    @given(symmetric_adjacency(max_n=8),
           st.integers(min_value=1, max_value=2))
    def test_coarsen_graph_perm_covers_real_nodes(self, weights, levels):
        c = coarsen_graph(weights, levels)
        real = sorted(p for p in c.perm if p < len(weights))
        assert real == list(range(len(weights)))
        assert c.padded_size(0) % (2 ** levels) == 0
