"""Masked forecast evaluation: the paper's DisSim aggregation (Eq. 12).

Forecasts are judged only on OD cells observed in the ground truth
(indication tensor Ω), separately per forecast step ``k``.  The module
also provides the groupings behind the paper's figures: by time-of-day
block (Figs. 8–10) and by OD centroid distance (Figs. 11–13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .divergence import METRICS


@dataclass
class EvaluationResult:
    """Per-step metric values.

    Attributes
    ----------
    per_step:
        ``{metric: array of length h}`` — mean metric over observed cells
        for each forecast step (1-based step ``k`` is index ``k-1``).
    n_cells:
        Observed-cell count per step used in the averages.
    """

    per_step: Dict[str, np.ndarray]
    n_cells: np.ndarray

    def overall(self, metric: str) -> float:
        """Cell-weighted mean of a metric across all steps."""
        values = self.per_step[metric]
        weights = self.n_cells
        return float((values * weights).sum() / max(weights.sum(), 1))


def _check_shapes(truth, prediction, mask):
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if truth.shape != prediction.shape:
        raise ValueError(
            f"truth {truth.shape} and prediction {prediction.shape} differ")
    if mask.shape != truth.shape[:-1]:
        raise ValueError(
            f"mask {mask.shape} must match cell axes {truth.shape[:-1]}")
    return truth, prediction, mask


def evaluate_forecasts(truth: np.ndarray, prediction: np.ndarray,
                       mask: np.ndarray,
                       metrics: Sequence[str] = ("kl", "js", "emd")
                       ) -> EvaluationResult:
    """DisSim over a batch of forecasts.

    Parameters
    ----------
    truth, prediction:
        ``(B, h, N, N', K)`` tensors (or any shape whose axis 1 is the
        forecast step and whose last axis is buckets).
    mask:
        ``(B, h, N, N')`` indication tensors.
    metrics:
        Names from :data:`repro.metrics.divergence.METRICS`.
    """
    truth, prediction, mask = _check_shapes(truth, prediction, mask)
    h = truth.shape[1]
    per_step: Dict[str, np.ndarray] = {name: np.zeros(h) for name in metrics}
    n_cells = np.zeros(h)
    for k in range(h):
        cell_mask = mask[:, k]
        n = int(cell_mask.sum())
        n_cells[k] = n
        if n == 0:
            continue
        t_cells = truth[:, k][cell_mask]
        p_cells = prediction[:, k][cell_mask]
        for name in metrics:
            per_step[name][k] = float(METRICS[name](t_cells, p_cells).mean())
    return EvaluationResult(per_step=per_step, n_cells=n_cells)


def grouped_metric(truth: np.ndarray, prediction: np.ndarray,
                   mask: np.ndarray, groups: np.ndarray,
                   n_groups: int, metric: str = "emd",
                   cell_groups: bool = False) -> Dict[str, np.ndarray]:
    """Mean metric per group plus the data share per group.

    ``groups`` assigns a group id to every *sample* (e.g. the time-of-day
    block of each window, shape ``(B, h)``) or, with ``cell_groups=True``,
    to every OD cell (e.g. the distance band, shape ``(N, N')``).
    Returns ``{"value": (n_groups,), "share": (n_groups,)}``; groups with
    no observed cells hold NaN values and zero share.
    """
    truth, prediction, mask = _check_shapes(truth, prediction, mask)
    fn = METRICS[metric]
    values = fn(truth, prediction)          # (B, h, N, N')
    sums = np.zeros(n_groups)
    counts = np.zeros(n_groups)
    if cell_groups:
        groups = np.asarray(groups)
        if groups.shape != truth.shape[2:4]:
            raise ValueError("cell_groups expects groups of shape (N, N')")
        flat_groups = np.broadcast_to(groups, values.shape)
    else:
        groups = np.asarray(groups)
        if groups.shape != truth.shape[:2]:
            raise ValueError("sample groups must have shape (B, h)")
        flat_groups = np.broadcast_to(groups[:, :, None, None], values.shape)
    valid = mask & (flat_groups >= 0)
    np.add.at(sums, flat_groups[valid], values[valid])
    np.add.at(counts, flat_groups[valid], 1.0)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    total = counts.sum()
    share = counts / total if total > 0 else counts
    return {"value": means, "share": share}


def time_of_day_groups(interval_indices: np.ndarray,
                       intervals_per_day: int,
                       hours_per_block: int = 3) -> np.ndarray:
    """Map absolute interval indices to time-of-day blocks.

    Block ``b`` covers hours ``[b*hours_per_block, (b+1)*hours_per_block)``
    — the 3-hour aggregation of the paper's Figures 8–10.
    """
    interval_indices = np.asarray(interval_indices)
    within_day = interval_indices % intervals_per_day
    hours = within_day * (24.0 / intervals_per_day)
    return (hours // hours_per_block).astype(np.int64)


def distance_groups(distances_km: np.ndarray,
                    edges_km: Optional[Sequence[float]] = None) -> np.ndarray:
    """Map OD centroid distances to distance bands.

    Default bands follow the paper's Figures 11–13: six 0.5 km groups up
    to 3 km; pairs beyond the last edge get group ``-1`` (excluded, as the
    paper drops the <1 % of data beyond 3 km).
    """
    if edges_km is None:
        edges_km = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    edges = np.asarray(edges_km, dtype=np.float64)
    distances_km = np.asarray(distances_km, dtype=np.float64)
    group = np.searchsorted(edges, distances_km, side="right") - 1
    group[(distances_km < edges[0]) | (distances_km > edges[-1])] = -1
    group[group == len(edges) - 1] = -1
    return group.astype(np.int64)
