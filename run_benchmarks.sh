#!/usr/bin/env bash
# Full benchmark sweep: regenerates every table and figure of the paper
# and records the output.  Takes ~1 hour on one CPU core.
#
#   ./run_benchmarks.sh            # full scale
#   REPRO_BENCH_SCALE=smoke ./run_benchmarks.sh   # 2-minute plumbing check
set -uo pipefail
cd "$(dirname "$0")"
python3 -m pytest benchmarks/ --benchmark-only -p no:cacheprovider -s -q \
    2>&1 | tee bench_output.txt
