#!/usr/bin/env python3
"""Tape-lowering regression gate for run_benchmarks.sh.

Three checks, all at smoke scale (see docs/EXECUTION.md):

1. **Parity** — 5 training steps of BF and AF (dropout on) through the
   lowered plan must produce bit-for-bit the same losses and final
   weights as the eager engine.  The plan rewrites every recorded op
   onto preallocated arena buffers and precomputes the backward
   schedule, so any divergence means an instruction no longer performs
   eager's exact arithmetic — the failure mode that would silently
   corrupt checkpoints and kill-and-resume determinism.
2. **Coverage** — both tapes must actually compile (no
   ``LoweringFallbackWarning`` fallbacks); a silent fall-back to plain
   replay would pass parity while benchmarking the wrong engine.
3. **Speedup** — the lowered AF train step must be at least 1.05x
   faster than plain tape replay (interleaved best-of-N, same seed),
   the margin BENCH_AUTODIFF.json records.  The step is dominated by
   BLAS/ufunc kernel time on this substrate (see docs/EXECUTION.md), so
   the honest win over replay is modest; the gate asserts the plan
   never costs more than the thunk walk it replaces.

Exits non-zero on any failure so the benchmark sweep fails loudly.

Usage: PYTHONPATH=src python3 benchmarks/lowered_smoke.py
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.autodiff import ReplayEngine, set_default_dtype
from repro.autodiff.optim import Adam
from repro.core import (AdvancedFramework, BasicFramework, af_loss, bf_loss)

STEPS = 5
REPEATS = 20
MIN_AF_SPEEDUP_VS_REPLAY = 1.05


def _proximity(n, rng):
    w = rng.uniform(0.1, 1.0, size=(n, n))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


def _bf_parts(seed=0):
    rng = np.random.default_rng(seed)
    model = BasicFramework(8, 8, 7, np.random.default_rng(7), rank=3,
                           encoder_dim=8, hidden_dim=16, dropout=0.2)
    batch = (rng.uniform(size=(8, 4, 8, 8, 7)),
             rng.uniform(size=(8, 2, 8, 8, 7)),
             (rng.uniform(size=(8, 2, 8, 8)) < 0.4).astype(float))
    return model, bf_loss, batch, 2


def _af_parts(seed=0):
    rng = np.random.default_rng(seed)
    w = _proximity(8, rng)
    model = AdvancedFramework(w, w, 7, np.random.default_rng(7), rank=4,
                              rnn_hidden=8, rnn_order=2, dropout=0.2)

    def loss_fn(prediction, truth, mask, r, c):
        return af_loss(prediction, truth, mask, r, c, w, w)

    batch = (rng.uniform(size=(8, 4, 8, 8, 7)),
             rng.uniform(size=(8, 2, 8, 8, 7)),
             (rng.uniform(size=(8, 2, 8, 8)) < 0.4).astype(float))
    return model, loss_fn, batch, 2


def _run_steps(parts_fn, engine_mode, steps=STEPS):
    """Losses, final weights, and engine stats of ``steps`` steps."""
    model, loss_fn, (history, truth, mask), horizon = parts_fn()
    if engine_mode == "eager":
        optimizer = Adam(model.parameters())
        engine = None
    else:
        optimizer = Adam(model.parameters(), flat=True)
        engine = ReplayEngine(model, loss_fn,
                              lower=(engine_mode == "lowered"))
    losses = []
    for _ in range(steps):
        if engine is not None:
            loss = engine.forward(history, truth, mask, horizon)
            optimizer.zero_grad()
            engine.backward(loss)
        else:
            prediction, r, c = model(history, horizon)
            loss = loss_fn(prediction, truth, mask, r, c)
            optimizer.zero_grad()
            loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    weights = {k: v.copy() for k, v in model.state_dict().items()}
    stats = engine.stats() if engine is not None else {}
    return losses, weights, stats


def check_parity_and_coverage(name, parts_fn):
    eager_losses, eager_weights, _ = _run_steps(parts_fn, "eager")
    lowered_losses, lowered_weights, stats = _run_steps(parts_fn, "lowered")
    failures = []
    if eager_losses != lowered_losses:
        failures.append(f"{name} losses diverge: "
                        f"{eager_losses} vs {lowered_losses}")
    bad = [k for k in eager_weights
           if not np.array_equal(eager_weights[k], lowered_weights[k])]
    if bad:
        failures.append(f"{name} weights diverge after {STEPS} steps: "
                        f"{bad[:4]}")
    if stats.get("plan_fallbacks"):
        failures.append(f"{name} tape fell back to plain replay "
                        f"({stats['plan_fallbacks']} fallbacks)")
    if not stats.get("lowered_steps"):
        failures.append(f"{name} never ran a lowered step: {stats}")
    return failures


def check_af_speedup():
    """Interleaved best-of-REPEATS replay vs lowered AF step times."""
    steps = {}
    for mode in ("replay", "lowered"):
        model, loss_fn, (history, truth, mask), horizon = _af_parts()
        optimizer = Adam(model.parameters(), flat=True)
        engine = ReplayEngine(model, loss_fn, lower=(mode == "lowered"))

        def step(engine=engine, optimizer=optimizer):
            loss = engine.forward(history, truth, mask, horizon)
            optimizer.zero_grad()
            engine.backward(loss)
            optimizer.step()

        step()                                      # capture
        step()                                      # replay / lower+run
        step()                                      # steady state
        steps[mode] = step
    best = {"replay": float("inf"), "lowered": float("inf")}
    for _ in range(REPEATS):
        for mode in ("replay", "lowered"):
            start = time.perf_counter()
            steps[mode]()
            best[mode] = min(best[mode], time.perf_counter() - start)
    return best["replay"] / best["lowered"], best["replay"], best["lowered"]


def main() -> int:
    set_default_dtype(np.float32)
    failures = []
    failures += check_parity_and_coverage("bf", _bf_parts)
    failures += check_parity_and_coverage("af", _af_parts)
    speedup, replay_s, lowered_s = check_af_speedup()
    if speedup < MIN_AF_SPEEDUP_VS_REPLAY:
        failures.append(
            f"af lowered step only {speedup:.2f}x vs replay "
            f"({lowered_s * 1e3:.2f} vs {replay_s * 1e3:.2f} ms), "
            f"need >= {MIN_AF_SPEEDUP_VS_REPLAY}x")
    if failures:
        print(f"lowered smoke: FAIL ({'; '.join(failures)})")
        return 1
    print(f"lowered smoke: OK (bf+af bit-for-bit over {STEPS} steps, "
          f"no fallbacks, af lowered {speedup:.2f}x vs replay, "
          f"{lowered_s * 1e3:.2f} vs {replay_s * 1e3:.2f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
