"""Tests for NH, GP, and VAR baselines."""

import numpy as np
import pytest

from repro.baselines import (GaussianProcessForecaster, NaiveHistogram,
                             VARForecaster, rbf_kernel,
                             training_interval_range)


class TestTrainingIntervalRange:
    def test_no_future_leakage(self, windows, split):
        end = training_interval_range(windows, split)
        last_train_target = split.train.max() + windows.s + windows.h
        assert end == last_train_target
        first_test_history = split.test.min()
        # All test *histories* start at or after the val boundary.
        assert first_test_history >= split.val.max()


class TestNaiveHistogram:
    def test_predicts_valid_histograms(self, windows, split):
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=2)
        pred = nh.predict(windows, split.test[:5], horizon=2)
        assert pred.shape[0] == 5 and pred.shape[1] == 2
        assert np.allclose(pred.sum(-1), 1.0)

    def test_constant_across_steps_and_windows(self, windows, split):
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=2)
        pred = nh.predict(windows, split.test[:3], horizon=2)
        assert np.allclose(pred[0, 0], pred[2, 1])

    def test_matches_pooled_training_histogram(self, windows, split):
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=2)
        seq = windows.sequence
        end = training_interval_range(windows, split)
        counts = seq.counts[:end]
        t, o, d = np.unravel_index(np.argmax(counts), counts.shape)
        weighted = (seq.tensors[:end, o, d]
                    * counts[:, o, d][:, None]).sum(0)
        expected = weighted / counts[:, o, d].sum()
        assert np.allclose(nh._table[o, d], expected)

    def test_unobserved_pairs_get_global_fallback(self, windows, split):
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=1)
        assert np.allclose(nh._table.sum(-1), 1.0)

    def test_predict_before_fit_raises(self, windows, split):
        with pytest.raises(RuntimeError):
            NaiveHistogram().predict(windows, split.test[:1], 1)


class TestGaussianProcess:
    def test_rbf_kernel_properties(self):
        grid = np.arange(5.0)
        k = rbf_kernel(grid, grid, length_scale=1.5)
        assert np.allclose(np.diag(k), 1.0)
        assert np.allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-10

    def test_predictions_valid(self, windows, split):
        gp = GaussianProcessForecaster()
        gp.fit(windows, split, horizon=2)
        pred = gp.predict(windows, split.test[:4], horizon=2)
        assert pred.shape[0] == 4
        assert np.allclose(pred.sum(-1), 1.0)
        assert (pred >= 0).all()

    def test_reverts_to_prior_far_ahead(self, windows, split):
        """With a short length scale, long-horizon forecasts approach the
        prior (NH) prediction."""
        gp = GaussianProcessForecaster(length_scale=0.5)
        gp.fit(windows, split, horizon=2)
        pred = gp.predict(windows, split.test[:2], horizon=2)
        prior = gp._prior._table
        gap_step2 = np.abs(pred[:, 1] - prior[None]).mean()
        assert gap_step2 < 0.05

    def test_predict_before_fit_raises(self, windows, split):
        with pytest.raises(RuntimeError):
            GaussianProcessForecaster().predict(windows, split.test[:1], 1)


class TestVAR:
    def test_predictions_valid(self, windows, split):
        var = VARForecaster(lag=2, n_components=15)
        var.fit(windows, split, horizon=2)
        pred = var.predict(windows, split.test[:4], horizon=2)
        assert pred.shape[0] == 4
        assert np.allclose(pred.sum(-1), 1.0)
        assert (pred >= 0).all()

    def test_latent_dimension_capped(self, windows, split):
        var = VARForecaster(lag=2, n_components=10_000)
        var.fit(windows, split, horizon=1)
        assert var._basis.shape[1] < 10_000

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            VARForecaster(lag=0)

    def test_lag_longer_than_history_padded(self, windows, split):
        var = VARForecaster(lag=5, n_components=10)  # s == 3 < lag
        var.fit(windows, split, horizon=1)
        pred = var.predict(windows, split.test[:2], horizon=1)
        assert np.allclose(pred.sum(-1), 1.0)

    def test_captures_linear_dynamics_better_than_nh(self, windows, split):
        """On our temporally-correlated data VAR should not be much worse
        than NH (both valid); mostly a smoke check of the pipeline."""
        from repro.metrics import evaluate_forecasts
        _, truth, masks = windows.gather(split.test[:20])
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=2)
        var = VARForecaster(lag=2, n_components=20)
        var.fit(windows, split, horizon=2)
        nh_e = evaluate_forecasts(
            truth, nh.predict(windows, split.test[:20], 2), masks)
        var_e = evaluate_forecasts(
            truth, var.predict(windows, split.test[:20], 2), masks)
        assert var_e.overall("emd") < nh_e.overall("emd") * 1.2


class TestGPHorizonHandling:
    def test_shorter_horizon_allowed(self, windows, split):
        gp = GaussianProcessForecaster()
        gp.fit(windows, split, horizon=2)
        pred = gp.predict(windows, split.test[:2], horizon=1)
        assert pred.shape[1] == 1

    def test_longer_horizon_rejected(self, windows, split):
        gp = GaussianProcessForecaster()
        gp.fit(windows, split, horizon=2)
        with pytest.raises(ValueError):
            gp.predict(windows, split.test[:2], horizon=3)
