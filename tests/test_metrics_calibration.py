"""Tests for probabilistic scoring: RPS, calibration, sharpness."""

import numpy as np
import pytest

from repro.histograms import HistogramSpec
from repro.metrics.calibration import (expected_calibration_error,
                                       histogram_entropy,
                                       ranked_probability_score, sharpness,
                                       trip_outcomes)


class TestEntropy:
    def test_one_hot_zero_entropy(self):
        assert histogram_entropy(np.array([0.0, 1.0, 0.0])) \
            == pytest.approx(0.0)

    def test_uniform_max_entropy(self):
        k = 5
        uniform = np.full(k, 1.0 / k)
        assert histogram_entropy(uniform) == pytest.approx(np.log(k))

    def test_sharpness_orders_forecasts(self, rng):
        sharp = np.zeros((10, 4))
        sharp[:, 1] = 1.0
        blunt = np.full((10, 4), 0.25)
        assert sharpness(sharp) < sharpness(blunt)


class TestRPS:
    def test_perfect_forecast_zero(self):
        prediction = np.array([0.0, 1.0, 0.0, 0.0])
        assert ranked_probability_score(prediction, np.array(1)) \
            == pytest.approx(0.0)

    def test_near_miss_cheaper_than_far_miss(self):
        prediction = np.array([0.0, 1.0, 0.0, 0.0])
        near = ranked_probability_score(prediction, np.array(2))
        far = ranked_probability_score(prediction, np.array(3))
        assert near < far

    def test_propriety(self, rng):
        """The true distribution minimizes expected RPS (proper score)."""
        truth = np.array([0.1, 0.5, 0.3, 0.1])
        outcomes = rng.choice(4, size=30_000, p=truth)
        honest = ranked_probability_score(
            np.broadcast_to(truth, (len(outcomes), 4)), outcomes).mean()
        for _ in range(5):
            other = rng.dirichlet(np.ones(4))
            dishonest = ranked_probability_score(
                np.broadcast_to(other, (len(outcomes), 4)),
                outcomes).mean()
            assert honest <= dishonest + 1e-3

    def test_invalid_outcome_rejected(self):
        with pytest.raises(ValueError):
            ranked_probability_score(np.array([0.5, 0.5]), np.array(2))

    def test_vectorized_shapes(self, rng):
        predictions = rng.dirichlet(np.ones(5), size=(3, 4))
        outcomes = rng.integers(0, 5, size=(3, 4))
        assert ranked_probability_score(predictions, outcomes).shape \
            == (3, 4)


class TestECE:
    def test_perfectly_calibrated_low_ece(self, rng):
        truth = np.array([0.2, 0.5, 0.3])
        outcomes = rng.choice(3, size=60_000, p=truth)
        predictions = np.broadcast_to(truth, (len(outcomes), 3))
        ece, conf, freq = expected_calibration_error(predictions, outcomes)
        assert ece < 0.02

    def test_overconfident_high_ece(self, rng):
        truth = np.array([0.5, 0.5])
        outcomes = rng.choice(2, size=20_000, p=truth)
        overconfident = np.tile([0.95, 0.05], (len(outcomes), 1))
        ece, _, _ = expected_calibration_error(overconfident, outcomes)
        assert ece > 0.2

    def test_curves_shape(self, rng):
        predictions = rng.dirichlet(np.ones(4), size=100)
        outcomes = rng.integers(0, 4, size=100)
        ece, conf, freq = expected_calibration_error(predictions,
                                                     outcomes, n_bins=5)
        assert conf.shape == (5,) and freq.shape == (5,)
        assert 0 <= ece <= 1


class TestTripOutcomes:
    def test_alignment_with_tensor_builder(self, dataset, sequence):
        interval, origin, dest, bucket = trip_outcomes(
            dataset.trips, dataset.city, sequence.spec)
        assert len(interval) == len(dataset.trips)
        # Every in-range trip's cell must be observed in the sequence.
        ok = interval < sequence.n_intervals
        assert sequence.mask[interval[ok], origin[ok], dest[ok]].all()
        assert (bucket >= 0).all()
        assert (bucket < sequence.spec.n_buckets).all()

    def test_scoring_truth_beats_uniform(self, dataset, sequence):
        """Scoring the empirical tensors by RPS: the per-cell empirical
        histogram must beat the uniform forecast on its own trips."""
        interval, origin, dest, bucket = trip_outcomes(
            dataset.trips, dataset.city, sequence.spec)
        ok = interval < sequence.n_intervals
        predictions = sequence.tensors[interval[ok], origin[ok], dest[ok]]
        empirical = ranked_probability_score(predictions,
                                             bucket[ok]).mean()
        k = sequence.spec.n_buckets
        uniform = ranked_probability_score(
            np.full_like(predictions, 1.0 / k), bucket[ok]).mean()
        assert empirical < uniform
