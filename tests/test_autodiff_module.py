"""Tests for Module/Parameter infrastructure."""

import numpy as np
import pytest

from repro.autodiff import Linear, Module, Parameter, Sequential, Tensor


class _Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.layer1 = Linear(3, 4, rng)
        self.layer2 = Linear(4, 2, rng)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.layer2(self.layer1(x)) * self.scale


@pytest.fixture
def net(rng):
    return _Net(rng)


class TestParameters:
    def test_named_parameters_recursive(self, net):
        names = dict(net.named_parameters())
        assert "layer1.weight" in names
        assert "layer2.bias" in names
        assert "scale" in names
        assert len(names) == 5

    def test_parameters_in_lists_found(self, rng):
        class ListNet(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2, rng), Linear(2, 2, rng)]

            def forward(self, x):
                return x

        names = dict(ListNet().named_parameters())
        assert "blocks.0.weight" in names and "blocks.1.bias" in names

    def test_num_parameters(self, net):
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 2

    def test_zero_grad(self, net, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        (net(x) ** 2).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestModes:
    def test_train_eval_propagate(self, net):
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_modules_in_lists(self, rng):
        seq = Sequential(Linear(2, 2, rng), Linear(2, 2, rng))
        assert len(list(seq.modules())) == 3

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_round_trip(self, net, rng):
        state = net.state_dict()
        x = Tensor(rng.normal(size=(4, 3)))
        before = net(x).data.copy()
        for p in net.parameters():
            p.data += 1.0
        assert not np.allclose(net(x).data, before)
        net.load_state_dict(state)
        assert np.allclose(net(x).data, before)

    def test_state_dict_is_copy(self, net):
        state = net.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(net.scale.data, 99.0)

    def test_missing_key_raises(self, net):
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self, net):
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, net):
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)
