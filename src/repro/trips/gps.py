"""GPS-record simulation and trip extraction (the Chengdu pipeline).

The Chengdu data set is not a trip table but 1.4 billion raw GPS records
``(taxi_id, latitude, longitude, occupied, timestamp)``; the paper derives
trips from maximal occupied runs of each taxi's record sequence.  We
reproduce that ingestion path: :class:`GpsSimulator` emits records for a
fleet of taxis serving generated trips, and :func:`extract_trips` recovers
the trip table from the raw records, accumulating distance along the
actual trace (so extracted distances include the detour, like the paper's
odometer-style totals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trip import TripTable


@dataclass
class GpsRecords:
    """Columnar GPS records: one row per ping."""

    taxi_id: np.ndarray       # (n,) int
    xy: np.ndarray            # (n, 2) km
    occupied: np.ndarray      # (n,) bool
    timestamp_min: np.ndarray  # (n,) minutes since epoch

    def __post_init__(self):
        n = len(self.taxi_id)
        if not (len(self.xy) == len(self.occupied)
                == len(self.timestamp_min) == n):
            raise ValueError("GPS record columns have inconsistent lengths")

    def __len__(self) -> int:
        return len(self.taxi_id)


class GpsSimulator:
    """Emit GPS traces for taxis executing a set of trips.

    Each trip is dispatched to the taxi that has been free the longest
    (so a taxi never serves two overlapping rides, as in reality).  While
    occupied, the taxi moves along a slightly wobbly straight line from
    origin to destination at the trip's average speed, pinging every
    ``ping_seconds``.  Between trips the taxi is idle (no pings emitted,
    like many real feeds where vacant cruising is filtered out upstream).
    """

    def __init__(self, n_taxis: int = 50, ping_seconds: float = 30.0,
                 seed: int = 0):
        if n_taxis < 1:
            raise ValueError("need at least one taxi")
        self.n_taxis = n_taxis
        self.ping_seconds = ping_seconds
        self._rng = np.random.default_rng(seed)

    def simulate(self, trips: TripTable) -> GpsRecords:
        order = np.argsort(trips.departure_min, kind="stable")
        taxi_ids, xys, occupied, stamps = [], [], [], []
        ping_min = self.ping_seconds / 60.0
        free_at = np.full(self.n_taxis, -np.inf)
        for trip_index in order:
            # Dispatch to the longest-idle taxi; ties by lowest id.
            taxi = int(np.argmin(free_at))
            free_at[taxi] = (trips.departure_min[trip_index]
                             + trips.duration_min[trip_index])
            start = trips.departure_min[trip_index]
            duration = trips.duration_min[trip_index]
            o = trips.origin_xy[trip_index]
            d = trips.dest_xy[trip_index]
            n_pings = max(int(duration / ping_min) + 1, 2)
            fractions = np.linspace(0.0, 1.0, n_pings)
            points = o[None, :] + fractions[:, None] * (d - o)[None, :]
            # Lateral wobble to mimic road geometry; endpoints exact.
            wobble = self._rng.normal(0.0, 0.02, size=(n_pings, 2))
            wobble[0] = wobble[-1] = 0.0
            points = points + wobble
            times = start + fractions * duration
            taxi_ids.append(np.full(n_pings, taxi, dtype=np.int64))
            xys.append(points)
            occupied.append(np.ones(n_pings, dtype=bool))
            stamps.append(times)
        if not taxi_ids:
            return GpsRecords(np.empty(0, dtype=np.int64),
                              np.empty((0, 2)), np.empty(0, dtype=bool),
                              np.empty(0))
        return GpsRecords(np.concatenate(taxi_ids), np.concatenate(xys),
                          np.concatenate(occupied), np.concatenate(stamps))


def extract_trips(records: GpsRecords,
                  min_pings: int = 2,
                  max_gap_min: float = 3.0,
                  max_segment_speed_ms: float = 40.0) -> TripTable:
    """Recover trips from GPS records as maximal occupied runs per taxi.

    A run breaks when the taxi id changes, the occupied flag drops,
    consecutive pings are more than ``max_gap_min`` apart, or a segment
    implies a physically implausible speed (a "teleport" — typically two
    back-to-back rides whose gap fell under the threshold).  Distance is
    accumulated along the trace.
    """
    if len(records) == 0:
        return TripTable.empty()
    order = np.lexsort((records.timestamp_min, records.taxi_id))
    taxi = records.taxi_id[order]
    xy = records.xy[order]
    occupied = records.occupied[order]
    stamp = records.timestamp_min[order]

    origins, dests, departures, distances, durations = [], [], [], [], []
    run_start = None
    run_length = 0
    run_distance = 0.0
    for i in range(len(taxi)):
        if run_start is not None and i > 0:
            seg_km = float(np.sqrt(((xy[i] - xy[i - 1]) ** 2).sum()))
            seg_min = max(float(stamp[i] - stamp[i - 1]), 1e-9)
            teleport = seg_km * 1000.0 / (seg_min * 60.0) \
                > max_segment_speed_ms
        else:
            teleport = False
        new_run = (not occupied[i]
                   or run_start is None
                   or taxi[i] != taxi[run_start]
                   or stamp[i] - stamp[i - 1] > max_gap_min
                   or teleport)
        if new_run:
            _flush_run(run_start, i - 1, run_length, run_distance,
                       xy, stamp, min_pings,
                       origins, dests, departures, distances, durations)
            run_start = i if occupied[i] else None
            run_length = 1 if occupied[i] else 0
            run_distance = 0.0
        else:
            run_distance += float(np.sqrt(
                ((xy[i] - xy[i - 1]) ** 2).sum()))
            run_length += 1
    _flush_run(run_start, len(taxi) - 1, run_length, run_distance,
               xy, stamp, min_pings,
               origins, dests, departures, distances, durations)

    if not origins:
        return TripTable.empty()
    return TripTable(np.asarray(origins), np.asarray(dests),
                     np.asarray(departures), np.asarray(distances),
                     np.asarray(durations))


def _flush_run(start, end, length, distance, xy, stamp, min_pings,
               origins, dests, departures, distances, durations) -> None:
    """Append the finished occupied run [start, end] if it is a valid trip."""
    if start is None or length < min_pings:
        return
    duration = float(stamp[end] - stamp[start])
    if duration <= 0 or distance <= 0:
        return
    origins.append(xy[start])
    dests.append(xy[end])
    departures.append(float(stamp[start]))
    distances.append(distance)
    durations.append(duration)
