#!/usr/bin/env python3
"""Sweep the proximity-matrix parameters α and σ (paper Figure 14).

The advanced framework's spatial machinery rests on the thresholded
Gaussian proximity matrix.  The paper reports the framework is robust to
both of its parameters; this example retrains AF across a 4x range of
each parameter on a small city and prints the resulting accuracy curve.

Run:  python examples/proximity_sensitivity.py
"""

from repro import prepare, toy_dataset
from repro.experiments import MethodBudget, proximity_sweep


def main() -> None:
    dataset = toy_dataset(n_days=5, n_regions=14, seed=3)
    data = prepare(dataset, s=6, h=1)
    default = data.city.default_proximity_config()
    budget = MethodBudget(epochs=5, batch_size=16, max_train_batches=10,
                          patience=3)

    print(f"City defaults: sigma={default.sigma:.2f} km, "
          f"alpha={default.alpha:.2f} km\n")

    for parameter in ("alpha", "sigma"):
        center = getattr(default, parameter)
        values = [0.5 * center, center, 2.0 * center]
        print(f"Sweeping {parameter} over {[round(v, 2) for v in values]} "
              "(retrains AF per point)...")
        result = proximity_sweep(data, parameter, values, budget=budget,
                                 max_test_windows=24)
        for value, kl, js, emd in zip(result.values,
                                      result.metrics["kl"],
                                      result.metrics["js"],
                                      result.metrics["emd"]):
            print(f"  {parameter}={value:6.2f}  KL {kl:.4f}  "
                  f"JS {js:.4f}  EMD {emd:.4f}")
        values_emd = result.metrics["emd"]
        spread = (max(values_emd) - min(values_emd)) / (
            sum(values_emd) / len(values_emd))
        print(f"  relative EMD spread: {spread:.1%} — "
              f"{'insensitive' if spread < 0.25 else 'sensitive'} "
              f"to {parameter}\n")


if __name__ == "__main__":
    main()
