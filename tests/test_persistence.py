"""Tests for model/sequence/result serialization."""

import numpy as np
import pytest

from repro.baselines import FCBaseline
from repro.core import BasicFramework
from repro.persistence import (export_comparison, import_comparison_rows,
                               load_model, load_sequence, save_model,
                               save_sequence)


class TestModelRoundTrip:
    def test_bf_round_trip(self, tmp_path, rng):
        model = BasicFramework(5, 5, 3, rng, rank=2, encoder_dim=4,
                               hidden_dim=6)
        path = tmp_path / "bf.npz"
        save_model(model, path)

        clone = BasicFramework(5, 5, 3, np.random.default_rng(99), rank=2,
                               encoder_dim=4, hidden_dim=6)
        load_model(clone, path)
        history = rng.uniform(size=(2, 3, 5, 5, 3))
        model.eval(), clone.eval()
        assert np.allclose(model(history, 1)[0].numpy(),
                           clone(history, 1)[0].numpy())

    def test_architecture_mismatch_raises(self, tmp_path, rng):
        model = FCBaseline(5, 5, 3, rng, encoder_dim=4, hidden_dim=6)
        path = tmp_path / "fc.npz"
        save_model(model, path)
        wrong = FCBaseline(5, 5, 3, rng, encoder_dim=8, hidden_dim=6)
        with pytest.raises(ValueError):
            load_model(wrong, path)


class TestSequenceRoundTrip:
    def test_round_trip(self, tmp_path, sequence):
        path = tmp_path / "seq.npz"
        save_sequence(sequence, path)
        loaded = load_sequence(path)
        assert loaded.tensors.shape == sequence.tensors.shape
        assert np.allclose(loaded.tensors, sequence.tensors, atol=1e-6)
        assert np.array_equal(loaded.mask, sequence.mask)
        assert loaded.spec.edges == sequence.spec.edges
        assert loaded.interval_minutes == sequence.interval_minutes

    def test_loaded_sequence_usable(self, tmp_path, sequence):
        from repro.histograms import WindowDataset
        path = tmp_path / "seq.npz"
        save_sequence(sequence, path)
        loaded = load_sequence(path)
        windows = WindowDataset(loaded, s=3, h=1)
        assert len(windows) > 0

    def test_histograms_renormalized_after_float32_round_trip(
            self, tmp_path, sequence):
        """The float32 storage quantizes cells; load must restore the
        sum-to-one histogram invariant exactly (empty cells stay zero)."""
        path = tmp_path / "seq.npz"
        save_sequence(sequence, path)
        loaded = load_sequence(path)
        sums = loaded.tensors.sum(axis=-1)
        observed = sums > 0
        assert observed.any()
        assert np.abs(sums[observed] - 1.0).max() < 1e-12
        # Empty cells must remain exactly empty, not become NaN.
        original_empty = sequence.tensors.sum(axis=-1) == 0
        assert np.all(sums[original_empty] == 0.0)
        assert np.isfinite(loaded.tensors).all()


class TestComparisonExport:
    def test_round_trip(self, tmp_path, dataset):
        from repro.experiments import (MethodBudget, make_nh, prepare,
                                       run_comparison)
        data = prepare(dataset, s=3, h=2)
        result = run_comparison(data, {"nh": make_nh},
                                max_test_windows=4)
        path = tmp_path / "result.json"
        export_comparison(result, path)
        rows = import_comparison_rows(path)
        assert len(rows) == 2
        assert rows[0]["method"] == "nh"
        assert np.isfinite(rows[0]["emd"])


class TestAFModelRoundTrip:
    def test_af_round_trip(self, tmp_path, rng, proximity):
        from repro.core import AdvancedFramework, GCNNBlock
        kwargs = dict(n_buckets=3, rank=2,
                      blocks=[GCNNBlock(4, 2, 1)], rnn_hidden=4,
                      rnn_order=2)
        model = AdvancedFramework(proximity, proximity,
                                  rng=np.random.default_rng(1), **kwargs)
        path = tmp_path / "af.npz"
        save_model(model, path)
        clone = AdvancedFramework(proximity, proximity,
                                  rng=np.random.default_rng(2), **kwargs)
        load_model(clone, path)
        history = rng.uniform(size=(1, 3, len(proximity),
                                    len(proximity), 3))
        model.eval(), clone.eval()
        assert np.allclose(model(history, 1)[0].numpy(),
                           clone(history, 1)[0].numpy())

    def test_npz_file_is_plain_numpy(self, tmp_path, rng):
        """Artifacts must be readable without this library."""
        from repro.baselines import FCBaseline
        model = FCBaseline(4, 4, 3, rng, encoder_dim=4, hidden_dim=4)
        path = tmp_path / "fc.npz"
        save_model(model, path)
        with np.load(path) as archive:
            assert "encode.weight" in archive.files
            assert archive["encode.weight"].shape == (48, 4)
