"""Experiment runner: fit → forecast → evaluate, for a roster of methods.

This is the engine behind the Table II and figure benchmarks: it wires a
city dataset through the windowing, fits every requested method once per
``s`` setting with the maximum horizon, and scores per-step KL/JS/EMD on
the test windows — the protocol of the paper's §VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import Forecaster
from ..histograms.tensor_builder import ODTensorSequence, build_od_tensors
from ..histograms.windows import (Split, WindowDataset,
                                  chronological_split)
from ..metrics.evaluation import EvaluationResult, evaluate_forecasts
from ..trips.datasets import CityDataset

MethodFactory = Callable[["ExperimentData"], Forecaster]


@dataclass
class ExperimentData:
    """A city dataset prepared for forecasting experiments."""

    dataset: CityDataset
    sequence: ODTensorSequence
    windows: WindowDataset
    split: Split

    @property
    def city(self):
        return self.dataset.city

    def origin_proximity(self) -> np.ndarray:
        return self.city.proximity()

    def dest_proximity(self) -> np.ndarray:
        return self.city.proximity()


def prepare(dataset: CityDataset, s: int, h: int,
            train_fraction: float = 0.7,
            val_fraction: float = 0.1) -> ExperimentData:
    """Build tensors, windows, and the chronological split for a city."""
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=dataset.field.n_intervals)
    windows = WindowDataset(sequence, s=s, h=h)
    split = chronological_split(windows, train_fraction, val_fraction)
    return ExperimentData(dataset=dataset, sequence=sequence,
                          windows=windows, split=split)


@dataclass
class MethodResult:
    """Evaluation of one fitted method."""

    name: str
    evaluation: EvaluationResult
    fit_seconds: float = 0.0
    predictions: Optional[np.ndarray] = None
    test_indices: Optional[np.ndarray] = None


@dataclass
class ComparisonResult:
    """All methods' results for one (dataset, s, h) setting."""

    s: int
    h: int
    methods: Dict[str, MethodResult] = field(default_factory=dict)

    def table(self, metrics: Sequence[str] = ("kl", "js", "emd")
              ) -> List[dict]:
        """Rows: one per method per forecast step (Table II layout)."""
        rows = []
        for name, result in self.methods.items():
            for k in range(self.h):
                row = {"method": name, "step": k + 1}
                for metric in metrics:
                    row[metric] = float(
                        result.evaluation.per_step[metric][k])
                rows.append(row)
        return rows

    def compare_methods(self, windows, name_a: str, name_b: str,
                        metric: str = "emd", n_resamples: int = 1000):
        """Paired bootstrap of two kept-prediction methods (A vs B).

        Requires the comparison to have been run with
        ``keep_predictions=True``.  Returns a
        :class:`repro.metrics.bootstrap.BootstrapResult`; negative mean
        difference means method A is better.
        """
        from ..metrics.bootstrap import paired_bootstrap

        a, b = self.methods[name_a], self.methods[name_b]
        if a.predictions is None or b.predictions is None:
            raise ValueError(
                "compare_methods needs keep_predictions=True results")
        if not np.array_equal(a.test_indices, b.test_indices):
            raise ValueError("methods were scored on different windows")
        _, truth, masks = windows.gather(a.test_indices)
        return paired_bootstrap(truth, a.predictions.astype(np.float64),
                                b.predictions.astype(np.float64), masks,
                                metric=metric, n_resamples=n_resamples)

    def format_table(self, metrics: Sequence[str] = ("kl", "js", "emd")
                     ) -> str:
        """Human-readable fixed-width table."""
        lines = [f"s={self.s}  (rows: method x step)"]
        header = f"{'method':8s} {'step':>4s} " + " ".join(
            f"{m:>8s}" for m in metrics)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.table(metrics):
            lines.append(
                f"{row['method']:8s} {row['step']:4d} " + " ".join(
                    f"{row[m]:8.4f}" for m in metrics))
        return "\n".join(lines)


def run_comparison(data: ExperimentData,
                   methods: Dict[str, MethodFactory],
                   keep_predictions: bool = False,
                   max_test_windows: Optional[int] = None
                   ) -> ComparisonResult:
    """Fit and evaluate every method on the prepared data.

    Each method is trained with the dataset's full horizon ``h`` and
    scored per forecast step on the test windows, exactly once.
    """
    import time

    windows, split = data.windows, data.split
    h = windows.h
    test = split.test
    if max_test_windows is not None and len(test) > max_test_windows:
        # Evenly thin the test windows to bound evaluation cost.
        keep = np.linspace(0, len(test) - 1, max_test_windows).astype(int)
        test = test[keep]
    _, truth, masks = windows.gather(test)
    outcome = ComparisonResult(s=windows.s, h=h)
    for name, factory in methods.items():
        forecaster = factory(data)
        start = time.time()
        forecaster.fit(windows, split, horizon=h)
        fit_seconds = time.time() - start
        predictions = forecaster.predict(windows, test, horizon=h)
        evaluation = evaluate_forecasts(truth, predictions, masks)
        outcome.methods[name] = MethodResult(
            name=name, evaluation=evaluation, fit_seconds=fit_seconds,
            # Stored as float32: kept predictions feed the figure
            # groupings, where 1e-7 histogram error is immaterial, and a
            # full-city test set is hundreds of MB in float64.
            predictions=(predictions.astype(np.float32)
                         if keep_predictions else None),
            test_indices=test)
    return outcome
