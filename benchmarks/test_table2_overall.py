"""Table II: overall forecast accuracy of all seven methods.

Regenerates the paper's main result table: KL / JS / EMD of NH, GP, VAR,
MR, FC(RNN), BF, and AF on both cities, for s ∈ {3, 6} historical
intervals and forecast steps h = 1..3.

Absolute values differ from the paper (synthetic substrate, reduced
training budget); the *shape* assertions encode the paper's findings:

1. AF is the most accurate method in every setting;
2. BF beats the no-factorization FC baseline;
3. errors grow with the forecast horizon (checked on AF);
4. NYC is easier than CD (checked on AF, EMD).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SMOKE, run_once


def _print_table(city_name, comparison):
    print(f"\nTable II — {city_name.upper()}, s={comparison.s}")
    print(comparison.format_table())


def _shape_checks(comparison):
    methods = comparison.methods
    h = comparison.h
    for result in methods.values():
        for metric in ("kl", "js", "emd"):
            assert np.isfinite(result.evaluation.per_step[metric]).all()
    if SMOKE:
        # Smoke budgets only verify the plumbing, not forecast quality.
        return
    # (1) AF best overall on every metric.  MR gets a slightly wider
    # band: our MR implementation (per-slot embedding regression) is a
    # stronger periodic baseline than the paper's adapted travel-time
    # estimator, and at laptop training budgets AF's margin over it is
    # thin (see EXPERIMENTS.md).
    for metric in ("kl", "js", "emd"):
        af = methods["af"].evaluation.overall(metric)
        for name, result in methods.items():
            if name == "af":
                continue
            tolerance = 1.10 if name == "mr" else 1.05
            assert af <= result.evaluation.overall(metric) * tolerance, (
                f"AF not best on {metric}: {af:.4f} vs "
                f"{name}={result.evaluation.overall(metric):.4f}")
    # (2) BF beats FC.
    assert methods["bf"].evaluation.overall("emd") \
        <= methods["fc"].evaluation.overall("emd") * 1.02
    # (3) AF error grows with horizon.
    af_steps = methods["af"].evaluation.per_step["emd"]
    assert af_steps[h - 1] >= af_steps[0] * 0.9


@pytest.mark.parametrize("city_name,fixture", [
    ("nyc", "nyc_s6"), ("nyc", "nyc_s3"),
    ("cd", "cd_s6"), ("cd", "cd_s3"),
])
def test_table2(benchmark, city_name, fixture, request):
    data_and_result = run_once(
        benchmark, lambda: request.getfixturevalue(fixture))
    _, comparison = data_and_result
    _print_table(city_name, comparison)
    _shape_checks(comparison)


def test_table2_nyc_easier_than_cd(benchmark, nyc_s6, cd_s6):
    """Observation (4): regions in NYC are more homogeneous, so its
    forecasts are more accurate than CD's."""
    def collect():
        nyc_emd = nyc_s6[1].methods["af"].evaluation.overall("emd")
        cd_emd = cd_s6[1].methods["af"].evaluation.overall("emd")
        return nyc_emd, cd_emd

    nyc_emd, cd_emd = run_once(benchmark, collect)
    print(f"\nAF EMD: NYC={nyc_emd:.4f}  CD={cd_emd:.4f}")
    if not SMOKE:
        assert nyc_emd < cd_emd


def test_table2_short_history_sufficient(benchmark, nyc_s6, nyc_s3):
    """Observation (6): AF at s=3 is at least comparable to s=6 — traffic
    depends mostly on the short-term history."""
    def collect():
        return (nyc_s3[1].methods["af"].evaluation.overall("emd"),
                nyc_s6[1].methods["af"].evaluation.overall("emd"))

    s3, s6 = run_once(benchmark, collect)
    print(f"\nAF EMD on NYC: s=3 -> {s3:.4f},  s=6 -> {s6:.4f}")
    if not SMOKE:
        assert s3 <= s6 * 1.15
