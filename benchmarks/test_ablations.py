"""Ablations of the AF design choices called out in DESIGN.md §5.

Not in the paper's evaluation, but each isolates one of its design
arguments:

* **cluster pooling** — the paper's §V-A2 motivates geometrical pooling
  over id-order pooling; we train AF both ways.
* **CNRNN spatial gates** — order-1 gate convolutions degenerate to a
  per-region dense GRU, ablating the spatio-temporal stage (§V-B).
* **Dirichlet regularizer** — Eq. 11's graph-smoothness prior vs Eq. 4's
  plain Frobenius prior on the same AF model.
* **rank β** — the factorization width (paper uses 5).

Run on a small city so each variant trains in seconds; assertions are
deliberately loose (variants must stay in the same quality regime —
we report the numbers, catastrophic regressions fail).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import MethodBudget, make_af, prepare
from repro.metrics import evaluate_forecasts
from repro.trips import toy_dataset

from conftest import SMOKE, run_once

BUDGET = MethodBudget(epochs=2 if SMOKE else 8, batch_size=16,
                      max_train_batches=4 if SMOKE else 12,
                      max_val_batches=2, patience=4, learning_rate=3e-3)


@pytest.fixture(scope="module")
def ablation_data():
    dataset = toy_dataset(n_days=3 if SMOKE else 6, n_regions=16, seed=21)
    return prepare(dataset, s=6, h=1)


def _score(data, forecaster):
    test = data.split.test[:24]
    forecaster.fit(data.windows, data.split, horizon=1)
    predictions = forecaster.predict(data.windows, test, horizon=1)
    _, truth, masks = data.windows.gather(test)
    return evaluate_forecasts(truth, predictions, masks).overall("emd")


def test_ablation_cluster_pooling(benchmark, ablation_data):
    def sweep():
        on = _score(ablation_data, make_af(ablation_data, BUDGET,
                                           cluster_pooling=True))
        off = _score(ablation_data, make_af(ablation_data, BUDGET,
                                            cluster_pooling=False))
        return on, off

    on, off = run_once(benchmark, sweep)
    print(f"\nAblation, pooling order: cluster-aware EMD {on:.4f} vs "
          f"id-order EMD {off:.4f}")
    assert on <= off * 1.15


def test_ablation_cnrnn_spatial_gates(benchmark, ablation_data):
    def sweep():
        spatial = _score(ablation_data, make_af(ablation_data, BUDGET,
                                                rnn_order=2))
        pointwise = _score(ablation_data, make_af(ablation_data, BUDGET,
                                                  rnn_order=1))
        return spatial, pointwise

    spatial, pointwise = run_once(benchmark, sweep)
    print(f"\nAblation, CNRNN gates: graph-conv EMD {spatial:.4f} vs "
          f"pointwise EMD {pointwise:.4f}")
    assert spatial <= pointwise * 1.15


def test_ablation_dirichlet_regularizer(benchmark, ablation_data):
    def sweep():
        dirichlet = _score(ablation_data, make_af(ablation_data, BUDGET,
                                                  dirichlet=True))
        frobenius = _score(ablation_data, make_af(ablation_data, BUDGET,
                                                  dirichlet=False))
        return dirichlet, frobenius

    dirichlet, frobenius = run_once(benchmark, sweep)
    print(f"\nAblation, factor regularizer: Dirichlet EMD "
          f"{dirichlet:.4f} vs Frobenius EMD {frobenius:.4f}")
    assert dirichlet <= frobenius * 1.15


def test_ablation_rank(benchmark, ablation_data):
    ranks = [2, 5] if SMOKE else [2, 5, 10]

    def sweep():
        return {rank: _score(ablation_data,
                             make_af(ablation_data, BUDGET, rank=rank))
                for rank in ranks}

    scores = run_once(benchmark, sweep)
    print("\nAblation, factorization rank β:")
    for rank, emd_value in scores.items():
        print(f"  rank {rank:2d}: EMD {emd_value:.4f}")
    values = np.asarray(list(scores.values()))
    assert np.isfinite(values).all()
    # All ranks operate in the same regime; rank is not a cliff.
    assert values.max() <= values.min() * 1.5
