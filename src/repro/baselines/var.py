"""Vector autoregression (VAR) baseline — paper §VI-A3(5).

VAR models the linear dependence of the current OD state on its ``lag``
predecessors *jointly across OD pairs*.  A full VAR over all
``N·N'·K ≈ 31k`` dimensions is not estimable (it would need ~1e9
coefficients), so — as is standard for OD matrices — the state is first
reduced with PCA to ``n_components`` dimensions, the VAR is fit in latent
space with ridge-regularized least squares, and forecasts are mapped back
and renormalized into histograms.  Unobserved cells are imputed from the
NH prior before the PCA, exactly as for the GP baseline.
"""

from __future__ import annotations

import numpy as np

from ..histograms.histogram import normalize_histogram
from ..histograms.windows import Split, WindowDataset
from .base import Forecaster, training_interval_range
from .nh import NaiveHistogram


class VARForecaster(Forecaster):
    """PCA-reduced ridge VAR over the OD tensor sequence.

    Parameters
    ----------
    lag:
        Autoregressive order (how many past intervals enter the
        regression); capped at the dataset's ``s`` when predicting.
    n_components:
        Latent dimension of the PCA reduction.
    ridge:
        Tikhonov regularization of the least-squares fit.
    """

    name = "var"

    def __init__(self, lag: int = 3, n_components: int = 40,
                 ridge: float = 1.0):
        if lag < 1:
            raise ValueError("lag must be >= 1")
        self.lag = lag
        self.n_components = n_components
        self.ridge = ridge
        self._prior = NaiveHistogram()
        self._mean = None
        self._basis = None        # (cells, n_components)
        self._coefficients = None  # (lag * n_comp, n_comp)

    # ------------------------------------------------------------------
    def _to_latent(self, tensors: np.ndarray, mask: np.ndarray
                   ) -> np.ndarray:
        """Impute, flatten, center, and project intervals to latent space."""
        prior = self._prior._table
        filled = np.where(mask[..., None], tensors, prior[None, ...])
        flat = filled.reshape(len(tensors), -1)
        return (flat - self._mean) @ self._basis

    def fit(self, dataset: WindowDataset, split: Split,
            horizon: int) -> None:
        self._prior.fit(dataset, split, horizon)
        sequence = dataset.sequence
        end = training_interval_range(dataset, split)
        prior = self._prior._table
        filled = np.where(sequence.mask[:end][..., None],
                          sequence.tensors[:end], prior[None, ...])
        flat = filled.reshape(end, -1)
        self._mean = flat.mean(axis=0)
        centered = flat - self._mean
        # PCA via SVD of the interval-by-cell matrix.
        n_comp = min(self.n_components, min(centered.shape) - 1)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        self._basis = vt[:n_comp].T                    # (cells, n_comp)
        latent = centered @ self._basis                # (end, n_comp)

        # Ridge least squares: z_t ~ [z_{t-1}, ..., z_{t-lag}].
        lag = self.lag
        if end <= lag + 1:
            raise ValueError(
                f"not enough training intervals ({end}) for lag {lag}")
        targets = latent[lag:]
        design = np.concatenate(
            [latent[lag - j - 1:end - j - 1] for j in range(lag)], axis=1)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._coefficients = np.linalg.solve(gram, design.T @ targets)

    # ------------------------------------------------------------------
    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        if self._coefficients is None:
            raise RuntimeError("fit() must be called before predict()")
        indices = np.atleast_1d(indices)
        prior = self._prior._table
        cell_shape = prior.shape
        outputs = []
        for i in indices:
            history = dataset.history(i)
            mask = dataset.history_mask(i)
            latent = self._to_latent(history, mask)    # (s, n_comp)
            window = list(latent[-self.lag:])
            while len(window) < self.lag:              # s < lag: pad
                window.insert(0, window[0])
            forecasts = []
            for _ in range(horizon):
                stacked = np.concatenate(window[::-1])  # newest first
                nxt = stacked @ self._coefficients
                forecasts.append(nxt)
                window.pop(0)
                window.append(nxt)
            latent_future = np.stack(forecasts)         # (h, n_comp)
            flat = latent_future @ self._basis.T + self._mean
            tensors = flat.reshape((horizon,) + cell_shape)
            outputs.append(normalize_histogram(tensors))
        return np.stack(outputs)
