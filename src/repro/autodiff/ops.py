"""Differentiable functions operating on :class:`~repro.autodiff.Tensor`.

These complement the operator overloads on ``Tensor`` with the
nonlinearities, normalizations, and structural operations the paper's
models need (sigmoid/tanh gates, per-cell softmax recovery, concatenation
of graph-convolution slices, dropout regularization, ...).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, _ensure_tensor, _unbroadcast


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = _ensure_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    x = _ensure_tensor(x)
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    x = _ensure_tensor(x)
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    x = _ensure_tensor(x)
    out_data = np.empty_like(x.data)
    positive = x.data >= 0
    out_data[positive] = 1.0 / (1.0 + np.exp(-x.data[positive]))
    ex = np.exp(x.data[~positive])
    out_data[~positive] = ex / (1.0 + ex)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = _ensure_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    x = _ensure_tensor(x)
    mask = x.data > 0
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the max-subtraction stabilizer.

    This is the paper's recovery operator (Eq. 3): each OD cell's K raw
    scores are normalized into a probability histogram.
    """
    x = _ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # d softmax: s * (grad - sum(grad * s))
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (gradient splits back)."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor_i, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor_i.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor_i._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor_i, slab in zip(tensors, slabs):
            if tensor_i.requires_grad:
                tensor_i._accumulate(slab)

    return Tensor._make(out_data, tuple(tensors), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum (ties route gradient to the first input)."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~a_wins), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def abs_(x: Tensor) -> Tensor:
    """Elementwise absolute value (sign subgradient at 0)."""
    x = _ensure_tensor(x)
    out_data = np.abs(x.data)
    sign = np.sign(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * sign)

    return Tensor._make(out_data, (x,), backward)


def clip_min(x: Tensor, minimum: float) -> Tensor:
    """Lower-clip; gradient passes only where ``x > minimum``."""
    x = _ensure_tensor(x)
    mask = x.data > minimum
    out_data = np.where(mask, x.data, minimum)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``rate``.

    At evaluation time (``training=False``) this is the identity, matching
    the usual inference-time semantics.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = _ensure_tensor(x)
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is data)."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def pad_axis(x: Tensor, axis: int, before: int, after: int,
             value: float = 0.0) -> Tensor:
    """Pad ``x`` along a single axis with a constant.

    Used by the graph-pooling stage, which appends "fake" nodes so the
    coarsened graph size is divisible by the pooling stride.
    """
    x = _ensure_tensor(x)
    widths = [(0, 0)] * x.ndim
    widths[axis] = (before, after)
    out_data = np.pad(x.data, widths, constant_values=value)
    n = x.shape[axis]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            index = [slice(None)] * grad.ndim
            index[axis] = slice(before, before + n)
            x._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, (x,), backward)


def take_axis(x: Tensor, indices: np.ndarray, axis: int) -> Tensor:
    """Gather slices of ``x`` at ``indices`` along ``axis``.

    Used to permute graph nodes into cluster order before pooling.
    """
    x = _ensure_tensor(x)
    indices = np.asarray(indices, dtype=np.intp)
    out_data = np.take(x.data, indices, axis=axis)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            full = np.zeros_like(x.data)
            index = [slice(None)] * x.ndim
            index[axis] = indices
            np.add.at(full, tuple(index), grad)
            x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


def mean_pool_axis(x: Tensor, axis: int, stride: int) -> Tensor:
    """Average-pool ``x`` along ``axis`` with non-overlapping windows."""
    return _pool_axis(x, axis, stride, how="mean")


def max_pool_axis(x: Tensor, axis: int, stride: int) -> Tensor:
    """Max-pool ``x`` along ``axis`` with non-overlapping windows."""
    return _pool_axis(x, axis, stride, how="max")


def _pool_axis(x: Tensor, axis: int, stride: int, how: str) -> Tensor:
    x = _ensure_tensor(x)
    n = x.shape[axis]
    if n % stride != 0:
        raise ValueError(
            f"axis length {n} not divisible by pool stride {stride}; "
            "pad with fake nodes first")
    moved = np.moveaxis(x.data, axis, 0)
    grouped = moved.reshape(n // stride, stride, *moved.shape[1:])
    if how == "mean":
        pooled = grouped.mean(axis=1)
    else:
        pooled = grouped.max(axis=1)
    out_data = np.moveaxis(pooled, 0, axis)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gmoved = np.moveaxis(grad, axis, 0)
        if how == "mean":
            expanded = np.repeat(gmoved, stride, axis=0) / stride
        else:
            winners = (grouped == pooled[:, None])
            counts = winners.sum(axis=1, keepdims=True)
            expanded = (winners * (gmoved[:, None] / counts)).reshape(
                n, *gmoved.shape[1:])
        x._accumulate(np.moveaxis(expanded.reshape(moved.shape), 0, axis))

    return Tensor._make(out_data, (x,), backward)
