"""Advanced framework (AF): dual-stage graph convolutional recurrence.

Paper §V.  Stage 1 factorizes every historical tensor with Cheby-Net
convolutions + cluster pooling over the two proximity graphs
(:mod:`repro.core.spatial`); stage 2 forecasts the factor sequences with
CNRNNs whose gates are graph convolutions (:mod:`repro.core.cnrnn`);
recovery is shared with BF.  Trained end-to-end with the Dirichlet-
regularized loss of Eq. 11.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..autodiff.layers import Dropout
from ..autodiff.module import Module
from ..autodiff.tensor import Tensor
from ..contracts import (check_finite, check_shape_dtype,
                         get_contract_policy)
from .cnrnn import GraphSeq2Seq, twin_forecast
from .recovery import recover
from .spatial import (DEFAULT_BLOCKS, GCNNBlock, SpatialFactorizer,
                      factorize_tensor_batch,
                      sharded_factorize_tensor_batch)


class AdvancedFramework(Module):
    """End-to-end AF model.

    Parameters
    ----------
    origin_weights, dest_weights:
        Proximity matrices W (origins) and W' (destinations).
    n_buckets:
        Histogram buckets K.
    rank:
        Factorization rank β (paper: 5).
    blocks:
        GCNN conv+pool stages for the factorizers.
    rnn_hidden:
        Hidden channels of the CNRNN gates (graph-signal features per
        region).
    rnn_order:
        Chebyshev order of the CNRNN gate convolutions.
    """

    def __init__(self, origin_weights: np.ndarray, dest_weights: np.ndarray,
                 n_buckets: int, rng: np.random.Generator, rank: int = 5,
                 blocks: Sequence[GCNNBlock] = DEFAULT_BLOCKS,
                 rnn_hidden: int = 16, rnn_order: int = 2,
                 rnn_layers: int = 1, cluster_pooling: bool = True,
                 dropout: float = 0.2):
        super().__init__()
        self.origin_weights = np.asarray(origin_weights, dtype=np.float64)
        self.dest_weights = np.asarray(dest_weights, dtype=np.float64)
        self.n_origins = self.origin_weights.shape[0]
        self.n_destinations = self.dest_weights.shape[0]
        self.n_buckets = n_buckets
        self.rank = rank
        # R slices live on the destination graph; C slices on the origin
        # graph (paper §V-A2).
        self.factor_r = SpatialFactorizer(self.dest_weights, n_buckets,
                                          rank, rng, blocks=blocks,
                                          cluster_pooling=cluster_pooling)
        self.factor_c = SpatialFactorizer(self.origin_weights, n_buckets,
                                          rank, rng, blocks=blocks,
                                          cluster_pooling=cluster_pooling)
        self.drop_r = Dropout(dropout, rng)
        self.drop_c = Dropout(dropout, rng)
        channels = rank * n_buckets
        # The R sequence is a graph signal over origins; C over
        # destinations (paper §V-B).
        self.rnn_r = GraphSeq2Seq(self.origin_weights, channels, rnn_hidden,
                                  channels, rnn_order, rng,
                                  num_layers=rnn_layers)
        self.rnn_c = GraphSeq2Seq(self.dest_weights, channels, rnn_hidden,
                                  channels, rnn_order, rng,
                                  num_layers=rnn_layers)
        # Optional sharded stage-1 execution (metro scale); installed
        # via set_sharding, never serialized with the weights.
        self._sharding = None

    def set_sharding(self, execution) -> None:
        """Install (or clear, with ``None``) a sharded stage-1 path.

        ``execution`` is a :class:`repro.core.shardexec.ShardedExecution`
        whose plan must cover this model's regions; stage 2 (the CNRNN
        forecaster) is untouched — its signals are ``(N, β·K)``, linear
        in N, and not the scaling bottleneck.
        """
        if execution is not None:
            ok, reason = execution.supports(self)
            if not ok:
                raise ValueError(
                    f"sharded execution does not fit this model: "
                    f"{reason}")
        self._sharding = execution

    def forward(self, history: Union[np.ndarray, Tensor], horizon: int
                ) -> Tuple[Tensor, Tensor, Tensor]:
        """Forecast ``horizon`` full tensors from sparse history.

        Same contract as :meth:`BasicFramework.forward`: history
        ``(B, s, N, N', K)`` → ``(prediction, R̂, Ĉ)`` with shapes
        ``(B, h, N, N', K)``, ``(B, h, N, β, K)``, ``(B, h, β, N', K)``.
        """
        x = history if isinstance(history, Tensor) else Tensor(history)
        if x.ndim != 5:
            raise ValueError(f"history must be (B, s, N, N', K), "
                             f"got shape {x.shape}")
        policy = get_contract_policy()
        if policy.enabled:
            check_shape_dtype(
                x.data, "history", "AF.forward", policy=policy,
                shape=(None, None, self.n_origins, self.n_destinations,
                       self.n_buckets))
            check_finite(x.data, "history", "AF.forward", policy)
        batch, steps = x.shape[0], x.shape[1]
        n, n_prime, k = self.n_origins, self.n_destinations, self.n_buckets

        # Stage 1: spatial factorization of every historical tensor.
        flat_steps = x.reshape(batch * steps, n, n_prime, k)
        sharding = getattr(self, "_sharding", None)
        if sharding is not None:
            r_hist, c_hist = sharded_factorize_tensor_batch(
                self.factor_r, self.factor_c, flat_steps, sharding)
        else:
            r_hist, c_hist = factorize_tensor_batch(
                self.factor_r, self.factor_c, flat_steps)
        # R history: (B, s, N, β*K) — graph signal over origins.
        r_seq = r_hist.reshape(batch, steps, n, self.rank * k)
        # C history: (B, s, β, N', K) → (B, s, N', β*K) over destinations.
        c_seq = c_hist.reshape(batch, steps, self.rank, n_prime, k)
        c_seq = c_seq.transpose((0, 1, 3, 2, 4)).reshape(
            batch, steps, n_prime, self.rank * k)
        # Dropout on the factor sequences (the paper trains all three
        # deep models with dropout 0.2).
        r_seq = self.drop_r(r_seq)
        c_seq = self.drop_c(c_seq)

        # Stage 2: CNRNN forecasting of both factor sequences (run as
        # one stacked computation when the fused kernels are enabled and
        # the two sides are architecture-identical).
        r_future, c_future = twin_forecast(self.rnn_r, self.rnn_c,
                                           r_seq, c_seq, horizon)
        r_factors = r_future.reshape(batch, horizon, n, self.rank, k)
        c_factors = c_future.reshape(batch, horizon, n_prime, self.rank, k)
        c_factors = c_factors.transpose((0, 1, 3, 2, 4))

        prediction = recover(r_factors, c_factors)
        return prediction, r_factors, c_factors
