"""Travel-time distributions derived from speed histograms.

The paper's §I motivates stochastic OD matrices with exactly this
computation: given the forecast *speed* histogram for an OD pair and the
trip length, derive the *travel-time* distribution and plan with a
quantile instead of the mean.  Since time = distance / speed is
monotone decreasing in speed, each speed bucket ``[v_lo, v_hi)`` maps to
the time interval ``(d/v_hi, d/v_lo]`` with the same probability mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .histogram import HistogramSpec


@dataclass(frozen=True)
class TravelTimeDistribution:
    """A travel-time distribution as (interval, probability) pieces.

    Attributes
    ----------
    intervals_min:
        ``(K, 2)`` array of ``(fastest, slowest)`` minutes per piece,
        sorted by increasing time; the slowest edge of an open speed
        bucket is finite because speeds are floored at ``min_speed_ms``.
    probabilities:
        Probability mass per piece (sums to 1).
    """

    intervals_min: np.ndarray
    probabilities: np.ndarray

    def quantile(self, q: float) -> float:
        """Minutes needed so that P(time <= minutes) >= q.

        Conservative within a piece: returns the piece's slow edge, the
        value a risk-averse traveller plans with.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        accumulated = 0.0
        for (fast, slow), probability in zip(self.intervals_min,
                                             self.probabilities):
            accumulated += probability
            if accumulated >= q - 1e-12:
                return float(slow)
        return float(self.intervals_min[-1, 1])

    def mean_minutes(self) -> float:
        """Expected travel time using piece midpoints."""
        midpoints = self.intervals_min.mean(axis=1)
        return float((midpoints * self.probabilities).sum())

    def reservation_gap(self, confidence: float = 0.95) -> float:
        """How much longer the ``confidence`` plan is than the mean plan.

        The paper's argument in one number: planning with the average
        under-reserves by this many minutes.
        """
        return self.quantile(confidence) - self.mean_minutes()


def travel_time_distribution(speed_histogram: np.ndarray,
                             spec: HistogramSpec,
                             trip_km: float,
                             min_speed_ms: float = 0.5
                             ) -> TravelTimeDistribution:
    """Map a speed histogram to the trip's travel-time distribution.

    Parameters
    ----------
    speed_histogram:
        ``(K,)`` probabilities over the spec's speed buckets.
    spec:
        Bucket layout (m/s).
    trip_km:
        Trip length in km.
    min_speed_ms:
        Floor applied to bucket edges so the zero/open edges produce
        finite times.
    """
    histogram = np.asarray(speed_histogram, dtype=np.float64)
    if histogram.ndim != 1 or len(histogram) != spec.n_buckets:
        raise ValueError(
            f"histogram must have {spec.n_buckets} buckets, got "
            f"{histogram.shape}")
    if trip_km <= 0:
        raise ValueError("trip_km must be positive")
    total = histogram.sum()
    if total <= 0:
        raise ValueError("histogram has no mass")
    histogram = histogram / total

    edges = spec.finite_edges
    metres = trip_km * 1000.0
    pieces: List[Tuple[float, float, float]] = []
    for k in range(spec.n_buckets):
        if histogram[k] <= 0:
            continue
        v_lo = max(edges[k], min_speed_ms)
        v_hi = max(edges[k + 1], v_lo + 1e-9)
        fastest = metres / v_hi / 60.0
        slowest = metres / v_lo / 60.0
        pieces.append((fastest, slowest, histogram[k]))
    pieces.sort(key=lambda piece: piece[0])
    intervals = np.array([[fast, slow] for fast, slow, _ in pieces])
    probabilities = np.array([p for _, _, p in pieces])
    return TravelTimeDistribution(intervals_min=intervals,
                                  probabilities=probabilities)
