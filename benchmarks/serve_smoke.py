#!/usr/bin/env python3
"""Forecast-serving regression gate for run_benchmarks.sh.

Five checks at smoke scale (see docs/SERVING.md), results recorded in
``BENCH_SERVE.json`` at the repo root:

1. **Parity** — a forecast served through the full stack (registry ->
   checksummed checkpoint -> inference tape -> response cache) must be
   bit-identical to calling ``forecast_latest`` on the fitted
   forecaster directly, for both the replay and the lowered inference
   engines, cold and warm.  Any divergence means the serving path no
   longer computes what the paper's model computes.
2. **Cache speedup** — a response-cache hit must be at least
   ``MIN_CACHE_SPEEDUP``x faster than a cold (cache-cleared, warm-tape)
   forward; the cache is the first rung of the degradation ladder and
   must stay effectively free.
3. **Throughput floor** — a mixed request stream (repeats + new
   windows) must sustain at least ``MIN_FORECASTS_PER_SEC``
   forecasts/sec; p50/p99 latency and forecasts/sec are recorded.
   ``p99_ms`` covers the whole stream (including each window's
   first-capture request); ``p99_warm_ms`` excludes those captures and
   is the steady-state number to compare across commits.
4. **Transport floor** — a worker-pool round trip over the
   shared-memory ring must be at least ``MIN_SHM_SPEEDUP``x faster
   than the same round trip over the pickled pipe at a metro-size
   payload (``TRANSPORT_REGIONS`` regions), and the two transports
   must return bit-identical forecasts.  No /dev/shm segment may
   survive pool close.
5. **Shedding** — under synthetic overload (one worker, bounded
   queue, deadlines shorter than the backlog) the pool must shed at
   least one request with :class:`ShedError` *and* still serve at
   least one, then answer normally once the burst passes.

Exits non-zero on any failure so the benchmark sweep fails loudly.

Usage: python3 benchmarks/serve_smoke.py
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import prepare, toy_dataset
from repro.experiments.methods import MethodBudget, make_bf
from repro.forecast import forecast_latest
from repro.persistence import save_checkpoint
from repro.histograms.histogram import HistogramSpec
from repro.histograms.tensor_builder import ODTensorSequence
from repro.serve import (ForecastRequest, ForecastResponse,
                         ForecastService, ForecastWorkerPool, ModelKey,
                         ServeConfig, ShedError)
from repro.serve_shm import leaked_segments, slot_bytes_for

S, H = 4, 2
N_REQUESTS = 60
N_TAILS = 6                      # distinct "nows" cycled in the stream
TIMING_REPEATS = 30
MIN_CACHE_SPEEDUP = 5.0
MIN_FORECASTS_PER_SEC = 25.0
TRANSPORT_REGIONS = 500          # metro-size payload for the shm floor
TRANSPORT_S, TRANSPORT_H = 2, 1
TRANSPORT_REPEATS = 5
MIN_SHM_SPEEDUP = 2.0
OVERLOAD_THREADS = 8
OVERLOAD_MAX_INFLIGHT = 2
REPORT = Path(__file__).parent.parent / "BENCH_SERVE.json"


def _fit():
    dataset = toy_dataset(n_days=2, n_regions=8, seed=0)
    data = prepare(dataset, s=S, h=H)
    budget = MethodBudget(epochs=1, batch_size=8, max_train_batches=4)
    forecaster = make_bf(data, budget)
    forecaster.fit(data.windows, data.split, horizon=H)
    return data, budget, forecaster


def _service(engine, data, budget, path, key):
    service = ForecastService(ServeConfig(engine=engine))
    service.register(key, path,
                     lambda: make_bf(data, budget).model)
    return service


def check_parity(data, budget, forecaster, path, key):
    """Served == forecast_latest, bitwise, per engine, cold and warm."""
    failures = []
    parity = {}
    t = data.sequence.n_intervals
    tails = [data.sequence.slice(0, t - i) for i in range(3)]
    for engine in ("replay", "lowered"):
        service = _service(engine, data, budget, path, key)
        exact = True
        for repeat in range(2):              # cold pass, then warm pass
            for tail in tails:
                direct = forecast_latest(forecaster, tail, S, H)
                served = service.forecast(key, tail, S, H)
                if not np.array_equal(served, direct):
                    exact = False
                    failures.append(
                        f"{engine} serving diverged from forecast_latest "
                        f"(repeat {repeat}, max abs diff "
                        f"{np.abs(served - direct).max():.3e})")
        parity[engine] = exact
        service.close()
    parity["windows"] = len(tails)
    return parity, failures


def check_cache_speedup(data, budget, path, key):
    """Best-of-N cache hit vs cold (cache-cleared, warm-tape) forward."""
    service = _service("replay", data, budget, path, key)
    request = ForecastRequest(key, data.sequence, S, H)
    service.forecast_one(request)            # capture tape + fill cache
    cold_s = hit_s = float("inf")
    for _ in range(TIMING_REPEATS):
        service.cache.clear()
        start = time.perf_counter()
        response = service.forecast_one(request)
        cold_s = min(cold_s, time.perf_counter() - start)
        assert response.cache == "miss"
        start = time.perf_counter()
        response = service.forecast_one(request)
        hit_s = min(hit_s, time.perf_counter() - start)
        assert response.cache == "hit"
    service.close()
    speedup = cold_s / hit_s
    section = {"cold_ms": cold_s * 1e3, "hit_ms": hit_s * 1e3,
               "speedup": speedup, "floor": MIN_CACHE_SPEEDUP}
    failures = []
    if speedup < MIN_CACHE_SPEEDUP:
        failures.append(
            f"cache hit only {speedup:.1f}x faster than cold forward "
            f"({hit_s * 1e3:.3f} vs {cold_s * 1e3:.3f} ms), need >= "
            f"{MIN_CACHE_SPEEDUP}x")
    return section, failures


def check_throughput(data, budget, path, key):
    """Forecasts/sec and latency percentiles over a mixed stream."""
    service = _service("replay", data, budget, path, key)
    t = data.sequence.n_intervals
    requests = [
        ForecastRequest(key, data.sequence.slice(0, t - i % N_TAILS), S, H)
        for i in range(N_REQUESTS)]
    latencies = []
    for request in requests:
        start = time.perf_counter()
        response = service.forecast_one(request)
        latencies.append(time.perf_counter() - start)
        assert response.ok, response.error
    stats = service.stats()
    service.close()
    total = sum(latencies)

    def pct(samples, q):
        ms = sorted(1e3 * x for x in samples)
        return ms[min(len(ms) - 1, int(q * len(ms)))]

    # The first request for each distinct window captures an inference
    # tape; folding that one-off cost into p99 hides steady-state
    # regressions behind capture noise (and vice versa), so the warm
    # percentile excludes the first N_TAILS capture requests.
    warm = latencies[N_TAILS:]
    section = {
        "n_requests": N_REQUESTS,
        "distinct_windows": N_TAILS,
        "forecasts_per_sec": N_REQUESTS / total,
        "p50_ms": pct(latencies, 0.50),
        "p99_ms": pct(latencies, 0.99),
        "p99_warm_ms": pct(warm, 0.99),
        "floor_per_sec": MIN_FORECASTS_PER_SEC,
        "cache": stats["cache"],
        "engine": stats["engines"].get(str(key), {}),
    }
    failures = []
    if section["forecasts_per_sec"] < MIN_FORECASTS_PER_SEC:
        failures.append(
            f"throughput {section['forecasts_per_sec']:.1f}/s below the "
            f"{MIN_FORECASTS_PER_SEC}/s floor")
    return section, failures



def _metro_sequence(n_regions=TRANSPORT_REGIONS):
    """A synthetic metro-size window: (s, N, N, K) normalized
    histograms with every pair observed.  Contract validation is
    skipped (``_validated=True``) — the payload exercises the
    transport, not the data contract."""
    spec = HistogramSpec.paper_default()
    n, k = n_regions, spec.n_buckets
    rng = np.random.default_rng(0)
    tensors = rng.random((TRANSPORT_S, n, n, k))
    tensors /= tensors.sum(axis=-1, keepdims=True)
    mask = np.ones((TRANSPORT_S, n, n), dtype=bool)
    counts = np.full((TRANSPORT_S, n, n), 3.0)
    return ODTensorSequence(tensors=tensors, mask=mask, counts=counts,
                            spec=spec, interval_minutes=30.0,
                            _validated=True)


class _EchoService:
    """A deterministic, content-dependent stand-in forward: the
    response depends on every request byte, so a bitwise-equal answer
    proves the transport moved the payload intact — without fitting a
    500-region model inside a smoke gate."""

    def forecast_one(self, request):
        prediction = (request.sequence.tensors[:request.horizon]
                      * 2.0 + 0.125)
        return ForecastResponse(request.key, request.horizon, prediction)


class _SlowEchoService(_EchoService):
    """The overload victim: every forward costs a fixed wall-time."""

    FORWARD_SECONDS = 0.05

    def forecast_one(self, request):
        time.sleep(self.FORWARD_SECONDS)
        return super().forecast_one(request)


def check_transport():
    """shm vs pickled-pipe round trip at a metro payload, bitwise."""
    sequence = _metro_sequence()
    key = ModelKey("metro", "transport")
    request = ForecastRequest(key, sequence, TRANSPORT_S, TRANSPORT_H)
    expected = sequence.tensors[:TRANSPORT_H] * 2.0 + 0.125
    spec = sequence.spec
    n, k = TRANSPORT_REGIONS, spec.n_buckets
    # Size the slot from the larger direction (the request window).
    slot_bytes = slot_bytes_for(
        [(TRANSPORT_S, n, n, k), (TRANSPORT_S, n, n),
         (TRANSPORT_S, n, n)],
        [np.float64, np.bool_, np.float64])

    timings, segments = {}, []
    bit_identical = True
    failures = []
    for transport in ("shm", "pickle"):
        pool = ForecastWorkerPool(_EchoService, n_workers=1,
                                  transport=transport,
                                  slot_bytes=slot_bytes)
        segments += pool.segment_names()
        try:
            best = float("inf")
            for repeat in range(TRANSPORT_REPEATS + 1):
                start = time.perf_counter()
                response = pool.forecast(request)
                elapsed = time.perf_counter() - start
                if repeat > 0:               # first trip is warm-up
                    best = min(best, elapsed)
                if not (response.ok
                        and np.array_equal(response.prediction, expected)):
                    bit_identical = False
            if pool.transport_fallbacks:
                failures.append(
                    f"{transport} pool took {pool.transport_fallbacks} "
                    f"transport fallbacks at a payload sized to fit")
        finally:
            pool.close()
        timings[transport] = best
    leaked = leaked_segments(segments)

    payload_mb = (sequence.tensors.nbytes + sequence.mask.nbytes
                  + sequence.counts.nbytes) / 2**20
    speedup = timings["pickle"] / timings["shm"]
    section = {
        "regions": TRANSPORT_REGIONS,
        "payload_mb": payload_mb,
        "slot_bytes": slot_bytes,
        "shm_ms": timings["shm"] * 1e3,
        "pickle_ms": timings["pickle"] * 1e3,
        "speedup": speedup,
        "floor": MIN_SHM_SPEEDUP,
        "bit_identical": bit_identical,
        "leaked_segments": len(leaked),
    }
    if not bit_identical:
        failures.append("shm and pickle transports are not bit-identical")
    if speedup < MIN_SHM_SPEEDUP:
        failures.append(
            f"shm round trip only {speedup:.2f}x faster than pickle "
            f"({timings['shm'] * 1e3:.1f} vs "
            f"{timings['pickle'] * 1e3:.1f} ms at {payload_mb:.0f} MB), "
            f"need >= {MIN_SHM_SPEEDUP}x")
    if leaked:
        failures.append(f"leaked /dev/shm segments after close: {leaked}")
    return section, failures


def check_shedding():
    """Synthetic overload: a thread burst against one slow worker with
    a bounded queue and deadlines shorter than the backlog must shed
    fast (not time out slowly) yet keep serving."""
    import threading

    # Overload is about queueing, not payload size: a small window
    # keeps the forward cost (the sleep) the only latency term.
    sequence = _metro_sequence(n_regions=16)
    key = ModelKey("metro", "overload")
    forward_s = _SlowEchoService.FORWARD_SECONDS
    pool = ForecastWorkerPool(_SlowEchoService, n_workers=1,
                              max_inflight=OVERLOAD_MAX_INFLIGHT)
    failures = []
    try:
        prime = ForecastRequest(key, sequence, TRANSPORT_S, TRANSPORT_H)
        assert pool.forecast(prime).ok       # prime the latency EWMA

        served, shed, shed_ms = [], [], []
        lock = threading.Lock()

        def fire():
            # Room for ~2 queued forwards: the admitted pair meets
            # it, the rest shed on queue depth or EWMA feasibility.
            request = ForecastRequest(
                key, sequence, TRANSPORT_S, TRANSPORT_H,
                deadline=time.monotonic() + 2.4 * forward_s)
            start = time.perf_counter()
            try:
                response = pool.forecast(request)
                with lock:
                    served.append(response.ok)
            except ShedError as error:
                with lock:
                    shed.append(error.reason)
                    shed_ms.append(1e3 * (time.perf_counter() - start))

        threads = [threading.Thread(target=fire)
                   for _ in range(OVERLOAD_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        healthy_after = pool.forecast(prime).ok
        stats = pool.stats()
        section = {
            "n_workers": 1,
            "max_inflight": OVERLOAD_MAX_INFLIGHT,
            "offered": OVERLOAD_THREADS,
            "served": len(served),
            "shed": len(shed),
            "shed_full": stats["queue"]["shed_full"],
            "shed_deadline": stats["queue"]["shed_deadline"],
            "max_shed_ms": max(shed_ms, default=None),
            "ewma_ms": stats["queue"]["ewma_ms"],
            "healthy_after": healthy_after,
        }
        if not shed:
            failures.append("overload burst shed nothing — admission "
                            "control is not engaging")
        if not served or not all(served):
            failures.append("overload burst served nothing — shedding "
                            "must thin the queue, not close the door")
        if shed_ms and max(shed_ms) > 1e3 * forward_s:
            failures.append(
                f"sheds took up to {max(shed_ms):.1f}ms — slower than "
                f"the {1e3 * forward_s:.0f}ms forward they avoid")
        if not healthy_after:
            failures.append("pool unhealthy after the burst")
        if stats["deaths"] or stats["timeouts"]:
            failures.append("overload killed or timed out a worker — "
                            "sheds must not touch the ladder")
    finally:
        pool.close()
    return section, failures


def main() -> int:
    data, budget, forecaster = _fit()
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    path = tmp / "bf.npz"
    save_checkpoint(path, forecaster.model, epoch=0)
    key = ModelKey("toy", "smoke")

    failures = []
    parity, parity_failures = check_parity(data, budget, forecaster, path,
                                           key)
    failures += parity_failures
    cache, cache_failures = check_cache_speedup(data, budget, path, key)
    failures += cache_failures
    throughput, throughput_failures = check_throughput(data, budget, path,
                                                       key)
    failures += throughput_failures
    transport, transport_failures = check_transport()
    failures += transport_failures
    shedding, shedding_failures = check_shedding()
    failures += shedding_failures

    report = {"scale": "smoke", "s": S, "h": H, "parity": parity,
              "cache": cache, "throughput": throughput,
              "transport": transport, "shedding": shedding}
    REPORT.write_text(json.dumps(report, indent=2, sort_keys=False)
                      + "\n")
    if failures:
        print(f"serve smoke: FAIL ({'; '.join(failures)})")
        return 1
    print(f"serve smoke: OK (replay+lowered bit-identical to "
          f"forecast_latest, cache hit {cache['speedup']:.0f}x vs cold, "
          f"{throughput['forecasts_per_sec']:,.0f} forecasts/s, "
          f"p50 {throughput['p50_ms']:.2f}ms / "
          f"warm p99 {throughput['p99_warm_ms']:.2f}ms, "
          f"shm {transport['speedup']:.1f}x vs pickle at "
          f"{transport['payload_mb']:.0f}MB, "
          f"{shedding['shed']}/{shedding['offered']} shed under "
          f"overload -> {REPORT.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
