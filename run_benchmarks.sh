#!/usr/bin/env bash
# Full benchmark sweep: regenerates every table and figure of the paper
# and records the output.  Takes ~1 hour on one CPU core.
#
#   ./run_benchmarks.sh            # full scale
#   REPRO_BENCH_SCALE=smoke ./run_benchmarks.sh   # 2-minute plumbing check
set -uo pipefail
cd "$(dirname "$0")"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Fast checkpoint/resume regression gate: train 2 epochs, kill the
# process, resume the third, assert bit-identical weights and curves.
# Fails the sweep loudly if checkpointing regresses (~30s).
python3 benchmarks/resume_smoke.py || exit 1

# Chaos gate: inject drifted/dropped/NaN data, NaN gradients, corrupted
# checkpoints, and killed workers; every fault must be repaired,
# quarantined, or cleanly reported, and the data contracts must cost
# <5% of a training epoch (see docs/ROBUSTNESS.md).
python3 benchmarks/chaos_smoke.py || exit 1

# Replay-engine gate: tape replay must stay bit-for-bit identical to
# eager execution (BF and AF, dropout on) and the replayed AF train
# step must hold its >= 1.2x speedup (see docs/EXECUTION.md).
python3 benchmarks/replay_smoke.py || exit 1

# Tape-lowering gate: the compiled instruction plan must stay
# bit-for-bit identical to eager, compile both tapes without fallback,
# and beat plain replay on the AF step (see docs/EXECUTION.md).
python3 benchmarks/lowered_smoke.py || exit 1

# Serving gate: forecasts served through the registry/cache/inference
# tapes must stay bit-identical to forecast_latest, the response cache
# must stay >= 5x faster than a cold forward, and the request stream
# must hold its throughput floor.  Also gates the data plane: a worker
# round trip over the zero-copy shm ring must stay >= 2x faster than
# the pickled pipe at a 500-region payload (bit-identical answers, no
# leaked /dev/shm segments), and a synthetic overload burst must shed
# fast with ShedError while still serving.  Writes BENCH_SERVE.json at
# the repo root (see docs/SERVING.md).
python3 benchmarks/serve_smoke.py || exit 1

# Sharding gate: a short AF fit under exact-mode sharded execution must
# be bit-identical to dense (losses, weights, RNG), and a 500-region
# metro city must train a smoke epoch through the block-sparse blocked
# path under the per-shard memory budget in less wall-clock than dense.
# Writes BENCH_SHARD.json at the repo root (see docs/SHARDING.md).
python3 benchmarks/shard_smoke.py || exit 1

# Kernel microbenchmarks first: fused vs. reference autodiff ops and
# one AF/BF training step.  Writes BENCH_AUTODIFF.json at the repo root.
python3 benchmarks/microbench.py \
    --scale "${REPRO_BENCH_SCALE:-full}" \
    2>&1 | tee bench_autodiff_output.txt

python3 -m pytest benchmarks/ --benchmark-only -p no:cacheprovider -s -q \
    2>&1 | tee bench_output.txt
