"""Tests for block-sparse OD tensor storage
(``repro.histograms.blocksparse``).

The storage contract: ``from_dense``/``to_dense`` round-trips
bit-identically, ``build_block_sparse_od_tensors`` aggregates trips to
the same cell values as the dense builder, and
``BlockSparseWindowDataset`` yields batches bit-identical to
``WindowDataset`` under the same shuffle RNG.
"""

import numpy as np
import pytest

from repro.histograms import (BlockSparseODTensor,
                              BlockSparseWindowDataset, WindowDataset,
                              build_block_sparse_od_tensors)
from repro.graph import plan_shards


def _blocks(n=12):
    return [np.arange(0, 5), np.arange(5, 9), np.arange(9, n)]


@pytest.fixture(scope="module")
def sparse(sequence):
    return BlockSparseODTensor.from_dense(sequence, _blocks(), _blocks())


class TestRoundTrip:
    def test_to_dense_is_bit_identical(self, sparse, sequence):
        dense = sparse.to_dense()
        np.testing.assert_array_equal(dense.tensors, sequence.tensors)
        np.testing.assert_array_equal(dense.mask, sequence.mask)
        np.testing.assert_array_equal(dense.counts, sequence.counts)
        assert dense.mask.dtype == np.bool_

    def test_shape_and_spec_preserved(self, sparse, sequence):
        assert sparse.shape == (sequence.n_intervals,
                                sequence.n_origins,
                                sequence.n_destinations,
                                sequence.n_buckets)
        assert sparse.spec is sequence.spec
        assert sparse.interval_minutes == sequence.interval_minutes

    def test_empty_blocks_are_dropped(self, sparse):
        assert sparse.n_occupied <= sparse.n_block_rows \
            * sparse.n_block_cols
        for key, payload in sparse.blocks.items():
            assert sparse.mask_blocks[key].any(), key
            assert np.isfinite(payload).all()

    def test_shard_plan_blocks_work_as_partition(self, sequence,
                                                 proximity):
        plan = plan_shards(proximity, n_shards=3, hops=1)
        sparse = BlockSparseODTensor.from_dense(
            sequence, plan.row_blocks(), plan.col_blocks())
        np.testing.assert_array_equal(sparse.to_dense().tensors,
                                      sequence.tensors)


class TestBuilder:
    def test_bit_identical_to_dense_builder(self, dataset, sequence):
        sparse = build_block_sparse_od_tensors(
            dataset.trips, dataset.city, _blocks(),
            n_intervals=dataset.field.n_intervals)
        dense = sparse.to_dense()
        np.testing.assert_array_equal(dense.tensors, sequence.tensors)
        np.testing.assert_array_equal(dense.mask, sequence.mask)
        np.testing.assert_array_equal(dense.counts, sequence.counts)

    def test_min_trips_thresholding_matches_mask(self, dataset):
        sparse = build_block_sparse_od_tensors(
            dataset.trips, dataset.city, _blocks(),
            n_intervals=dataset.field.n_intervals, min_trips=2)
        for key, counts in sparse.count_blocks.items():
            mask = sparse.mask_blocks[key]
            np.testing.assert_array_equal(mask, counts >= 2)
            sums = sparse.blocks[key].sum(axis=-1)
            assert (sums[~mask] == 0).all()

    def test_invalid_partition_rejected(self, dataset):
        overlapping = [np.arange(0, 6), np.arange(5, 12)]
        with pytest.raises(ValueError, match="row_blocks"):
            build_block_sparse_od_tensors(
                dataset.trips, dataset.city, overlapping,
                n_intervals=dataset.field.n_intervals)
        incomplete = [np.arange(0, 6), np.arange(6, 11)]
        with pytest.raises(ValueError, match="row_blocks"):
            build_block_sparse_od_tensors(
                dataset.trips, dataset.city, incomplete,
                n_intervals=dataset.field.n_intervals)


class TestWindows:
    def test_window_matches_dense_slice(self, sparse, sequence):
        tensors, mask = sparse.window(2, 6)
        np.testing.assert_array_equal(tensors, sequence.tensors[2:6])
        np.testing.assert_array_equal(mask, sequence.mask[2:6])

    def test_window_range_validated(self, sparse):
        with pytest.raises(ValueError, match="window"):
            sparse.window(-1, 3)
        with pytest.raises(ValueError, match="window"):
            sparse.window(0, sparse.n_intervals + 1)

    def test_row_stripe_matches_dense(self, sparse, sequence):
        for bi, row_ids in enumerate(sparse.row_blocks):
            tensors, mask = sparse.row_stripe(bi)
            np.testing.assert_array_equal(tensors,
                                          sequence.tensors[:, row_ids])
            np.testing.assert_array_equal(mask,
                                          sequence.mask[:, row_ids])


class TestWindowDatasetParity:
    def test_same_length_and_samples(self, sparse, windows):
        sparse_windows = BlockSparseWindowDataset(sparse, s=3, h=2)
        assert len(sparse_windows) == len(windows)
        for i in (0, len(windows) - 1):
            np.testing.assert_array_equal(sparse_windows.history(i),
                                          windows.history(i))
            np.testing.assert_array_equal(sparse_windows.target(i),
                                          windows.target(i))
            np.testing.assert_array_equal(sparse_windows.target_mask(i),
                                          windows.target_mask(i))
            np.testing.assert_array_equal(
                sparse_windows.target_intervals(i),
                windows.target_intervals(i))

    def test_batches_bit_identical_under_same_rng(self, sparse,
                                                  windows):
        sparse_windows = BlockSparseWindowDataset(sparse, s=3, h=2)
        indices = np.arange(len(windows))
        dense_batches = list(windows.batches(
            indices, 4, rng=np.random.default_rng(7)))
        sparse_batches = list(sparse_windows.batches(
            indices, 4, rng=np.random.default_rng(7)))
        assert len(sparse_batches) == len(dense_batches)
        for got, want in zip(sparse_batches, dense_batches):
            for got_part, want_part in zip(got, want):
                np.testing.assert_array_equal(got_part, want_part)

    def test_too_short_sequence_rejected(self, sparse):
        with pytest.raises(ValueError, match="too short"):
            BlockSparseWindowDataset(sparse, s=sparse.n_intervals,
                                     h=sparse.n_intervals)
        with pytest.raises(ValueError, match=">= 1"):
            BlockSparseWindowDataset(sparse, s=0, h=1)


class TestValidationAndOccupancy:
    def test_validate_catches_denormalized_payload(self, sequence):
        sparse = BlockSparseODTensor.from_dense(sequence, _blocks(),
                                                _blocks())
        key = next(iter(sparse.blocks))
        sparse.blocks[key] = sparse.blocks[key] * 3.0
        with pytest.raises(ValueError, match="normalized"):
            sparse.validate()

    def test_validate_catches_missing_mask(self, sequence):
        sparse = BlockSparseODTensor.from_dense(sequence, _blocks(),
                                                _blocks())
        key = next(iter(sparse.blocks))
        del sparse.mask_blocks[key]
        with pytest.raises(ValueError, match="mask"):
            sparse.validate()

    def test_occupancy_report(self, sparse):
        report = sparse.occupancy()
        for field in ("block_rows", "block_cols", "occupied_blocks",
                      "block_density", "payload_bytes", "dense_bytes",
                      "compression"):
            assert field in report
        assert 0 < report["block_density"] <= 1
        assert report["payload_bytes"] == sparse.nbytes()
        assert report["compression"] > 0
