"""Tests for roster fault isolation, timeouts, and artifact-dir resume."""

import io
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.baselines.base import Forecaster
from repro.experiments import make_nh, prepare, run_comparison
from repro.telemetry import TelemetryLogger

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK,
                                reason="worker mode needs fork")


@pytest.fixture(scope="module")
def data(dataset):
    return prepare(dataset, s=3, h=2)


class _Raising(Forecaster):
    name = "boom"

    def fit(self, dataset, split, horizon):
        raise RuntimeError("kaboom")

    def predict(self, dataset, indices, horizon):  # pragma: no cover
        raise AssertionError("predict after failed fit")


class _Crashing(Forecaster):
    """Dies without raising — models a segfault/OOM-killed worker."""

    name = "crash"

    def fit(self, dataset, split, horizon):
        os._exit(17)


class _Hanging(Forecaster):
    name = "hang"

    def fit(self, dataset, split, horizon):
        time.sleep(600)

    def predict(self, dataset, indices, horizon):  # pragma: no cover
        raise AssertionError("predict after hang")


class TestFaultIsolation:
    def test_raising_method_recorded_sequentially(self, data):
        result = run_comparison(
            data, {"nh": make_nh, "boom": lambda d: _Raising()},
            max_test_windows=4)
        assert result.methods["nh"].evaluation is not None
        boom = result.methods["boom"]
        assert boom.failed
        assert boom.evaluation is None
        assert "kaboom" in boom.error
        assert result.failures() == {"boom": boom.error}

    def test_table_skips_failed_methods(self, data):
        result = run_comparison(
            data, {"nh": make_nh, "boom": lambda d: _Raising()},
            max_test_windows=4)
        assert {row["method"] for row in result.table()} == {"nh"}
        assert "FAILED" in result.format_table()
        assert "kaboom" in result.format_table()

    @needs_fork
    def test_raising_method_recorded_in_workers(self, data):
        result = run_comparison(
            data, {"nh": make_nh, "boom": lambda d: _Raising()},
            max_test_windows=4, n_jobs=2)
        assert result.methods["nh"].evaluation is not None
        assert "kaboom" in result.methods["boom"].error

    @needs_fork
    def test_dying_worker_does_not_take_roster_down(self, data):
        result = run_comparison(
            data, {"crash": lambda d: _Crashing(), "nh": make_nh},
            max_test_windows=4, n_jobs=2, retries=0)
        assert result.methods["nh"].evaluation is not None
        assert "died" in result.methods["crash"].error

    @needs_fork
    def test_timeout_recorded(self, data):
        result = run_comparison(
            data, {"hang": lambda d: _Hanging(), "nh": make_nh},
            max_test_windows=4, n_jobs=2, method_timeout=1.0, retries=0)
        assert result.methods["nh"].evaluation is not None
        assert "timed out" in result.methods["hang"].error

    @needs_fork
    def test_timeout_gets_one_retry(self, data):
        stream = io.StringIO()
        result = run_comparison(
            data, {"hang": lambda d: _Hanging()},
            max_test_windows=4, n_jobs=1, method_timeout=0.5, retries=1,
            telemetry=TelemetryLogger(stream))
        assert result.methods["hang"].failed
        import json
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        starts = [e for e in events if e["event"] == "method_start"]
        assert [e["attempt"] for e in starts] == [1, 2]
        fails = [e for e in events if e["event"] == "method_fail"]
        assert fails[0].get("will_retry") is True
        assert "will_retry" not in fails[-1]


class TestTelemetryEvents:
    def test_sequential_method_events(self, data):
        stream = io.StringIO()
        run_comparison(data, {"nh": make_nh, "boom": lambda d: _Raising()},
                       max_test_windows=4,
                       telemetry=TelemetryLogger(stream))
        import json
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        by_kind = {}
        for event in events:
            by_kind.setdefault(event["event"], []).append(event)
        assert len(by_kind["method_start"]) == 2
        assert by_kind["method_end"][0]["method"] == "nh"
        assert by_kind["method_fail"][0]["method"] == "boom"


class TestArtifactDirResume:
    def test_rerun_skips_completed_methods(self, data, tmp_path):
        artifact_dir = tmp_path / "artifacts"
        first = run_comparison(data, {"nh": make_nh}, max_test_windows=4,
                               artifact_dir=artifact_dir)
        assert (artifact_dir / "nh.npz").exists()

        # Rerun with a factory that would fail if actually invoked: the
        # artifact must be used instead.
        def poisoned(_data):
            raise AssertionError("factory called despite artifact")

        stream = io.StringIO()
        second = run_comparison(data, {"nh": poisoned}, max_test_windows=4,
                                artifact_dir=artifact_dir,
                                telemetry=TelemetryLogger(stream))
        assert "method_skip" in stream.getvalue()
        for metric in ("kl", "js", "emd"):
            assert np.array_equal(
                first.methods["nh"].evaluation.per_step[metric],
                second.methods["nh"].evaluation.per_step[metric])

    def test_failed_methods_not_persisted(self, data, tmp_path):
        artifact_dir = tmp_path / "artifacts"
        run_comparison(data, {"boom": lambda d: _Raising()},
                       max_test_windows=4, artifact_dir=artifact_dir)
        assert not (artifact_dir / "boom.npz").exists()

    def test_stale_artifact_recomputed(self, data, tmp_path):
        artifact_dir = tmp_path / "artifacts"
        run_comparison(data, {"nh": make_nh}, max_test_windows=4,
                       artifact_dir=artifact_dir)
        # Different test windows -> stale artifact must be ignored.
        result = run_comparison(data, {"nh": make_nh}, max_test_windows=6,
                                artifact_dir=artifact_dir)
        assert result.methods["nh"].evaluation is not None
        assert len(result.methods["nh"].test_indices) == 6

    def test_partial_roster_completes_missing_methods(self, data,
                                                      tmp_path):
        from repro.experiments import make_gp
        artifact_dir = tmp_path / "artifacts"
        run_comparison(data, {"nh": make_nh}, max_test_windows=4,
                       artifact_dir=artifact_dir)
        result = run_comparison(data, {"nh": make_nh, "gp": make_gp},
                                max_test_windows=4,
                                artifact_dir=artifact_dir)
        assert set(result.methods) == {"nh", "gp"}
        assert result.methods["gp"].evaluation is not None
        assert (artifact_dir / "gp.npz").exists()
