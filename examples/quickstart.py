#!/usr/bin/env python3
"""Quickstart: forecast stochastic OD matrices on a small synthetic city.

Walks the full pipeline in a couple of minutes on a laptop:

1. generate synthetic taxi trips for a 12-region city,
2. aggregate them into sparse OD stochastic speed tensors,
3. train the paper's two frameworks (BF and AF) plus the NH baseline,
4. report KL / JS / EMD per forecast step on held-out test windows.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import prepare, run_comparison, toy_dataset
from repro.experiments import MethodBudget, make_af, make_bf, make_nh


def main() -> None:
    print("Generating a synthetic 12-region city with 6 days of trips...")
    dataset = toy_dataset(n_days=6, n_regions=12, seed=7)
    print(f"  {len(dataset.trips):,} trips over "
          f"{dataset.field.n_intervals} 15-minute intervals")

    # s historical intervals in, h future intervals out (paper: s=6, h=3).
    data = prepare(dataset, s=6, h=3)
    sparsity = data.sequence.sparsity().mean()
    print(f"  mean per-interval cell sparsity: {sparsity:.1%} "
          "(this is the challenge the frameworks address)")

    budget = MethodBudget(epochs=8, batch_size=16, max_train_batches=12,
                          patience=4, seed=0)
    roster = {
        "nh": make_nh,
        "bf": lambda d: make_bf(d, budget),
        "af": lambda d: make_af(d, budget),
    }
    print("\nTraining NH, BF, AF (a couple of minutes on one core)...")
    result = run_comparison(data, roster, max_test_windows=40)

    print("\nHeld-out accuracy (lower is better):")
    print(result.format_table())

    print("\nForecasting one window by hand:")
    forecaster = make_bf(data, budget)
    forecaster.fit(data.windows, data.split, horizon=3)
    window = data.split.test[0]
    forecast = forecaster.predict(data.windows, np.array([window]), 3)
    cell = forecast[0, 0, 0, 1]
    spec = data.sequence.spec
    print("  speed histogram for OD pair (0, 1), next interval (m/s):")
    from repro.viz import histogram_bars
    print(histogram_bars(cell, edges=spec.edges))


if __name__ == "__main__":
    main()
