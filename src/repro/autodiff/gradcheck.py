"""Numerical gradient checking for the autodiff substrate.

Central-difference verification of analytic gradients; used throughout the
test suite to validate every op and layer.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor],
                       inputs: Sequence[Tensor],
                       index: int,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(*inputs).item()
        flat[i] = original - eps
        down = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor],
                    inputs: Sequence[Tensor],
                    atol: float = 1e-5,
                    rtol: float = 1e-4,
                    eps: float = 1e-6) -> None:
    """Assert analytic gradients of scalar ``fn`` match central differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.grad = None
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients expects a scalar-valued function")
    out.backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
