"""Drivers behind the paper's figures (7 through 14).

Each function returns plain dict/array results that the benchmark
harnesses print; no plotting dependency is required to *regenerate* the
numbers behind every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..graph.proximity import ProximityConfig
from ..histograms.tensor_builder import ODTensorSequence
from ..metrics.evaluation import (distance_groups, grouped_metric,
                                  time_of_day_groups)
from .methods import MethodBudget, QUICK_BUDGET, make_af
from .runner import ComparisonResult, ExperimentData


# ----------------------------------------------------------------------
# Figure 7: sparseness of original and preprocessed data
# ----------------------------------------------------------------------
def sparseness_report(sequence: ODTensorSequence,
                      min_trips_levels: Sequence[int] = (1, 3, 5)
                      ) -> Dict[str, object]:
    """Sparseness statistics at increasing preprocessing thresholds.

    "Original" keeps every cell with >= 1 trip; "preprocessed" variants
    require more trips per cell (which trades coverage for histogram
    reliability), mirroring the original-vs-preprocessed comparison of
    the paper's Figure 7.
    """
    report: Dict[str, object] = {
        "n_intervals": sequence.n_intervals,
        "overall_pair_coverage": sequence.coverage(),
    }
    per_level = {}
    for level in min_trips_levels:
        mask = sequence.counts >= level
        per_interval = mask.reshape(sequence.n_intervals, -1).mean(axis=1)
        per_level[level] = {
            "mean_cell_coverage": float(per_interval.mean()),
            "median_cell_coverage": float(np.median(per_interval)),
            "p90_cell_coverage": float(np.percentile(per_interval, 90)),
            "any_interval_pair_coverage": float(mask.any(axis=0).mean()),
        }
    report["by_min_trips"] = per_level
    return report


# ----------------------------------------------------------------------
# Figures 8-10: accuracy by time of day (plus data-share bars)
# ----------------------------------------------------------------------
def time_of_day_analysis(data: ExperimentData,
                         comparison: ComparisonResult,
                         metric: str = "emd",
                         hours_per_block: int = 3) -> Dict[str, dict]:
    """Per-3-hour-block accuracy for every method with kept predictions.

    Requires ``run_comparison(..., keep_predictions=True)``.  Returns
    ``{method: {"value": (8,), "share": (8,)}}`` — the curve and the data
    bars of Figures 8–10.
    """
    windows = data.windows
    intervals_per_day = int(round(
        24 * 60 / data.sequence.interval_minutes))
    n_blocks = 24 // hours_per_block
    results: Dict[str, dict] = {}
    for name, method in comparison.methods.items():
        if method.predictions is None:
            continue
        test = method.test_indices
        _, truth, masks = windows.gather(test)
        target_intervals = np.stack(
            [windows.target_intervals(i) for i in test])
        groups = time_of_day_groups(target_intervals, intervals_per_day,
                                    hours_per_block)
        results[name] = grouped_metric(truth, method.predictions, masks,
                                       groups, n_blocks, metric=metric)
    return results


# ----------------------------------------------------------------------
# Figures 11-13: accuracy by OD centroid distance
# ----------------------------------------------------------------------
def distance_analysis(data: ExperimentData,
                      comparison: ComparisonResult,
                      metric: str = "emd",
                      edges_km: Optional[Sequence[float]] = None
                      ) -> Dict[str, dict]:
    """Per-distance-band accuracy for every method with kept predictions.

    Bands default to the paper's six 0.5 km groups below 3 km; OD pairs
    beyond the last edge are excluded (group -1).
    """
    distances = data.city.centroid_distances()
    groups = distance_groups(distances, edges_km)
    n_groups = int(groups.max()) + 1 if (groups >= 0).any() else 0
    windows = data.windows
    results: Dict[str, dict] = {}
    for name, method in comparison.methods.items():
        if method.predictions is None:
            continue
        _, truth, masks = windows.gather(method.test_indices)
        results[name] = grouped_metric(truth, method.predictions, masks,
                                       groups, n_groups, metric=metric,
                                       cell_groups=True)
    return results


# ----------------------------------------------------------------------
# Figure 14: sensitivity of AF to the proximity parameters
# ----------------------------------------------------------------------
@dataclass
class ProximitySweepResult:
    """AF accuracy for each proximity-parameter setting."""

    parameter: str
    values: list
    metrics: Dict[str, list]


def proximity_sweep(data: ExperimentData, parameter: str,
                    values: Sequence[float],
                    budget: MethodBudget = QUICK_BUDGET,
                    metrics: Sequence[str] = ("kl", "js", "emd"),
                    max_test_windows: int = 32) -> ProximitySweepResult:
    """Retrain AF for each α or σ value and score it (paper Fig. 14).

    ``parameter`` is ``"alpha"`` or ``"sigma"``; the other parameter is
    held at the city's default.
    """
    if parameter not in ("alpha", "sigma"):
        raise ValueError("parameter must be 'alpha' or 'sigma'")
    from ..metrics.evaluation import evaluate_forecasts

    windows, split = data.windows, data.split
    default = data.city.default_proximity_config()
    test = split.test
    if len(test) > max_test_windows:
        keep = np.linspace(0, len(test) - 1, max_test_windows).astype(int)
        test = test[keep]
    _, truth, masks = windows.gather(test)
    result = ProximitySweepResult(parameter=parameter, values=list(values),
                                  metrics={m: [] for m in metrics})
    for value in values:
        if parameter == "alpha":
            config = ProximityConfig(sigma=default.sigma, alpha=value)
        else:
            config = ProximityConfig(sigma=value, alpha=default.alpha)
        weights = data.city.proximity(config)
        forecaster = make_af(data, budget=budget,
                             origin_weights=weights, dest_weights=weights)
        forecaster.fit(windows, split, horizon=windows.h)
        predictions = forecaster.predict(windows, test, horizon=windows.h)
        evaluation = evaluate_forecasts(truth, predictions, masks,
                                        metrics=metrics)
        for metric in metrics:
            result.metrics[metric].append(evaluation.overall(metric))
    return result
