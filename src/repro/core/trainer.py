"""Training loop shared by BF, AF, and the deep-learning baselines.

Implements the paper's published optimization recipe (§VI-A5): Adam with
initial learning rate 0.001, decay ×0.8 every 5 epochs, dropout 0.2 in the
models, early stopping on validation loss with best-weight restoration.

Long runs are crash-safe: ``fit(checkpoint_dir=...)`` writes an atomic
rolling checkpoint (model + optimizer + scheduler + curves + every RNG
the loop consumes) plus a ``best.npz``, and ``resume=True`` continues an
interrupted run with bit-identical final weights versus an uninterrupted
one.  Per-epoch progress can be streamed as JSONL events through the
optional ``telemetry`` hook (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from ..autodiff.module import Module
from ..autodiff.optim import Adam, StepDecay, clip_grad_norm
from ..autodiff.tensor import Tensor
from ..contracts import check_finite, get_contract_policy
from ..histograms.windows import Split, WindowDataset
from ..telemetry import TelemetrySink, emit, peak_rss_mb
from .losses import masked_frobenius

LossFn = Callable[[Tensor, np.ndarray, np.ndarray,
                   Optional[Tensor], Optional[Tensor]], Tensor]

#: Rolling-checkpoint and best-weights file names inside checkpoint_dir.
CHECKPOINT_NAME = "checkpoint.npz"
BEST_NAME = "best.npz"

#: Valid settings for TrainConfig.on_nonfinite_grad.
NONFINITE_GRAD_POLICIES = ("skip", "halve_lr", "abort")

#: Valid settings for TrainConfig.engine (see docs/EXECUTION.md).
ENGINE_MODES = ("eager", "replay", "lowered")


class NonFiniteGradError(FloatingPointError):
    """A training batch produced a NaN/Inf gradient and the configured
    policy is ``"abort"`` (see :class:`TrainConfig.on_nonfinite_grad`).

    Carries ``epoch`` and ``batch`` so harnesses can report where the
    gradient blew up; rerun inside
    :func:`repro.autodiff.detect_anomaly` to learn *which op* produced
    the first non-finite value.
    """

    def __init__(self, message: str, epoch: int = -1, batch: int = -1):
        super().__init__(message)
        self.epoch = epoch
        self.batch = batch


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (defaults follow the paper)."""

    epochs: int = 30
    batch_size: int = 16
    learning_rate: float = 1e-3
    decay_factor: float = 0.8
    decay_every: int = 5
    clip_norm: float = 5.0
    patience: int = 8
    seed: int = 0
    max_train_batches: Optional[int] = None
    max_val_batches: Optional[int] = None
    verbose: bool = False
    #: What to do when a batch yields a non-finite gradient norm:
    #: ``"skip"`` drops the update and keeps going, ``"halve_lr"`` drops
    #: the update and halves the learning rate, ``"abort"`` raises
    #: :class:`NonFiniteGradError`.  Every occurrence emits a
    #: ``nonfinite_grad`` telemetry event.
    on_nonfinite_grad: str = "skip"
    #: Training-step execution engine: ``"eager"`` rebuilds the autodiff
    #: graph every step; ``"replay"`` captures it once per batch
    #: signature and re-executes the recorded tape; ``"lowered"``
    #: additionally compiles each tape into a flat instruction plan with
    #: fused elementwise chains and a precomputed backward schedule.
    #: All three are bit-for-bit identical (see
    #: :mod:`repro.autodiff.replay`, :mod:`repro.autodiff.lowering` and
    #: docs/EXECUTION.md).
    engine: str = "eager"

    def __post_init__(self):
        if self.on_nonfinite_grad not in NONFINITE_GRAD_POLICIES:
            raise ValueError(
                f"on_nonfinite_grad must be one of "
                f"{NONFINITE_GRAD_POLICIES}, got "
                f"{self.on_nonfinite_grad!r}")
        if self.engine not in ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {ENGINE_MODES}, got "
                f"{self.engine!r}")


@dataclass
class TrainResult:
    """Learning curves and timing returned by :meth:`Trainer.fit`."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    seconds: float = 0.0
    #: True when training stopped because validation loss went non-finite.
    diverged: bool = False


def _module_rngs(model: Module) -> List[np.random.Generator]:
    """Every distinct Generator owned by the model's modules (dropout).

    Discovery order is the deterministic module-tree walk, so states can
    be saved and restored positionally across processes.
    """
    rngs, seen = [], set()
    for module in model.modules():
        for value in vars(module).values():
            if isinstance(value, np.random.Generator) \
                    and id(value) not in seen:
                seen.add(id(value))
                rngs.append(value)
    return rngs


def _global_grad_norm(parameters) -> float:
    """L2 norm over all parameter gradients (NaN/Inf propagate)."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(np.square(parameter.grad)))
    return float(np.sqrt(total))


class Trainer:
    """Fits a forecasting model on windowed OD tensor data.

    The model contract is ``model(history, horizon) -> (prediction,
    r_factors, c_factors)`` where the factor tensors may be ``None`` (as
    for the FC baseline); ``loss_fn(prediction, truth, mask, r, c)``
    builds the training objective.
    """

    def __init__(self, model: Module, loss_fn: LossFn,
                 config: TrainConfig = None, sharding=None):
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or TrainConfig()
        self.sharding = sharding
        if sharding is not None:
            if not hasattr(model, "set_sharding"):
                raise ValueError(
                    f"{type(model).__name__} does not support sharded "
                    f"execution (no set_sharding hook)")
            model.set_sharding(sharding)
            if self.config.engine != "eager":
                # Sharded forwards re-plan their work per occupancy
                # pattern; a replay tape would pin the first pattern's
                # buffer arena, so sharding forces the eager engine.
                warnings.warn(
                    f"sharded execution forces engine='eager' "
                    f"(requested {self.config.engine!r})",
                    RuntimeWarning)
                self.config.engine = "eager"
        # The replay/lowered engines hand Adam a gradient for every
        # parameter on every step, which is exactly what the flat
        # vectorized path needs; eager mode keeps the per-parameter loop
        # (numerically they are bit-for-bit identical either way).
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate,
                              flat=(self.config.engine != "eager"))
        self.scheduler = StepDecay(self.optimizer,
                                   factor=self.config.decay_factor,
                                   every=self.config.decay_every)

    # ------------------------------------------------------------------
    def data_parallel_units(self):
        """The sharded (side, shard) work units of this run's stage 1.

        Empty without sharding.  Each unit owns a disjoint set of slice
        rows and shares parameters with the rest — see
        :class:`repro.core.shardexec.DataParallelUnit`.
        """
        if self.sharding is None:
            return []
        return self.sharding.data_parallel_units()

    # ------------------------------------------------------------------
    def fit(self, dataset: WindowDataset, split: Split, horizon: int,
            checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1, resume: bool = False,
            telemetry: TelemetrySink = None,
            after_backward: Optional[Callable] = None) -> TrainResult:
        """Train with early stopping; optionally crash-safe.

        With ``checkpoint_dir`` set, a rolling ``checkpoint.npz`` is
        written atomically every ``checkpoint_every`` epochs and
        ``best.npz`` tracks the best validation weights.  ``resume=True``
        picks up from the rolling checkpoint (if present) and produces
        bit-identical final weights and loss curves versus a run that
        was never interrupted; a corrupt rolling checkpoint falls back
        to ``best.npz`` with a warning instead of crashing.
        ``telemetry`` receives the per-epoch events documented in
        :mod:`repro.telemetry`.  ``after_backward(model, epoch, batch)``
        is called after each backward pass, before gradient clipping —
        the hook point used by :mod:`repro.faultinject` to poison
        gradients; user callbacks may also inspect or edit them here.

        Incoming batches are checked against the data contract
        (non-finite histories/targets hard-error, boundary
        ``"trainer.fit"``) unless the process-wide contract policy is
        ``"off"``.  Non-finite *gradients* are governed by
        :attr:`TrainConfig.on_nonfinite_grad`.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        best_state = self.model.state_dict()
        stall = 0
        start_epoch = 0
        checkpoint_path = best_path = None
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            checkpoint_path = directory / CHECKPOINT_NAME
            best_path = directory / BEST_NAME
            if resume and checkpoint_path.exists():
                start_epoch, best_state, stall = self._restore(
                    checkpoint_path, best_path, rng, result, telemetry)
        emit(telemetry, "fit_start", epochs=cfg.epochs,
             start_epoch=start_epoch, n_train=len(split.train),
             n_val=len(split.val))
        if self.sharding is not None:
            emit(telemetry, "sharding",
                 units=len(self.data_parallel_units()),
                 **self.sharding.describe())
        contracts = get_contract_policy()
        engine = None
        if cfg.engine in ("replay", "lowered"):
            from ..autodiff.replay import ReplayEngine
            engine = ReplayEngine(self.model, self.loss_fn,
                                  lower=(cfg.engine == "lowered"))
            if start_epoch > 0:
                # Belt and braces after a checkpoint restore: tapes are
                # only recorded after this point, but any future restore
                # path added before the loop must not replay stale state.
                engine.invalidate()
        # One parameter-list walk per fit, not one per batch: the
        # optimizer already holds the model's parameters in traversal
        # order, and gradient clipping only needs that list.
        params = self.optimizer.parameters
        start = time.time() - result.seconds    # accumulate across resumes
        for epoch in range(start_epoch, cfg.epochs):
            epoch_start = time.time()
            self.model.train()
            epoch_losses = []
            grad_norms = []
            batches = dataset.batches(split.train, cfg.batch_size, rng=rng)
            for b, (histories, targets, masks) in enumerate(batches):
                if cfg.max_train_batches is not None \
                        and b >= cfg.max_train_batches:
                    break
                if contracts.enabled:
                    check_finite(histories, f"batch[{b}] histories",
                                 "trainer.fit", contracts)
                    check_finite(targets, f"batch[{b}] targets",
                                 "trainer.fit", contracts)
                loss = None
                if engine is not None and not contracts.strict:
                    # Strict contract mode wants every repair path and
                    # per-op check live, so it stays on eager graphs;
                    # the engine itself declines under detect_anomaly().
                    loss = engine.forward(histories, targets, masks,
                                          horizon)
                if loss is not None:
                    # optimizer.zero_grad clears the cached parameter
                    # list directly instead of re-walking the module
                    # tree.
                    self.optimizer.zero_grad()
                    engine.backward(loss)
                else:
                    prediction, r, c = self.model(histories, horizon)
                    loss = self.loss_fn(prediction, targets, masks, r, c)
                    self.optimizer.zero_grad()
                    loss.backward()
                if after_backward is not None:
                    after_backward(self.model, epoch, b)
                if cfg.clip_norm:
                    grad_norm = clip_grad_norm(params, cfg.clip_norm)
                else:
                    grad_norm = _global_grad_norm(params)
                if not np.isfinite(grad_norm):
                    self._handle_nonfinite_grad(grad_norm, epoch, b,
                                                telemetry)
                    continue    # never step on a poisoned gradient
                grad_norms.append(grad_norm)
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.scheduler.step()
            train_loss = float(np.mean(epoch_losses)) if epoch_losses \
                else float("nan")
            val_loss = self.evaluate(dataset, split.val, horizon,
                                     max_batches=cfg.max_val_batches)
            result.train_losses.append(train_loss)
            result.val_losses.append(val_loss)
            if cfg.verbose:
                print(f"epoch {epoch + 1:3d}  train {train_loss:.5f}  "
                      f"val {val_loss:.5f}  lr {self.optimizer.lr:.2e}")
            emit(telemetry, "epoch", epoch=epoch, train_loss=train_loss,
                 val_loss=val_loss, lr=self.optimizer.lr,
                 grad_norm=(float(np.mean(grad_norms))
                            if grad_norms else None),
                 seconds=time.time() - epoch_start,
                 peak_rss_mb=peak_rss_mb())
            if not np.isfinite(val_loss):
                # A diverged run must not masquerade as a trained one:
                # flag it, tell the caller, and stop consuming epochs.
                result.diverged = True
                warnings.warn(
                    f"validation loss became non-finite ({val_loss}) at "
                    f"epoch {epoch + 1}; stopping early and restoring "
                    f"the best weights seen so far (epoch "
                    f"{result.best_epoch + 1})", RuntimeWarning)
                emit(telemetry, "divergence", epoch=epoch,
                     val_loss=val_loss)
                break
            if val_loss < result.best_val_loss - 1e-7:
                result.best_val_loss = val_loss
                result.best_epoch = epoch
                best_state = self.model.state_dict()
                stall = 0
                if best_path is not None:
                    from ..persistence import save_model
                    save_model(self.model, best_path)
            else:
                stall += 1
                if stall >= cfg.patience:
                    emit(telemetry, "early_stop", epoch=epoch, stall=stall)
                    break
            if checkpoint_path is not None \
                    and (epoch + 1) % max(checkpoint_every, 1) == 0:
                result.seconds = time.time() - start
                self._checkpoint(checkpoint_path, epoch, rng, result,
                                 best_state, stall)
                emit(telemetry, "checkpoint", epoch=epoch,
                     path=str(checkpoint_path))
        self.model.load_state_dict(best_state)
        result.seconds = time.time() - start
        if engine is not None:
            emit(telemetry, "engine", mode=cfg.engine, **engine.stats())
            if cfg.engine == "lowered":
                emit(telemetry, "lowering",
                     arena_nbytes=engine.arena_nbytes(),
                     fallbacks=engine.plan_fallbacks,
                     **engine.plan_stats())
            engine.invalidate()     # release the arenas with the run
        emit(telemetry, "fit_end", epochs_run=len(result.val_losses),
             best_epoch=result.best_epoch,
             best_val_loss=result.best_val_loss, seconds=result.seconds,
             diverged=result.diverged)
        return result

    # ------------------------------------------------------------------
    def _handle_nonfinite_grad(self, grad_norm: float, epoch: int,
                               batch: int,
                               telemetry: TelemetrySink) -> None:
        """Apply :attr:`TrainConfig.on_nonfinite_grad`.

        The caller has already decided to drop the update; this method
        only reports and applies the policy's side effect.
        """
        action = self.config.on_nonfinite_grad
        emit(telemetry, "nonfinite_grad", epoch=epoch, batch=batch,
             grad_norm=float(grad_norm), action=action,
             lr=self.optimizer.lr)
        if action == "abort":
            raise NonFiniteGradError(
                f"gradient norm became {grad_norm} at epoch {epoch + 1}, "
                f"batch {batch} (on_nonfinite_grad='abort'); rerun under "
                f"repro.autodiff.detect_anomaly() to find the op that "
                f"produced it", epoch=epoch, batch=batch)
        if action == "halve_lr":
            # Through the scheduler, so the halving sticks across its
            # per-epoch recompute and across checkpoint resumes.
            self.scheduler.scale_lr(0.5)
        warnings.warn(
            f"non-finite gradient norm ({grad_norm}) at epoch "
            f"{epoch + 1}, batch {batch}; update dropped "
            f"(policy: {action})", RuntimeWarning)

    # ------------------------------------------------------------------
    def _checkpoint(self, path: Path, epoch: int,
                    rng: np.random.Generator, result: TrainResult,
                    best_state: dict, stall: int) -> None:
        """Write the rolling checkpoint (atomic; see persistence docs)."""
        from ..persistence import save_checkpoint
        save_checkpoint(
            path, self.model, optimizer=self.optimizer,
            scheduler=self.scheduler, epoch=epoch, result=result,
            rng_state=rng.bit_generator.state, best_state=best_state,
            extra={"stall": stall,
                   "module_rng": [g.bit_generator.state
                                  for g in _module_rngs(self.model)]})

    def _restore(self, path: Path, best_path: Optional[Path],
                 rng: np.random.Generator, result: TrainResult,
                 telemetry: TelemetrySink = None):
        """Load the rolling checkpoint into the live training objects.

        A corrupt rolling checkpoint (truncated or bit-flipped on disk)
        does not kill the run: training falls back to the ``best.npz``
        weights if present — restarting the epoch count, since optimizer
        and curve state died with the checkpoint — or to a fresh start,
        each with a warning and a ``checkpoint_fallback`` telemetry
        event.
        """
        from ..persistence import CheckpointCorruptError, load_checkpoint
        try:
            checkpoint = load_checkpoint(path, model=self.model,
                                         optimizer=self.optimizer,
                                         scheduler=self.scheduler)
        except CheckpointCorruptError as exc:
            fallback = "fresh start"
            if best_path is not None and best_path.exists():
                from ..persistence import load_model
                load_model(self.model, best_path)
                fallback = f"best weights from {best_path.name}"
            warnings.warn(
                f"rolling checkpoint {path} is corrupt ({exc}); "
                f"resuming from {fallback} at epoch 1", RuntimeWarning)
            emit(telemetry, "checkpoint_fallback", path=str(path),
                 fallback=fallback, error=str(exc))
            return 0, self.model.state_dict(), 0
        if checkpoint.rng_state is not None:
            rng.bit_generator.state = checkpoint.rng_state
        module_states = checkpoint.extra.get("module_rng", [])
        for generator, state in zip(_module_rngs(self.model),
                                    module_states):
            generator.bit_generator.state = state
        saved = checkpoint.result_state or {}
        result.train_losses[:] = saved.get("train_losses", [])
        result.val_losses[:] = saved.get("val_losses", [])
        result.best_epoch = saved.get("best_epoch", -1)
        result.best_val_loss = saved.get("best_val_loss", float("inf"))
        result.seconds = saved.get("seconds", 0.0)
        result.diverged = saved.get("diverged", False)
        best_state = checkpoint.best_state or self.model.state_dict()
        return checkpoint.epoch + 1, best_state, \
            int(checkpoint.extra.get("stall", 0))

    # ------------------------------------------------------------------
    def evaluate(self, dataset: WindowDataset, indices: np.ndarray,
                 horizon: int, max_batches: Optional[int] = None) -> float:
        """Mean masked-Frobenius data loss over the given windows."""
        was_training = self.model.training
        self.model.eval()
        losses = []
        batches = dataset.batches(indices, self.config.batch_size)
        for b, (histories, targets, masks) in enumerate(batches):
            if max_batches is not None and b >= max_batches:
                break
            prediction, _, _ = self.model(histories, horizon)
            losses.append(masked_frobenius(prediction, targets,
                                           masks).item())
        if was_training:
            self.model.train()
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        """Forecast tensors for the given windows, ``(B, h, N, N', K)``."""
        was_training = self.model.training
        self.model.eval()
        outputs = []
        for histories, _, _ in dataset.batches(indices,
                                               self.config.batch_size):
            prediction, _, _ = self.model(histories, horizon)
            outputs.append(prediction.numpy())
        if was_training:
            self.model.train()
        return np.concatenate(outputs, axis=0)
