"""Tests for the GCNN spatial factorizer (AF stage 1)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import GCNNBlock, SpatialFactorizer, factorize_tensor_batch
from repro.graph import build_proximity


@pytest.fixture
def weights(rng):
    return build_proximity(rng.uniform(0, 5, size=(12, 2)))


@pytest.fixture
def factorizer(weights, rng):
    return SpatialFactorizer(weights, n_buckets=4, rank=3, rng=rng,
                             blocks=[GCNNBlock(8, 3, 1), GCNNBlock(6, 2, 1)])


class TestSpatialFactorizer:
    def test_output_shape(self, factorizer, rng):
        out = factorizer(Tensor(rng.uniform(size=(5, 12, 4))))
        assert out.shape == (5, 3, 4)

    def test_pooled_size_consistent(self, factorizer):
        # Two single-level pools: ~12/4 clusters (padding dependent).
        assert factorizer.pooled_size >= 3
        assert factorizer.pooled_size <= 6

    def test_gcnn_block_validation(self):
        with pytest.raises(ValueError):
            GCNNBlock(filters=0, order=2)
        with pytest.raises(ValueError):
            GCNNBlock(filters=2, order=0)

    def test_requires_blocks(self, weights, rng):
        with pytest.raises(ValueError):
            SpatialFactorizer(weights, 4, 3, rng, blocks=[])

    def test_no_pooling_block(self, weights, rng):
        f = SpatialFactorizer(weights, 4, 3, rng,
                              blocks=[GCNNBlock(8, 2, 0)])
        out = f(Tensor(rng.uniform(size=(2, 12, 4))))
        assert out.shape == (2, 3, 4)

    def test_gradients_flow(self, factorizer, rng):
        x = Tensor(rng.uniform(size=(3, 12, 4)), requires_grad=True)
        (factorizer(x) ** 2).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
        missing = [n for n, p in factorizer.named_parameters()
                   if p.grad is None]
        assert not missing

    def test_spatially_smooth_inputs_produce_similar_codes(
            self, weights, rng):
        """Two inputs that differ only on one region should produce
        closer codes than two unrelated inputs (locality sanity)."""
        f = SpatialFactorizer(weights, 4, 3, rng,
                              blocks=[GCNNBlock(8, 2, 1)])
        base = rng.uniform(size=(1, 12, 4))
        bumped = base.copy()
        bumped[0, 0] += 0.3
        unrelated = rng.uniform(size=(1, 12, 4))
        out_base = f(Tensor(base)).numpy()
        out_bump = f(Tensor(bumped)).numpy()
        out_other = f(Tensor(unrelated)).numpy()
        assert np.abs(out_base - out_bump).mean() \
            < np.abs(out_base - out_other).mean()


class TestFactorizeTensorBatch:
    def test_shapes(self, rng):
        w_o = build_proximity(rng.uniform(0, 5, size=(6, 2)))
        w_d = build_proximity(rng.uniform(0, 5, size=(8, 2)))
        f_r = SpatialFactorizer(w_d, 3, 2, rng, blocks=[GCNNBlock(4, 2, 1)])
        f_c = SpatialFactorizer(w_o, 3, 2, rng, blocks=[GCNNBlock(4, 2, 1)])
        tensors = Tensor(rng.uniform(size=(5, 6, 8, 3)))
        r, c = factorize_tensor_batch(f_r, f_c, tensors)
        assert r.shape == (5, 6, 2, 3)
        assert c.shape == (5, 2, 8, 3)
