"""Histogram substrate: stochastic speeds, OD tensors, windowed samples."""

from .blocksparse import (BlockSparseODTensor, BlockSparseWindowDataset,
                          build_block_sparse_od_tensors)
from .histogram import (HistogramSpec, is_valid_histogram,
                        normalize_histogram, rebin_histogram)
from .tensor_builder import (ODTensorSequence, build_od_tensors,
                             ground_truth_tensors)
from .travel_time import TravelTimeDistribution, travel_time_distribution
from .windows import Split, WindowDataset, chronological_split

__all__ = [
    "HistogramSpec", "is_valid_histogram", "normalize_histogram",
    "rebin_histogram",
    "ODTensorSequence", "build_od_tensors", "ground_truth_tensors",
    "WindowDataset", "Split", "chronological_split",
    "TravelTimeDistribution", "travel_time_distribution",
    "BlockSparseODTensor", "BlockSparseWindowDataset",
    "build_block_sparse_od_tensors",
]
