"""Tests for the operational forecast facade."""

import numpy as np
import pytest

from repro.baselines import NaiveHistogram
from repro.experiments import MethodBudget, make_bf, prepare
from repro.forecast import forecast_latest


class TestForecastLatest:
    def test_shape_and_validity_with_nh(self, dataset, windows, split):
        nh = NaiveHistogram()
        nh.fit(windows, split, horizon=2)
        out = forecast_latest(nh, windows.sequence, s=3, horizon=2)
        n = windows.sequence.n_origins
        assert out.shape == (2, n, n, 7)
        assert np.allclose(out.sum(-1), 1.0)

    def test_with_trained_bf(self, dataset):
        data = prepare(dataset, s=3, h=2)
        bf = make_bf(data, MethodBudget(epochs=1, batch_size=8,
                                        max_train_batches=3))
        bf.fit(data.windows, data.split, horizon=2)
        out = forecast_latest(bf, data.sequence, s=3, horizon=2)
        assert out.shape[0] == 2
        assert np.allclose(out.sum(-1), 1.0, atol=1e-5)

    def test_uses_the_tail_of_the_sequence(self, dataset):
        """Feeding a truncated sequence must change the forecast (the
        facade reads the last s intervals, not a fixed window)."""
        data = prepare(dataset, s=3, h=1)
        bf = make_bf(data, MethodBudget(epochs=1, batch_size=8,
                                        max_train_batches=3))
        bf.fit(data.windows, data.split, horizon=1)
        bf.model.eval()
        full = forecast_latest(bf, data.sequence, s=3, horizon=1)
        earlier = forecast_latest(bf, data.sequence.slice(0, 100), s=3,
                                  horizon=1)
        assert not np.allclose(full, earlier)

    def test_too_short_sequence_rejected(self, sequence):
        nh = NaiveHistogram()
        with pytest.raises(ValueError):
            forecast_latest(nh, sequence.slice(0, 2), s=3, horizon=1)
