"""Tests for Graclus coarsening and the pooling permutation."""

import numpy as np
import pytest

from repro.graph import (coarsen_adjacency, coarsen_graph,
                         heavy_edge_matching)


@pytest.fixture
def weights(rng):
    from repro.graph import build_proximity
    pts = rng.uniform(0, 6, size=(14, 2))
    return build_proximity(pts)


class TestHeavyEdgeMatching:
    def test_clusters_cover_all_nodes(self, weights):
        cluster = heavy_edge_matching(weights)
        assert (cluster >= 0).all()
        assert len(cluster) == len(weights)

    def test_cluster_sizes_at_most_two(self, weights):
        cluster = heavy_edge_matching(weights)
        _, counts = np.unique(cluster, return_counts=True)
        assert counts.max() <= 2

    def test_matched_pairs_are_neighbors(self, weights):
        cluster = heavy_edge_matching(weights)
        for cid in np.unique(cluster):
            members = np.flatnonzero(cluster == cid)
            if len(members) == 2:
                i, j = members
                assert weights[i, j] > 0

    def test_roughly_halves(self, weights):
        cluster = heavy_edge_matching(weights)
        n_coarse = cluster.max() + 1
        assert n_coarse <= len(weights)
        assert n_coarse >= len(weights) / 2

    def test_isolated_nodes_become_singletons(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        cluster = heavy_edge_matching(w)
        assert cluster[0] == cluster[1]
        assert cluster[2] != cluster[0]


class TestCoarsenAdjacency:
    def test_weight_conservation_off_diagonal(self):
        w = np.array([[0, 2, 1, 0],
                      [2, 0, 0, 3],
                      [1, 0, 0, 1],
                      [0, 3, 1, 0]], dtype=float)
        cluster = np.array([0, 0, 1, 1])
        coarse = coarsen_adjacency(w, cluster)
        # edges between the clusters: (0,2)+(0,3)+(1,2)+(1,3) = 1+0+0+3
        assert coarse[0, 1] == pytest.approx(4.0)
        assert coarse[0, 0] == 0.0  # self loops dropped

    def test_symmetry_preserved(self, weights):
        cluster = heavy_edge_matching(weights)
        coarse = coarsen_adjacency(weights, cluster)
        assert np.allclose(coarse, coarse.T)


class TestCoarsenGraph:
    def test_zero_levels_is_identity(self, weights):
        c = coarsen_graph(weights, 0)
        assert np.allclose(c.graphs[0], weights)
        assert np.array_equal(c.perm, np.arange(len(weights)))

    def test_level_count(self, weights):
        c = coarsen_graph(weights, 2)
        assert len(c.graphs) == 3
        assert c.levels == 2

    def test_padded_size_divisible(self, weights):
        c = coarsen_graph(weights, 2)
        assert c.padded_size(0) % 4 == 0
        assert c.padded_size(0) // 4 == c.graphs[2].shape[0]

    def test_perm_contains_all_real_nodes(self, weights):
        c = coarsen_graph(weights, 2)
        real = c.perm[c.perm < len(weights)]
        assert sorted(real) == list(range(len(weights)))

    def test_blocks_are_spatial_clusters(self, weights):
        """Consecutive stride-2 blocks of the perm must be matched pairs
        (or contain fakes), i.e. real pairs in a block share an edge."""
        c = coarsen_graph(weights, 1)
        n = len(weights)
        for b in range(len(c.perm) // 2):
            i, j = c.perm[2 * b], c.perm[2 * b + 1]
            if i < n and j < n:
                assert weights[i, j] > 0

    def test_permute_signal_roundtrip_mean(self, weights, rng):
        """Mean over real slots of the permuted signal equals the
        original mean (fake slots are zero)."""
        c = coarsen_graph(weights, 2)
        x = rng.normal(size=(len(weights), 3))
        permuted = c.permute_signal(x, axis=0)
        assert permuted.shape == (c.padded_size(0), 3)
        assert permuted.sum() == pytest.approx(x.sum())

    def test_permute_signal_wrong_size(self, weights):
        c = coarsen_graph(weights, 1)
        with pytest.raises(ValueError):
            c.permute_signal(np.zeros((len(weights) + 1, 2)))

    def test_negative_levels_rejected(self, weights):
        with pytest.raises(ValueError):
            coarsen_graph(weights, -1)

    def test_deep_coarsening_of_path_graph(self):
        n = 16
        w = np.zeros((n, n))
        for i in range(n - 1):
            w[i, i + 1] = w[i + 1, i] = 1.0
        c = coarsen_graph(w, 3)
        assert c.padded_size(0) % 8 == 0
        # Path graphs match perfectly: minimal padding expected.
        assert c.padded_size(0) <= 2 * n
