#!/usr/bin/env python3
"""Block-sparse sharded execution gate for run_benchmarks.sh.

Two sections at smoke scale (see docs/SHARDING.md), results recorded in
``BENCH_SHARD.json`` at the repo root:

1. **Parity** — at a dense-feasible city size, a short AF training run
   under sharded execution (``mode="exact"``) must be *bit-identical*
   to the dense path: same per-epoch train/val losses, same final
   weights, same dropout RNG states.  Any divergence means the sharded
   stage-1 no longer computes what the paper's model computes.
2. **Metro** — a 500-region city must actually work at metro scale:

   * block-sparse trip aggregation is bit-identical to the dense
     builder (``build_block_sparse_od_tensors`` vs ``build_od_tensors``),
   * a blocked-mode forward is bit-identical to the dense forward,
   * a smoke training epoch through the sharded path completes with
     every shard under ``BUDGET_BYTES`` of incremental working set
     (tracemalloc-enforced) and in no more wall-clock than the dense
     epoch (the zero-slice collapse should make it *much* faster),
   * a forecast is served through the sharded model.

Exits non-zero on any failure so the benchmark sweep fails loudly.

Usage: python3 benchmarks/shard_smoke.py
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (AdvancedFramework, ShardedExecution, TrainConfig,
                        Trainer, af_loss)
from repro.core.trainer import _module_rngs
from repro.graph import chebyshev_hops, plan_shards
from repro.histograms import (BlockSparseWindowDataset, WindowDataset,
                              build_block_sparse_od_tensors,
                              build_od_tensors, chronological_split)
from repro.trips import metro_dataset

S, H = 2, 1
PARITY_REGIONS = 96
PARITY_INTERVALS = 12
PARITY_SHARDS = 6
METRO_REGIONS = 500
METRO_INTERVALS = 10
METRO_SHARDS = 16
BUDGET_BYTES = 64 * 1024 * 1024     # per-shard incremental working set
TRAIN_BATCHES = 3
REPORT = Path(__file__).parent.parent / "BENCH_SHARD.json"


def _model(weights: np.ndarray, n_buckets: int,
           seed: int = 0) -> AdvancedFramework:
    rng = np.random.default_rng(seed)
    return AdvancedFramework(weights, weights, n_buckets, rng,
                             rank=4, rnn_hidden=8, rnn_order=2)


def _loss(weights: np.ndarray):
    def loss(pred, truth, mask, r, c):
        return af_loss(pred, truth, mask, r, c, weights, weights)
    return loss


def _config(**overrides) -> TrainConfig:
    base = dict(epochs=2, batch_size=2, learning_rate=1e-3,
                max_train_batches=TRAIN_BATCHES, max_val_batches=2,
                patience=8, seed=0)
    base.update(overrides)
    return TrainConfig(**base)


def _fit(model, weights, split, windows, config, sharding=None):
    trainer = Trainer(model, _loss(weights), config, sharding=sharding)
    start = time.perf_counter()
    result = trainer.fit(windows, split, horizon=H)
    return trainer, result, time.perf_counter() - start


def _states_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and \
        all(np.array_equal(a[name], b[name]) for name in a)


def check_parity():
    """Dense vs sharded-exact short fits: bit-identical end to end."""
    dataset = metro_dataset(n_regions=PARITY_REGIONS,
                            n_intervals=PARITY_INTERVALS,
                            trips_per_interval=800.0, seed=7)
    sequence = build_od_tensors(dataset.trips, dataset.city,
                                n_intervals=PARITY_INTERVALS)
    windows = WindowDataset(sequence, s=S, h=H)
    split = chronological_split(windows, 0.6, 0.2)
    weights = dataset.city.proximity()

    dense_model = _model(weights, sequence.n_buckets)
    _, dense_result, _ = _fit(dense_model, weights, split, windows,
                              _config())

    plan = plan_shards(weights, n_shards=PARITY_SHARDS,
                       hops=chebyshev_hops([3, 3]))
    execution = ShardedExecution(plan, mode="exact")
    sharded_model = _model(weights, sequence.n_buckets)
    _, sharded_result, _ = _fit(sharded_model, weights, split, windows,
                                _config(), sharding=execution)

    losses_equal = (dense_result.train_losses
                    == sharded_result.train_losses
                    and dense_result.val_losses
                    == sharded_result.val_losses)
    weights_equal = _states_equal(dense_model.state_dict(),
                                  sharded_model.state_dict())
    rng_equal = all(
        a.bit_generator.state == b.bit_generator.state
        for a, b in zip(_module_rngs(dense_model),
                        _module_rngs(sharded_model)))

    failures = []
    if not losses_equal:
        failures.append(
            f"exact-mode loss curves diverged from dense "
            f"(train {dense_result.train_losses} vs "
            f"{sharded_result.train_losses})")
    if not weights_equal:
        failures.append("exact-mode final weights differ from dense")
    if not rng_equal:
        failures.append("exact-mode dropout RNG states differ from dense")
    section = {
        "n_regions": PARITY_REGIONS, "n_shards": PARITY_SHARDS,
        "epochs": len(dense_result.val_losses),
        "losses_bit_identical": losses_equal,
        "weights_bit_identical": weights_equal,
        "rng_bit_identical": rng_equal,
        "train_losses": dense_result.train_losses,
        "units": len(execution.data_parallel_units()),
    }
    return section, failures


def check_metro():
    """500 regions: storage + forward parity, budgeted epoch, serving."""
    failures = []
    build_start = time.perf_counter()
    dataset = metro_dataset(n_regions=METRO_REGIONS,
                            n_intervals=METRO_INTERVALS)
    weights = dataset.city.proximity()
    plan = plan_shards(weights, n_shards=METRO_SHARDS,
                       hops=chebyshev_hops([3, 3]))
    sparse = build_block_sparse_od_tensors(
        dataset.trips, dataset.city, plan.row_blocks(), plan.col_blocks(),
        n_intervals=METRO_INTERVALS)
    dense_seq = build_od_tensors(dataset.trips, dataset.city,
                                 n_intervals=METRO_INTERVALS)
    build_seconds = time.perf_counter() - build_start
    round_trip = sparse.to_dense()
    storage_exact = (np.array_equal(round_trip.tensors, dense_seq.tensors)
                     and np.array_equal(round_trip.mask, dense_seq.mask)
                     and np.array_equal(round_trip.counts,
                                        dense_seq.counts))
    if not storage_exact:
        failures.append("block-sparse aggregation is not bit-identical "
                        "to build_od_tensors")

    dense_windows = WindowDataset(dense_seq, s=S, h=H)
    sparse_windows = BlockSparseWindowDataset(sparse, s=S, h=H)
    split = chronological_split(dense_windows)

    # Forward (inference) parity and wall-clock: blocked vs dense.
    model = _model(weights, dense_seq.n_buckets)
    model.eval()
    histories = sparse_windows.history(0)[None]       # (1, S, N, N', K)
    start = time.perf_counter()
    dense_pred, _, _ = model(histories, H)
    dense_forward_seconds = time.perf_counter() - start
    execution = ShardedExecution(plan, mode="blocked",
                                 memory_budget_bytes=BUDGET_BYTES)
    model.set_sharding(execution)
    sharded_pred, _, _ = model(histories, H)          # profiled forward
    start = time.perf_counter()
    sharded_pred, _, _ = model(histories, H)
    sharded_forward_seconds = time.perf_counter() - start
    forward_exact = np.array_equal(sharded_pred.numpy(),
                                   dense_pred.numpy())
    if not forward_exact:
        failures.append(
            f"blocked forward diverged from dense (max abs diff "
            f"{np.abs(sharded_pred.numpy() - dense_pred.numpy()).max():.3e})")

    # Smoke epoch: dense vs sharded wall-clock, per-shard budget held.
    epoch_config = dict(epochs=1, batch_size=1, max_val_batches=1,
                        patience=1)
    dense_trainer, _, dense_fit_seconds = _fit(
        _model(weights, dense_seq.n_buckets), weights, split,
        dense_windows, _config(**epoch_config))
    train_exec = ShardedExecution(plan, mode="blocked",
                                  memory_budget_bytes=BUDGET_BYTES)
    sharded_trainer, sharded_result, sharded_fit_seconds = _fit(
        _model(weights, dense_seq.n_buckets), weights, split,
        sparse_windows, _config(**epoch_config), sharding=train_exec)
    peak = train_exec.max_shard_peak_bytes
    if not np.isfinite(sharded_result.train_losses[-1]):
        failures.append("sharded smoke epoch diverged")
    if sharded_fit_seconds > dense_fit_seconds:
        failures.append(
            f"sharded epoch slower than dense ({sharded_fit_seconds:.1f}s "
            f"vs {dense_fit_seconds:.1f}s)")
    if peak <= 0 or peak > BUDGET_BYTES:
        failures.append(
            f"per-shard peak {peak} bytes outside (0, {BUDGET_BYTES}]")

    # Serve one forecast through the fitted sharded model.
    start = time.perf_counter()
    forecast = sharded_trainer.predict(
        sparse_windows, [len(sparse_windows) - 1], H)
    serve_seconds = time.perf_counter() - start
    if not np.isfinite(forecast).all():
        failures.append("served forecast contains non-finite values")

    section = {
        "n_regions": METRO_REGIONS, "n_intervals": METRO_INTERVALS,
        "n_trips": len(dataset.trips),
        "build_seconds": build_seconds,
        "storage": dict(sparse.occupancy(), bit_identical=storage_exact),
        "plan": plan.describe(),
        "forward": {
            "bit_identical": forward_exact,
            "dense_seconds": dense_forward_seconds,
            "sharded_seconds": sharded_forward_seconds,
            "speedup": dense_forward_seconds / sharded_forward_seconds,
        },
        "epoch": {
            "train_batches": TRAIN_BATCHES,
            "dense_seconds": dense_fit_seconds,
            "sharded_seconds": sharded_fit_seconds,
            "speedup": dense_fit_seconds / sharded_fit_seconds,
            "budget_bytes": BUDGET_BYTES,
            "max_shard_peak_bytes": peak,
            "occupancy": train_exec.last_occupancy,
        },
        "serve_seconds": serve_seconds,
    }
    return section, failures


def main() -> int:
    failures = []
    parity, parity_failures = check_parity()
    failures += parity_failures
    metro, metro_failures = check_metro()
    failures += metro_failures

    report = {"scale": "smoke", "s": S, "h": H, "parity": parity,
              "metro": metro}
    REPORT.write_text(json.dumps(report, indent=2, sort_keys=False)
                      + "\n")
    if failures:
        print(f"shard smoke: FAIL ({'; '.join(failures)})")
        return 1
    print(f"shard smoke: OK (exact mode bit-identical over "
          f"{parity['epochs']} epochs at {PARITY_REGIONS} regions; "
          f"{METRO_REGIONS}-region epoch "
          f"{metro['epoch']['speedup']:.1f}x faster sharded "
          f"({metro['epoch']['sharded_seconds']:.1f}s vs "
          f"{metro['epoch']['dense_seconds']:.1f}s), max shard peak "
          f"{metro['epoch']['max_shard_peak_bytes'] / 2**20:.1f} MiB "
          f"of {BUDGET_BYTES / 2**20:.0f} MiB budget -> {REPORT.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
