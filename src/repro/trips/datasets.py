"""High-level dataset builders for the two study cities."""

from __future__ import annotations

from dataclasses import dataclass

from ..regions.city import (City, chengdu_like, manhattan_like,
                            metro_like, toy_city)
from .generator import DemandConfig, TripGenerator
from .gps import GpsSimulator, extract_trips
from .traffic import LatentTrafficField
from .trip import TripTable


@dataclass
class CityDataset:
    """A city, its latent ground-truth field, and generated trips."""

    city: City
    field: LatentTrafficField
    trips: TripTable


def nyc_like_dataset(n_days: int = 14, trips_per_interval: float = 450.0,
                     seed: int = 0, n_regions: int = 67) -> CityDataset:
    """Manhattan-style dataset: 67 regions, full-day demand.

    Defaults are scaled so one peak interval sees ~450 trips over
    67×67 ≈ 4.5 k OD pairs, i.e. most pairs are empty per interval —
    the paper's sparseness regime.
    """
    city = manhattan_like(seed=seed, n_regions=n_regions)
    field = LatentTrafficField(city, n_days=n_days, seed=seed + 1)
    generator = TripGenerator(
        field, DemandConfig(trips_per_interval=trips_per_interval),
        seed=seed + 2)
    return CityDataset(city=city, field=field, trips=generator.generate())


def chengdu_like_dataset(n_days: int = 14,
                         trips_per_interval: float = 450.0,
                         seed: int = 100, n_regions: int = 79,
                         via_gps: bool = False) -> CityDataset:
    """Chengdu-style dataset: 79 regions, no demand 00:00–06:00.

    With ``via_gps=True`` the trips take the full Chengdu ingestion path:
    trips → simulated GPS records → occupied-run extraction, exercising
    the :mod:`repro.trips.gps` pipeline end to end (slower; default off).
    """
    city = chengdu_like(seed=seed, n_regions=n_regions)
    field = LatentTrafficField(city, n_days=n_days, seed=seed + 1)
    generator = TripGenerator(
        field, DemandConfig(trips_per_interval=trips_per_interval,
                            night_gap=True),
        seed=seed + 2)
    trips = generator.generate()
    if via_gps:
        records = GpsSimulator(n_taxis=200, seed=seed + 3).simulate(trips)
        trips = extract_trips(records)
    return CityDataset(city=city, field=field, trips=trips)


def metro_dataset(n_regions: int = 500, n_intervals: int = 10,
                  trips_per_interval: float = 4000.0,
                  seed: int = 21) -> CityDataset:
    """Metro-scale dataset for the block-sparse sharded path.

    Hundreds of regions, a bounded number of 15-minute intervals
    (generation is limited to ``n_intervals`` so a 500+-region smoke
    run stays cheap).  Even thousands of trips per interval leave the
    vast majority of the ``N²`` OD slices empty — the sparsity the
    zero-slice collapse in :mod:`repro.core.shardexec` exploits and
    :class:`repro.histograms.blocksparse.BlockSparseODTensor` stores.
    """
    city = metro_like(seed=seed, n_regions=n_regions)
    field = LatentTrafficField(city, n_days=1, seed=seed + 1)
    generator = TripGenerator(
        field, DemandConfig(trips_per_interval=trips_per_interval),
        seed=seed + 2)
    trips = generator.generate(last_interval=n_intervals)
    return CityDataset(city=city, field=field, trips=trips)


def toy_dataset(n_days: int = 6, n_regions: int = 12,
                trips_per_interval: float = 120.0,
                seed: int = 42) -> CityDataset:
    """Small, fast dataset for tests and the quickstart example."""
    city = toy_city(seed=seed, n_regions=n_regions)
    field = LatentTrafficField(city, n_days=n_days, seed=seed + 1)
    generator = TripGenerator(
        field, DemandConfig(trips_per_interval=trips_per_interval),
        seed=seed + 2)
    return CityDataset(city=city, field=field, trips=generator.generate())
