#!/usr/bin/env python3
"""The paper's motivating use case: how early should I leave for a flight?

§I of the paper: given a *stochastic* speed forecast for the OD pair
(home region → airport region) and the trip length, derive a travel-time
distribution and pick a departure buffer that makes the flight with the
desired confidence.  Using only the average speed understates the risk —
this example quantifies by how much.

Run:  python examples/travel_time_reservation.py
"""

import numpy as np

from repro import prepare, toy_dataset
from repro.experiments import MethodBudget, make_af


def travel_time_distribution(speed_histogram, edges_ms, trip_km):
    """Map a speed histogram to (travel_minutes, probability) pairs.

    Each speed bucket [lo, hi) maps to a travel-time interval
    [trip/hi, trip/lo); we report the conservative (slow) end of each
    bucket, which is what a risk-averse traveller plans with.
    """
    rows = []
    for k, probability in enumerate(speed_histogram):
        if probability <= 0:
            continue
        lo = max(edges_ms[k], 0.5)
        minutes = trip_km * 1000.0 / lo / 60.0
        rows.append((minutes, probability))
    return sorted(rows)


def minutes_for_confidence(distribution, confidence):
    """Smallest reservation covering >= `confidence` probability mass."""
    total = 0.0
    for minutes, probability in distribution:
        total += probability
    accumulated = 0.0
    for minutes, probability in sorted(distribution):
        accumulated += probability
        if accumulated / total >= confidence:
            return minutes
    return distribution[-1][0]


def main() -> None:
    print("Training AF on a synthetic city...")
    dataset = toy_dataset(n_days=6, n_regions=12, seed=11)
    data = prepare(dataset, s=6, h=1)
    forecaster = make_af(data, MethodBudget(epochs=6, batch_size=16,
                                            max_train_batches=12))
    forecaster.fit(data.windows, data.split, horizon=1)

    # Forecast the next interval for a morning test window.
    window = int(data.split.test[0])
    forecast = forecaster.predict(data.windows, np.array([window]), 1)

    home, airport = 0, 9
    trip_km = 12.0
    spec = data.sequence.spec
    histogram = forecast[0, 0, home, airport]
    print(f"\nForecast speed histogram, region {home} -> region {airport}:")
    for k in range(spec.n_buckets):
        lo, hi = spec.edges[k], spec.edges[k + 1]
        print(f"  [{lo:4.0f},{hi:4.0f}) m/s : {histogram[k]:.3f}")

    distribution = travel_time_distribution(histogram, spec.edges, trip_km)
    mean_speed = spec.mean_speed(histogram)
    naive_minutes = trip_km * 1000 / mean_speed / 60

    print(f"\nTrip length: {trip_km} km")
    print(f"Naive plan from the average speed ({mean_speed:.1f} m/s): "
          f"{naive_minutes:.0f} minutes")
    for confidence in (0.5, 0.8, 0.95):
        needed = minutes_for_confidence(distribution, confidence)
        print(f"Reserve {needed:6.0f} minutes to arrive on time with "
              f"{confidence:.0%} confidence")
    p95 = minutes_for_confidence(distribution, 0.95)
    print(f"\nPlanning with the mean alone under-reserves by "
          f"{p95 - naive_minutes:.0f} minutes at the 95% level — the "
          "paper's argument for stochastic OD matrices.")


if __name__ == "__main__":
    main()
