"""Smoke tests for the example scripts.

Each example must parse, import cleanly, expose ``main``, and have a
docstring explaining what it shows.  (Full runs are exercised manually /
in benchmarks — they train models and are too slow for unit tests, but
the pure helper functions are tested here.)
"""

import ast
import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestExampleHygiene:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_parses_with_docstring_and_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, f"{path.name} lacks main()"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_cleanly(self, path):
        module = _load(path)
        assert callable(module.main)


class TestReservationHelpers:
    """Unit-level checks of travel_time_reservation's pure helpers."""

    @pytest.fixture(scope="class")
    def module(self):
        path = [p for p in EXAMPLES
                if p.stem == "travel_time_reservation"][0]
        return _load(path)

    def test_distribution_from_histogram(self, module):
        edges = (0.0, 5.0, 10.0, np.inf)
        rows = module.travel_time_distribution(
            np.array([0.5, 0.3, 0.2]), edges, trip_km=6.0)
        total = sum(p for _, p in rows)
        assert total == pytest.approx(1.0)
        minutes = [m for m, _ in rows]
        assert minutes == sorted(minutes)

    def test_confidence_monotone(self, module):
        distribution = [(10.0, 0.5), (20.0, 0.3), (60.0, 0.2)]
        t50 = module.minutes_for_confidence(distribution, 0.5)
        t95 = module.minutes_for_confidence(distribution, 0.95)
        assert t95 >= t50
        assert t95 == pytest.approx(60.0)
