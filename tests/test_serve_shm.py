"""Tests for the shared-memory serving transport (``repro.serve_shm``).

The transport contract: array bytes written into a ring slot come back
bit-identical (dtype, shape, contents) on the other side; payloads that
do not fit raise :class:`SlotOverflowError` (the pool's cue to fall
back to the pickled pipe); admission control sheds with
:class:`ShedError` when a queue is full or a deadline cannot be met;
and no segment outlives its ring.
"""

import numpy as np
import pytest

from repro.serve_shm import (AdmissionController, HEADER_BYTES, ShedError,
                             ShmRing, SlotOverflowError, leaked_segments,
                             shared_memory_available, slot_bytes_for)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable")


@pytest.fixture()
def ring():
    ring = ShmRing(slot_bytes=1 << 16, n_slots=2)
    yield ring
    ring.close()
    ring.unlink()


class TestShmRing:
    def test_round_trip_bit_identical_across_dtypes(self, ring):
        arrays = [
            np.arange(24, dtype=np.float64).reshape(2, 3, 4) * np.pi,
            np.array([[True, False], [False, True]]),
            np.arange(6, dtype=np.int64).reshape(3, 2),
            np.linspace(0, 1, 5, dtype=np.float32),
        ]
        ring.write(0, arrays, request_id=7, deadline=123.5)
        got, deadline = ring.read(0, request_id=7)
        assert deadline == 123.5
        assert len(got) == len(arrays)
        for sent, received in zip(arrays, got):
            assert received.dtype == sent.dtype
            assert received.shape == sent.shape
            np.testing.assert_array_equal(received, sent)

    def test_none_deadline_survives(self, ring):
        ring.write(0, [np.zeros(3)], request_id=1)
        _, deadline = ring.read(0, request_id=1)
        assert deadline is None

    def test_slots_are_independent(self, ring):
        ring.write(0, [np.zeros(4)], request_id=1)
        ring.write(1, [np.ones(4)], request_id=2)
        np.testing.assert_array_equal(ring.read(0, 1)[0][0], np.zeros(4))
        np.testing.assert_array_equal(ring.read(1, 2)[0][0], np.ones(4))

    def test_request_id_mismatch_rejected(self, ring):
        """A slot holding another request's frame must never be read as
        ours — that is how a stale response would corrupt an answer."""
        ring.write(0, [np.zeros(2)], request_id=5)
        with pytest.raises(ValueError, match="holds request 5"):
            ring.read(0, request_id=6)

    def test_unwritten_slot_rejected(self, ring):
        with pytest.raises(ValueError, match="bad magic"):
            ring.read(1, request_id=1)

    def test_overflow_raises_before_writing(self, ring):
        big = np.zeros((1 << 16) // 8 + 1, dtype=np.float64)
        with pytest.raises(SlotOverflowError, match="exceeds slot_bytes"):
            ring.write(0, [big], request_id=1)

    def test_non_contiguous_input_round_trips(self, ring):
        base = np.arange(40, dtype=np.float64).reshape(8, 5)
        strided = base[::2, 1:4]                   # non-contiguous view
        ring.write(0, [strided], request_id=3)
        got, _ = ring.read(0, request_id=3)
        np.testing.assert_array_equal(got[0], strided)

    def test_zero_copy_read_views_segment(self, ring):
        ring.write(0, [np.arange(4.0)], request_id=1)
        views, _ = ring.read(0, request_id=1, copy=False)
        assert not views[0].flags.owndata          # a view, not a copy
        np.testing.assert_array_equal(views[0], np.arange(4.0))
        del views                                  # release before close

    def test_acquire_release_cycle(self, ring):
        slots = {ring.acquire(), ring.acquire()}
        assert slots == {0, 1}
        assert ring.acquire() is None              # exhausted
        ring.release(1)
        assert ring.acquire() == 1
        ring.release(1)
        ring.release(1)                            # double release is safe
        assert ring.free_slots == 1

    def test_close_unlink_removes_segment(self):
        ring = ShmRing(slot_bytes=4096, n_slots=1)
        name = ring.name
        assert leaked_segments([name]) == [name]
        ring.close()
        ring.unlink()
        assert leaked_segments([name]) == []
        ring.unlink()                              # double unlink is safe

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(slot_bytes=HEADER_BYTES)
        with pytest.raises(ValueError, match="n_slots"):
            ShmRing(slot_bytes=4096, n_slots=0)

    def test_slot_bytes_for_fits_exactly(self):
        shapes = [(4, 8, 8, 5), (4, 8, 8), (4, 8, 8)]
        dtypes = [np.float64, np.bool_, np.int64]
        size = slot_bytes_for(shapes, dtypes)
        ring = ShmRing(slot_bytes=size, n_slots=1)
        try:
            arrays = [np.zeros(s, dtype=d) for s, d in zip(shapes, dtypes)]
            ring.write(0, arrays, request_id=1)    # must fit
        finally:
            ring.close()
            ring.unlink()


class TestAdmissionController:
    def test_queue_full_sheds(self):
        control = AdmissionController(n_slots=1, max_inflight=2)
        control.admit(0, "k")
        control.admit(0, "k")
        with pytest.raises(ShedError, match="queue full"):
            control.admit(0, "k")
        assert control.stats()["shed_full"] == 1
        control.done(0)
        control.admit(0, "k")                      # space again

    def test_slots_have_independent_queues(self):
        control = AdmissionController(n_slots=2, max_inflight=1)
        control.admit(0, "k")
        control.admit(1, "k")                      # other worker is free
        with pytest.raises(ShedError, match="queue full"):
            control.admit(0, "k")

    def test_passed_deadline_sheds(self):
        control = AdmissionController(n_slots=1)
        with pytest.raises(ShedError, match="deadline passed"):
            control.admit(0, "k", deadline=100.0, now=100.5)
        assert control.stats()["shed_deadline"] == 1

    def test_unmeetable_deadline_sheds_via_ewma(self):
        """now + (depth + 1) * EWMA past the deadline -> fast-fail."""
        control = AdmissionController(n_slots=1, max_inflight=8)
        control.admit(0, "k")
        control.done(0, forward_seconds=1.0)       # EWMA = 1s/forward
        control.admit(0, "k")                      # one in flight
        with pytest.raises(ShedError, match="unmeetable"):
            control.admit(0, "k", deadline=101.0, now=100.0)
        assert control.stats()["shed_deadline"] == 1

    def test_feasible_deadline_admitted(self):
        control = AdmissionController(n_slots=1)
        control.admit(0, "k")
        control.done(0, forward_seconds=0.01)
        depth, _ = control.admit(0, "k", deadline=101.0, now=100.0)
        assert depth == 1

    def test_no_ewma_means_no_feasibility_shed(self):
        """Before the first forward there is no latency estimate: only
        an already-passed deadline can shed."""
        control = AdmissionController(n_slots=1)
        depth, _ = control.admit(0, "k", deadline=100.0 + 1e-9, now=100.0)
        assert depth == 1

    def test_ewma_update_rule(self):
        control = AdmissionController(n_slots=1, alpha=0.5)
        control.admit(0, "k")
        control.done(0, forward_seconds=1.0)
        assert control.ewma_seconds == 1.0
        control.admit(0, "k")
        control.done(0, forward_seconds=2.0)
        assert control.ewma_seconds == pytest.approx(1.5)

    def test_cache_hits_do_not_move_ewma(self):
        """done() without a sample (a cache hit) releases the token but
        leaves the forward-latency estimate untouched."""
        control = AdmissionController(n_slots=1)
        control.admit(0, "k")
        control.done(0, forward_seconds=1.0)
        control.admit(0, "k")
        control.done(0)                            # hit: no sample
        assert control.ewma_seconds == 1.0

    def test_high_water_mark_tracked(self):
        control = AdmissionController(n_slots=1)
        _, first = control.admit(0, "k")
        _, second = control.admit(0, "k")
        assert first and second                    # 1 then 2, both records
        control.done(0)
        _, third = control.admit(0, "k")           # back to 2: no record
        assert not third
        assert control.stats()["high_water"] == [2]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(n_slots=1, max_inflight=0)
        with pytest.raises(ValueError, match="alpha"):
            AdmissionController(n_slots=1, alpha=0.0)
        with pytest.raises(ValueError, match="n_slots"):
            AdmissionController(n_slots=0)

    def test_shed_error_carries_key_and_reason(self):
        error = ShedError("cd/weekday", "queue full (8/8 in flight)")
        assert error.key == "cd/weekday"
        assert "queue full" in error.reason
        assert "cd/weekday" in str(error)
