"""Spatial factorization (AF stage 1): GCNN encoder per tensor slice.

Paper §V-A.  To build the origin-side factor tensor ``R``, the sparse
tensor is sliced by origin; each slice is a K-channel signal over the
*destination* proximity graph.  A stack of Cheby-Net convolutions and
cluster-aware graph poolings condenses each slice into a ``(β', K)``
feature block; concatenating over origins yields ``R ∈ R^{N×β'×K}``.  The
destination-side factor ``C`` uses the same machinery with the roles of
the graphs swapped.  A final linear projection maps the pooled size β'
to the configured rank β so both sides agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..autodiff import ops
from ..autodiff.layers import Linear
from ..autodiff.module import Module
from ..autodiff.tensor import Tensor
from ..graph.chebconv import ChebConv, GraphPool
from ..graph.coarsening import coarsen_graph, naive_coarsening


@dataclass(frozen=True)
class GCNNBlock:
    """One conv+pool stage: ``filters`` Cheby filters of ``order`` terms,
    followed by pooling over ``pool_levels`` matching levels
    (pool size ``2**pool_levels``)."""

    filters: int
    order: int
    pool_levels: int = 1

    def __post_init__(self):
        if self.filters < 1 or self.order < 1 or self.pool_levels < 0:
            raise ValueError(f"invalid GCNN block {self}")


DEFAULT_BLOCKS = (GCNNBlock(filters=16, order=3, pool_levels=1),
                  GCNNBlock(filters=8, order=3, pool_levels=1))


class SpatialFactorizer(Module):
    """GCNN encoder over one side's proximity graph.

    Parameters
    ----------
    graph_weights:
        Proximity matrix of the graph the slices live on (destination
        graph when producing ``R``, origin graph when producing ``C``).
    n_buckets:
        Input channels K.
    rank:
        Output latent size β (after the final projection).
    blocks:
        Conv+pool stages.  The channel count of the final stage is the
        feature count carried per pooled cluster; a 1×1 projection then
        maps it back to K channels, matching the paper's "eventually set
        Q = K".
    """

    def __init__(self, graph_weights: np.ndarray, n_buckets: int, rank: int,
                 rng: np.random.Generator,
                 blocks: Sequence[GCNNBlock] = DEFAULT_BLOCKS,
                 pool_mode: str = "mean",
                 cluster_pooling: bool = True):
        super().__init__()
        blocks = tuple(blocks)
        if not blocks:
            raise ValueError("need at least one GCNN block")
        total_levels = sum(block.pool_levels for block in blocks)
        # cluster_pooling=False is the ablation of the paper's
        # geometrical pooling: nodes are paired by id order instead of
        # by spatial matching.
        build = coarsen_graph if cluster_pooling else naive_coarsening
        self._coarsening = build(np.asarray(graph_weights), total_levels)
        self.n_buckets = n_buckets
        self.rank = rank
        self.convs = []
        self.pools = []
        level = 0
        in_channels = n_buckets
        for block in blocks:
            # Level 0 signals are in the original node order (GraphPool
            # permutes on the way down); deeper levels use the permuted,
            # padded coarse graphs that match the pooled signal order.
            conv_graph = (np.asarray(graph_weights) if level == 0
                          else self._coarsening.graphs[level])
            self.convs.append(ChebConv(
                in_channels, block.filters, block.order, conv_graph, rng))
            if block.pool_levels > 0:
                self.pools.append(GraphPool(
                    self._coarsening, levels=block.pool_levels,
                    start_level=level, mode=pool_mode))
                level += block.pool_levels
            else:
                self.pools.append(None)
            in_channels = block.filters
        self.to_buckets = Linear(in_channels, n_buckets, rng)
        self._pooled_size = (self.pools[-1].output_size
                             if self.pools[-1] is not None
                             else self._coarsening.graphs[level].shape[0])
        self.latent_proj = Linear(self._pooled_size, rank, rng)
        # Per-stage constants for the fused conv+ReLU+pool kernel
        # (ops.fused_gcnn_stage); max pooling has no fused path.
        if pool_mode == "mean":
            self._fused_specs = [
                dict(stride=1, perm=None, inv_counts=None) if pool is None
                else dict(stride=pool.stride, perm=pool._perm,
                          inv_counts=pool._mean_scale / pool.stride)
                for pool in self.pools]
        else:
            self._fused_specs = None

    @property
    def pooled_size(self) -> int:
        """Number of spatial clusters before the rank projection (β')."""
        return self._pooled_size

    def forward(self, slices: Tensor) -> Tensor:
        """Encode graph slices.

        ``slices`` is ``(B*, nodes, K)`` — any number of tensor slices
        flattened into the leading axis.  Returns ``(B*, rank, K)``.
        """
        x = slices
        if ops.fused_enabled() and self._fused_specs is not None:
            # Each conv+ReLU+pool stage and the two-projection tail are
            # single fused graph nodes; the primitive composition below
            # is the reference path.
            for conv, spec in zip(self.convs, self._fused_specs):
                x = ops.fused_gcnn_stage(conv._scaled_lap, x, conv.weight,
                                         conv.bias, conv.order, **spec)
            return ops.fused_latent_head(
                x, self.to_buckets.weight, self.to_buckets.bias,
                self.latent_proj.weight, self.latent_proj.bias)
        for conv, pool in zip(self.convs, self.pools):
            x = ops.relu(conv(x))
            if pool is not None:
                x = pool(x)
        x = self.to_buckets(x)                      # (B*, beta', K)
        x = x.transpose((0, 2, 1))                  # (B*, K, beta')
        x = self.latent_proj(x)                     # (B*, K, rank)
        return x.transpose((0, 2, 1))               # (B*, rank, K)


def _twin_stage_specs(factorizer_a: SpatialFactorizer,
                      factorizer_b: SpatialFactorizer):
    """Shared per-stage pooling constants when the two factorizers are
    architecture-identical (same stage shapes/orders and identical
    coarsening layouts), i.e. when they can run as one stacked
    computation.  Returns ``None`` when they cannot."""
    if factorizer_a._fused_specs is None \
            or factorizer_b._fused_specs is None \
            or len(factorizer_a.convs) != len(factorizer_b.convs):
        return None
    for conv_a, conv_b in zip(factorizer_a.convs, factorizer_b.convs):
        if conv_a.order != conv_b.order \
                or conv_a.weight.shape != conv_b.weight.shape \
                or conv_a._scaled_lap.shape != conv_b._scaled_lap.shape:
            return None
    if factorizer_a.to_buckets.weight.shape \
            != factorizer_b.to_buckets.weight.shape \
            or factorizer_a.latent_proj.weight.shape \
            != factorizer_b.latent_proj.weight.shape:
        return None
    shared = []
    for spec_a, spec_b in zip(factorizer_a._fused_specs,
                              factorizer_b._fused_specs):
        if spec_a["stride"] != spec_b["stride"] \
                or (spec_a["perm"] is None) != (spec_b["perm"] is None):
            return None
        if spec_a["perm"] is not None and not (
                np.array_equal(spec_a["perm"], spec_b["perm"])
                and np.array_equal(spec_a["inv_counts"],
                                   spec_b["inv_counts"])):
            return None
        shared.append(spec_a)
    return shared


def factorize_tensor_batch(factorizer_r: SpatialFactorizer,
                           factorizer_c: SpatialFactorizer,
                           tensors: Tensor) -> Tuple[Tensor, Tensor]:
    """Apply both factorizers to a batch of OD tensors.

    ``tensors`` is ``(B, N, N', K)``.  Returns ``(R, C)`` with
    ``R = (B, N, β, K)`` (origin slices encoded over the destination
    graph) and ``C = (B, β, N', K)`` (destination slices encoded over the
    origin graph).  With fused kernels on and architecture-identical
    factorizers (square cities), both sides run as one stacked
    computation per stage (``ops.fused_twin_gcnn_stage``).
    """
    batch, n_origins, n_dests, k = tensors.shape
    # Origin slices: (B*N, N', K) over the destination graph.
    r_slices = tensors.reshape(batch * n_origins, n_dests, k)
    # Destination slices: (B*N', N, K) over the origin graph.
    c_slices = tensors.transpose((0, 2, 1, 3)).reshape(
        batch * n_dests, n_origins, k)
    if ops.fused_enabled() and r_slices.shape == c_slices.shape:
        shared = _twin_stage_specs(factorizer_r, factorizer_c)
        if shared is not None:
            x = ops.stack([r_slices, c_slices], axis=0)
            for conv_r, conv_c, spec in zip(factorizer_r.convs,
                                            factorizer_c.convs, shared):
                lap2 = np.stack([conv_r._scaled_lap.data,
                                 conv_c._scaled_lap.data])
                x = ops.fused_twin_gcnn_stage(
                    lap2, x, conv_r.weight, conv_r.bias,
                    conv_c.weight, conv_c.bias, conv_r.order, **spec)
            out2 = ops.fused_twin_latent_head(
                x,
                (factorizer_r.to_buckets.weight,
                 factorizer_r.to_buckets.bias,
                 factorizer_r.latent_proj.weight,
                 factorizer_r.latent_proj.bias),
                (factorizer_c.to_buckets.weight,
                 factorizer_c.to_buckets.bias,
                 factorizer_c.latent_proj.weight,
                 factorizer_c.latent_proj.bias))
            r = out2[0].reshape(batch, n_origins, factorizer_r.rank, k)
            c = out2[1].reshape(batch, n_dests, factorizer_c.rank, k)
            return r, c.transpose((0, 2, 1, 3))     # (B, β, N', K)
    r = factorizer_r(r_slices).reshape(batch, n_origins,
                                       factorizer_r.rank, k)
    c = factorizer_c(c_slices).reshape(batch, n_dests,
                                       factorizer_c.rank, k)
    c = c.transpose((0, 2, 1, 3))                   # (B, β, N', K)
    return r, c


def sharded_factorize_tensor_batch(factorizer_r: SpatialFactorizer,
                                   factorizer_c: SpatialFactorizer,
                                   tensors: Tensor,
                                   execution) -> Tuple[Tensor, Tensor]:
    """Sharded twin of :func:`factorize_tensor_batch`.

    ``execution`` is a :class:`repro.core.shardexec.ShardedExecution`;
    the R side runs one origin shard's slices at a time over the
    destination graph, the C side one destination shard's slices over
    the origin graph.  Same shapes and (in ``"exact"`` mode) bit-
    identical values/gradients as the dense function.
    """
    return execution.factorize(factorizer_r, factorizer_c, tensors)
