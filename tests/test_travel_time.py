"""Tests for travel-time distribution derivation."""

import numpy as np
import pytest

from repro.histograms import HistogramSpec
from repro.histograms.travel_time import (TravelTimeDistribution,
                                          travel_time_distribution)

SPEC = HistogramSpec.paper_default()


class TestDerivation:
    def test_mass_preserved(self):
        histogram = np.array([0.1, 0.2, 0.3, 0.2, 0.1, 0.05, 0.05])
        dist = travel_time_distribution(histogram, SPEC, trip_km=5.0)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_sorted_by_time(self):
        histogram = np.full(7, 1 / 7)
        dist = travel_time_distribution(histogram, SPEC, trip_km=5.0)
        fast = dist.intervals_min[:, 0]
        assert (np.diff(fast) > 0).all()

    def test_faster_speeds_give_shorter_times(self):
        slow = travel_time_distribution(
            np.array([1.0, 0, 0, 0, 0, 0, 0]), SPEC, 6.0)
        fast = travel_time_distribution(
            np.array([0, 0, 0, 0, 0, 0, 1.0]), SPEC, 6.0)
        assert fast.mean_minutes() < slow.mean_minutes()

    def test_speed_time_inverse_relation(self):
        """A single bucket [9, 12) m/s for a 5.4 km trip maps to
        [7.5, 10] minutes."""
        histogram = np.zeros(7)
        histogram[3] = 1.0       # [9, 12) m/s
        dist = travel_time_distribution(histogram, SPEC, trip_km=5.4)
        fast, slow = dist.intervals_min[0]
        assert fast == pytest.approx(5400 / 12 / 60)
        assert slow == pytest.approx(5400 / 9 / 60)

    def test_unnormalized_input_renormalized(self):
        dist = travel_time_distribution(
            np.array([2.0, 2.0, 0, 0, 0, 0, 0]), SPEC, 3.0)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            travel_time_distribution(np.zeros(7), SPEC, 3.0)
        with pytest.raises(ValueError):
            travel_time_distribution(np.full(7, 1 / 7), SPEC, -1.0)
        with pytest.raises(ValueError):
            travel_time_distribution(np.full(5, 0.2), SPEC, 3.0)


class TestQuantiles:
    def _dist(self):
        histogram = np.array([0.5, 0.0, 0.0, 0.3, 0.0, 0.0, 0.2])
        return travel_time_distribution(histogram, SPEC, trip_km=6.0)

    def test_quantile_monotone(self):
        dist = self._dist()
        qs = [dist.quantile(q) for q in (0.2, 0.5, 0.8, 0.99)]
        assert qs == sorted(qs)

    def test_full_confidence_is_slowest(self):
        dist = self._dist()
        assert dist.quantile(1.0) == pytest.approx(
            dist.intervals_min[-1, 1])

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            self._dist().quantile(0.0)
        with pytest.raises(ValueError):
            self._dist().quantile(1.5)

    def test_reservation_gap_positive_for_skewed(self):
        """Left-skewed speeds (slow tail) ⇒ planning at 95 % needs more
        than the mean — the paper's airport example."""
        dist = self._dist()
        assert dist.reservation_gap(0.95) > 0

    def test_certain_speed_zero_gap(self):
        histogram = np.zeros(7)
        histogram[3] = 1.0
        dist = travel_time_distribution(histogram, SPEC, trip_km=5.0)
        # With one piece, the conservative quantile is the slow edge;
        # gap is bounded by the piece width.
        width = dist.intervals_min[0, 1] - dist.intervals_min[0, 0]
        assert 0 <= dist.reservation_gap(0.95) <= width
