"""Tests for the global dtype switch (float32 training mode)."""

import numpy as np
import pytest

from repro.autodiff import (Tensor, get_default_dtype, ops,
                            set_default_dtype)


@pytest.fixture
def float32_mode():
    set_default_dtype(np.float32)
    yield
    set_default_dtype(np.float64)


class TestDtypeSwitch:
    def test_default_is_float64(self):
        assert get_default_dtype() is np.float64
        assert Tensor([1.0]).data.dtype == np.float64

    def test_float32_tensors(self, float32_mode):
        assert Tensor([1.0]).data.dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype \
            == np.float32

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_ops_stay_float32(self, float32_mode):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        assert ops.softmax(x).data.dtype == np.float32
        assert ops.sigmoid(x).data.dtype == np.float32
        assert (x @ Tensor(np.zeros((5, 2)))).data.dtype == np.float32

    def test_backward_in_float32(self, float32_mode):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        (ops.tanh(x) ** 2).sum().backward()
        assert x.grad.dtype == np.float32

    def test_training_step_float32(self, float32_mode):
        from repro.autodiff import Adam, Linear
        rng = np.random.default_rng(1)
        layer = Linear(4, 2, rng)
        assert layer.weight.data.dtype == np.float32
        opt = Adam(layer.parameters(), lr=1e-3)
        out = layer(Tensor(rng.normal(size=(8, 4))))
        (out ** 2).sum().backward()
        opt.step()
        assert layer.weight.data.dtype == np.float32

    def test_full_model_float32(self, float32_mode):
        from repro.core import BasicFramework
        rng = np.random.default_rng(2)
        model = BasicFramework(5, 5, 3, rng, rank=2, encoder_dim=4,
                               hidden_dim=6)
        pred, _, _ = model(rng.uniform(size=(2, 3, 5, 5, 3)), horizon=1)
        assert pred.data.dtype == np.float32
        assert np.allclose(pred.numpy().sum(-1), 1.0, atol=1e-5)
