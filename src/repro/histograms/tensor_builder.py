"""Building sparse OD stochastic speed tensors from trips.

Given a trip table, a city partition, and a histogram spec, this module
produces the sequence of sparse OD tensors ``M^(t) ∈ R^{N×N×K}`` (paper
§III): cell ``(o, d, :)`` is the speed histogram of trips departing in
interval ``t`` from region ``o`` to region ``d``, or all-zero when the
interval has no such trips.  The companion indication masks ``Ω^(t)``
mark the observed cells (used by the masked losses and the DisSim
metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..regions.city import City
from ..trips.trip import TripTable
from .histogram import HistogramSpec


@dataclass
class ODTensorSequence:
    """A sequence of (sparse) OD stochastic speed tensors.

    Attributes
    ----------
    tensors:
        ``(T, N, N', K)`` stacked histograms (all-zero where unobserved).
    mask:
        ``(T, N, N')`` boolean indication tensors Ω.
    counts:
        ``(T, N, N')`` trip counts behind each cell.
    spec:
        Histogram bucket layout.
    interval_minutes:
        Interval width; interval ``t`` covers
        ``[t*interval, (t+1)*interval)`` minutes since epoch.
    """

    tensors: np.ndarray
    mask: np.ndarray
    counts: np.ndarray
    spec: HistogramSpec
    interval_minutes: float
    #: Set for sequences derived from an already-validated one (slices)
    #: so the construction-time contract check is not repeated.
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self):
        if self.tensors.ndim != 4:
            raise ValueError(
                f"tensors must be (T, N, N', K), got {self.tensors.shape}")
        if self.mask.shape != self.tensors.shape[:3]:
            raise ValueError("mask shape must match tensors[:3]")
        if self.counts.shape != self.mask.shape:
            raise ValueError("counts shape must match mask")
        # Data contract at the construction boundary: NaN hard-errors,
        # non-bool masks are cast, drifted/malformed observed histograms
        # are renormalized/quarantined per the active ContractPolicy
        # (sliced views skip the re-check — the parent already ran it).
        if not getattr(self, "_validated", False):
            from ..contracts import get_contract_policy, validate_sequence
            if get_contract_policy().enabled:
                validate_sequence(self, "ODTensorSequence")

    @property
    def n_intervals(self) -> int:
        return self.tensors.shape[0]

    @property
    def n_origins(self) -> int:
        return self.tensors.shape[1]

    @property
    def n_destinations(self) -> int:
        return self.tensors.shape[2]

    @property
    def n_buckets(self) -> int:
        return self.tensors.shape[3]

    def sparsity(self) -> np.ndarray:
        """Fraction of *unobserved* OD cells per interval, shape ``(T,)``."""
        observed = self.mask.reshape(self.n_intervals, -1).mean(axis=1)
        return 1.0 - observed

    def coverage(self) -> float:
        """Fraction of OD pairs observed in at least one interval."""
        return float(self.mask.any(axis=0).mean())

    def slice(self, start: int, stop: int) -> "ODTensorSequence":
        return ODTensorSequence(self.tensors[start:stop],
                                self.mask[start:stop],
                                self.counts[start:stop],
                                self.spec, self.interval_minutes,
                                _validated=True)


def build_od_tensors(trips: TripTable, city: City,
                     spec: Optional[HistogramSpec] = None,
                     interval_minutes: float = 15.0,
                     n_intervals: Optional[int] = None,
                     min_trips: int = 1) -> ODTensorSequence:
    """Aggregate trips into the sparse OD tensor sequence.

    Parameters
    ----------
    trips:
        The trip table (origins/destinations as planar coordinates; they
        are mapped to regions with the city's partition).
    city:
        Provides the region partition.
    spec:
        Histogram layout; defaults to the paper's 7 buckets.
    interval_minutes:
        Time discretization (15 minutes in the paper).
    n_intervals:
        Total number of intervals; inferred from the last departure when
        omitted.
    min_trips:
        Minimum trips for a cell to count as observed (cells below the
        threshold stay empty, a standard robustness knob).
    """
    spec = spec or HistogramSpec.paper_default()
    n = city.n_regions
    if n_intervals is None:
        if len(trips) == 0:
            raise ValueError("cannot infer n_intervals from zero trips")
        n_intervals = int(trips.departure_min.max() // interval_minutes) + 1

    tensors = np.zeros((n_intervals, n, n, spec.n_buckets))
    counts = np.zeros((n_intervals, n, n))

    if len(trips):
        interval = (trips.departure_min // interval_minutes).astype(np.int64)
        keep = (interval >= 0) & (interval < n_intervals)
        interval = interval[keep]
        kept = trips[keep]
        origin = city.partition.assign(kept.origin_xy)
        dest = city.partition.assign(kept.dest_xy)
        bucket = spec.assign_bucket(kept.speed_ms)
        np.add.at(tensors, (interval, origin, dest, bucket), 1.0)
        np.add.at(counts, (interval, origin, dest), 1.0)

    mask = counts >= min_trips
    tensors[~mask] = 0.0
    totals = tensors.sum(axis=-1, keepdims=True)
    np.divide(tensors, totals, out=tensors, where=totals > 0)
    return ODTensorSequence(tensors=tensors, mask=mask, counts=counts,
                            spec=spec, interval_minutes=interval_minutes)


def ground_truth_tensors(field, spec: Optional[HistogramSpec] = None
                         ) -> np.ndarray:
    """Dense ground-truth tensors from a latent traffic field.

    Shape ``(T, N, N, K)``; every cell holds the exact bucket
    probabilities of the generating distribution.  Used by tests and by
    experiments that want to score against the noise-free truth instead
    of the sparse empirical tensors.
    """
    spec = spec or HistogramSpec.paper_default()
    edges = np.asarray(spec.edges)
    return np.stack([field.true_histogram(t, edges)
                     for t in range(field.n_intervals)])
