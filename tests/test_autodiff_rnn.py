"""Tests for GRU cells, stacked GRUs, and the seq2seq forecaster."""

import numpy as np
import pytest

from repro.autodiff import GRU, Adam, GRUCell, Seq2Seq, Tensor


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell(Tensor(rng.normal(size=(3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_state_bounded_by_tanh_dynamics(self, rng):
        cell = GRUCell(2, 4, rng)
        h = cell.initial_state(1)
        for _ in range(50):
            h = cell(Tensor(rng.normal(size=(1, 2)) * 5), h)
        assert np.abs(h.data).max() <= 1.0 + 1e-9

    def test_zero_update_gate_keeps_state(self, rng):
        cell = GRUCell(2, 3, rng)
        # Force update gate to 1 (u=1 keeps previous state entirely).
        cell.w_update.data[:] = 0.0
        cell.b_update.data[:] = 100.0
        h0 = Tensor(rng.normal(size=(1, 3)))
        h1 = cell(Tensor(rng.normal(size=(1, 2))), h0)
        assert np.allclose(h1.data, h0.data, atol=1e-6)

    def test_gradients_flow_through_time(self, rng):
        cell = GRUCell(2, 3, rng)
        x = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        h = cell.initial_state(1)
        for _ in range(5):
            h = cell(x, h)
        (h ** 2).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0


class TestGRU:
    def test_sequence_shapes(self, rng):
        gru = GRU(3, 5, rng, num_layers=2)
        out, states = gru(Tensor(rng.normal(size=(2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert len(states) == 2
        assert states[0].shape == (2, 5)

    def test_final_state_matches_last_output(self, rng):
        gru = GRU(3, 5, rng)
        out, states = gru(Tensor(rng.normal(size=(2, 7, 3))))
        assert np.allclose(out.data[:, -1], states[0].data)

    def test_invalid_layers(self, rng):
        with pytest.raises(ValueError):
            GRU(3, 5, rng, num_layers=0)

    def test_initial_state_must_match_layers(self, rng):
        gru = GRU(3, 5, rng, num_layers=2)
        with pytest.raises(ValueError):
            gru(Tensor(rng.normal(size=(2, 4, 3))), initial=[Tensor(np.zeros((2, 5)))])


class TestSeq2Seq:
    def test_forecast_shape(self, rng):
        model = Seq2Seq(4, 6, 4, rng)
        out = model(Tensor(rng.normal(size=(3, 5, 4))), horizon=2)
        assert out.shape == (3, 2, 4)

    def test_different_output_size(self, rng):
        model = Seq2Seq(4, 6, 9, rng)
        out = model(Tensor(rng.normal(size=(2, 5, 4))), horizon=3)
        assert out.shape == (2, 3, 9)

    def test_teacher_forcing_requires_targets(self, rng):
        model = Seq2Seq(4, 6, 4, rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.normal(size=(2, 5, 4))), horizon=2,
                  teacher_forcing=0.5)

    def test_learns_constant_sequence(self, rng):
        """A seq2seq should learn to forecast a repeating pattern."""
        model = Seq2Seq(2, 16, 2, rng)
        opt = Adam(model.parameters(), lr=0.01)
        t = np.arange(40)
        series = np.stack([np.sin(t * 0.5), np.cos(t * 0.5)], axis=-1)
        histories, targets = [], []
        for i in range(30):
            histories.append(series[i:i + 6])
            targets.append(series[i + 6:i + 8])
        x, y = np.stack(histories), np.stack(targets)
        first = None
        for _ in range(80):
            out = model(Tensor(x), horizon=2)
            loss = ((out - Tensor(y)) ** 2).mean()
            if first is None:
                first = loss.item()
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.3

    def test_all_params_receive_grads(self, rng):
        model = Seq2Seq(3, 4, 3, rng, num_layers=2)
        out = model(Tensor(rng.normal(size=(2, 4, 3))), horizon=2)
        (out ** 2).sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing


class TestLSTMCell:
    def test_state_shapes(self, rng):
        from repro.autodiff import LSTMCell
        cell = LSTMCell(3, 5, rng)
        h, c = cell(Tensor(rng.normal(size=(2, 3))), cell.initial_state(2))
        assert h.shape == (2, 5) and c.shape == (2, 5)

    def test_hidden_bounded(self, rng):
        from repro.autodiff import LSTMCell
        cell = LSTMCell(2, 4, rng)
        state = cell.initial_state(1)
        for _ in range(40):
            state = cell(Tensor(rng.normal(size=(1, 2)) * 4), state)
        h, c = state
        assert np.abs(h.data).max() <= 1.0 + 1e-9

    def test_forget_bias_initialized_to_one(self, rng):
        from repro.autodiff import LSTMCell
        cell = LSTMCell(2, 4, rng)
        assert np.allclose(cell.b_forget.data, 1.0)

    def test_gradients_flow_through_time(self, rng):
        from repro.autodiff import LSTMCell
        cell = LSTMCell(2, 3, rng)
        x = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        state = cell.initial_state(1)
        for _ in range(5):
            state = cell(x, state)
        (state[0] ** 2).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_learns_memory_task(self, rng):
        """LSTM can learn to remember the first input of a sequence."""
        from repro.autodiff import Adam, LSTMCell, Linear
        cell = LSTMCell(1, 8, rng)
        head = Linear(8, 1, rng)
        params = cell.parameters() + head.parameters()
        opt = Adam(params, lr=0.02)
        first = None
        for step in range(120):
            batch_rng = np.random.default_rng(step)
            targets = batch_rng.choice([-1.0, 1.0], size=(16, 1))
            state = cell.initial_state(16)
            state = cell(Tensor(targets), state)
            for _ in range(4):
                state = cell(Tensor(np.zeros((16, 1))), state)
            out = head(state[0])
            loss = ((out - Tensor(targets)) ** 2).mean()
            if first is None:
                first = loss.item()
            for p in params:
                p.grad = None
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.2
