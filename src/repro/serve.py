"""Long-running forecast serving: registry, cache, batching, workers.

The experiment harness answers "how good is the model?"; this module
answers production's question — *given everything observed up to now,
what are the next ``h`` OD tensors, for this city, right now?* — over
and over, from one process, for many deployments at once.  It stacks
four layers on top of the :mod:`repro.forecast` facade:

1. :class:`ModelRegistry` — one SHA-256-verified checkpoint per
   ``(city, scenario)`` :class:`ModelKey`, loaded lazily through
   :func:`repro.persistence.load_checkpoint`, LRU-evicted beyond
   ``max_models``, and hot-reloaded when the checkpoint file changes on
   disk.  A checkpoint that fails its checksum is *never* served: the
   stale instance is dropped, a ``model_error`` event is emitted, and
   the request degrades (see below).
2. An inference-only fast path — each loaded model is wrapped in a
   forward-only :class:`repro.autodiff.InferenceEngine` (tapes captured
   in eval mode with no loss or backward schedule) so warm requests
   skip graph construction entirely.
3. :class:`ForecastService` — per-request contract validation, an LRU
   :class:`ResponseCache` keyed on (model key, window signature,
   horizon), micro-batching of concurrent same-model queries
   (:meth:`ForecastService.submit` coalesces submissions within
   ``batch_window`` seconds into one batched forward, split back per
   caller), and per-request JSONL telemetry.
4. :class:`ForecastWorkerPool` — fork-isolated serving processes (the
   fault-isolation pattern of ``experiments.runner``): a request that
   hangs or kills its worker is timed out, the worker respawned, the
   request retried, and — when retries are exhausted — answered from
   the parent's stale-response mirror, flagged ``degraded``.  Request
   windows and response histograms travel through a per-worker
   shared-memory slot ring (:mod:`repro.serve_shm`) so the pipe carries
   only tiny control frames, with automatic fallback to the pickled
   transport when a payload exceeds the largest slot; admission is
   deadline-aware — an overloaded worker queue or an unmeetable
   ``ForecastRequest.deadline`` sheds the request with
   :class:`~repro.serve_shm.ShedError` before any work is done.

Degradation ladder (per request, after admission): fresh cache hit ->
healthy shm forward -> pickled-pipe fallback -> retry on a respawned
worker (ring walk) -> stale cached answer (``degraded=True``,
``cache="stale"``) -> :class:`ModelUnavailableError`.  Shedding is the
fast-fail outside the ladder: it consumes no retry and serves no stale
answer.

See ``docs/SERVING.md`` for the operational guide and the telemetry
event schema (``model_load/model_reload/model_evict/model_error/
serve_request/worker_spawn/worker_death/serve_shed/transport_fallback/
serve_queue_depth``).
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import queue
import threading
import time
import warnings
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .autodiff.module import Module
from .autodiff.replay import InferenceEngine
from .contracts import ContractPolicy, ContractViolation, check_finite
from .forecast import latest_history, tail_slice
from .histograms.tensor_builder import ODTensorSequence
from .persistence import load_checkpoint
from .serve_shm import (AdmissionController, DEFAULT_SLOT_BYTES, ShedError,
                        ShmRing, SlotOverflowError, TransportFallbackWarning,
                        shared_memory_available)
from .telemetry import TelemetrySink, emit

__all__ = [
    "ForecastRequest",
    "ForecastResponse",
    "ForecastService",
    "ForecastWorkerPool",
    "LoadedModel",
    "ModelKey",
    "ModelRegistry",
    "ModelUnavailableError",
    "ResponseCache",
    "ServeConfig",
    "ShedError",
    "TransportFallbackWarning",
    "window_signature",
]

#: Engine names a loaded model can execute with ("eager" bypasses the
#: inference tapes entirely; "replay"/"lowered" wrap the model in an
#: :class:`InferenceEngine`).
SERVE_ENGINES = ("eager", "replay", "lowered")

#: Data-plane transports for :class:`ForecastWorkerPool` ("shm" ships
#: array bytes through a per-worker shared-memory slot ring and falls
#: back per request when a payload does not fit; "pickle" forces the
#: original pickled-pipe transport).
SERVE_TRANSPORTS = ("shm", "pickle")


@dataclass(frozen=True)
class ModelKey:
    """One deployment: a city plus a scenario label (e.g. ``weekday``)."""

    city: str
    scenario: str = "default"

    def __str__(self) -> str:
        return f"{self.city}/{self.scenario}"


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs for the service (all layers share one config)."""

    #: Execution engine for loaded models (see :data:`SERVE_ENGINES`).
    engine: str = "replay"
    #: Loaded models kept in memory; least-recently-served is evicted.
    max_models: int = 8
    #: Response-cache entries; 0 disables the cache.
    cache_size: int = 256
    #: When set, cached forecasts expire at the next wall-clock
    #: boundary of this many minutes (the OD tensor interval clock):
    #: a forecast cached at 10:07 with 15-minute intervals dies at
    #: 10:15, when the next interval's data can first arrive.  None
    #: keeps entries until LRU eviction (the historical behaviour).
    cache_interval_minutes: Optional[float] = None
    #: Seconds :meth:`ForecastService.submit` waits to coalesce
    #: concurrent requests into one batched forward.
    batch_window: float = 0.002
    #: Hard ceiling on coalesced batch size.
    max_batch: int = 32
    #: Per-request worker timeout (seconds); None waits forever.
    request_timeout: Optional[float] = 30.0
    #: Worker attempts per request beyond the first (respawn + retry).
    retries: int = 1
    #: Degrade to the last known answer instead of failing outright.
    stale_ok: bool = True

    def __post_init__(self):
        if self.engine not in SERVE_ENGINES:
            raise ValueError(
                f"engine must be one of {SERVE_ENGINES}, got "
                f"{self.engine!r}")
        if self.max_models < 1:
            raise ValueError("max_models must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.cache_interval_minutes is not None \
                and self.cache_interval_minutes <= 0:
            raise ValueError("cache_interval_minutes must be positive")


class ModelUnavailableError(RuntimeError):
    """No healthy model instance can answer for this key right now."""

    def __init__(self, key: ModelKey, reason: str):
        super().__init__(f"model {key}: {reason}")
        self.key = key
        self.reason = reason


def window_signature(history: np.ndarray) -> str:
    """Content hash of one model input window (cache identity).

    Covers dtype, shape, and raw bytes, so two requests share a cache
    entry iff the model would see bit-identical input.
    """
    arr = np.ascontiguousarray(history)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass
class LoadedModel:
    """One live model instance: module + engine + file fingerprint."""

    key: ModelKey
    model: Module
    engine: Optional[InferenceEngine]
    epoch: int
    fingerprint: Tuple[int, int, int]

    def predict(self, histories: np.ndarray, horizon: int) -> np.ndarray:
        """``(B, h, N, N', K)`` prediction for a batch of histories."""
        if self.engine is not None:
            return self.engine.predict(histories, horizon)
        was_training = bool(self.model.training)
        if was_training:
            self.model.eval()
        try:
            prediction, _, _ = self.model(histories, horizon)
        finally:
            if was_training:
                self.model.train()
        return prediction.numpy()


class ModelRegistry:
    """Lazily loads and hot-reloads checksummed checkpoints per key.

    ``register`` records where a deployment's checkpoint lives and how
    to rebuild its (untrained) architecture; nothing is read until the
    first ``get``.  Every ``get`` re-stats the file: a changed
    fingerprint (mtime/size/inode — atomic ``save_checkpoint`` replaces
    the inode) triggers a reload, and the previous instance is dropped
    *before* the reload is attempted so a corrupt rewrite can never
    leave a stale model serving under a fresh file.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 telemetry: TelemetrySink = None):
        self.config = config or ServeConfig()
        self.telemetry = telemetry
        self._registered: Dict[ModelKey, tuple] = {}
        self._loaded: "OrderedDict[ModelKey, LoadedModel]" = OrderedDict()
        self.loads = 0
        self.reloads = 0
        self.evictions = 0
        self.errors = 0

    def register(self, key: ModelKey, checkpoint_path,
                 builder: Callable[[], Module],
                 warm: Optional[Tuple[int, int]] = None) -> None:
        """Announce a deployment.  Re-registering a key drops any loaded
        instance (the next request reloads from the new path).

        ``warm=(s, horizon)`` captures the inference tape at load and
        hot-reload time with an all-zeros ``(1, s, N, N', K)`` history,
        so the first real request replays a warm tape instead of paying
        the capture cost (BENCH_SERVE.json's cold-capture p99)."""
        self._registered[key] = (Path(checkpoint_path), builder, warm)
        self._loaded.pop(key, None)

    def keys(self) -> List[ModelKey]:
        return list(self._registered)

    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint(path: Path) -> Tuple[int, int, int]:
        stat = path.stat()
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def get(self, key: ModelKey) -> LoadedModel:
        """The live instance for ``key`` (loading/reloading as needed).

        Raises :class:`ModelUnavailableError` when the key is unknown or
        its checkpoint is missing/corrupt — a failed checksum is
        reported (``model_error``) and *not* served.
        """
        entry = self._registered.get(key)
        if entry is None:
            raise ModelUnavailableError(key, "not registered")
        path, builder, warm = entry
        try:
            fingerprint = self._fingerprint(path)
        except OSError as exc:
            self._loaded.pop(key, None)
            self.errors += 1
            emit(self.telemetry, "model_error", key=str(key),
                 path=str(path), error=f"{type(exc).__name__}: {exc}")
            raise ModelUnavailableError(
                key, f"checkpoint unreadable: {exc}") from exc
        loaded = self._loaded.get(key)
        if loaded is not None and loaded.fingerprint == fingerprint:
            self._loaded.move_to_end(key)
            return loaded
        reload = loaded is not None
        # Drop first: between here and a successful load there is no
        # instance, so a corrupt rewrite can never serve stale weights.
        self._loaded.pop(key, None)
        loaded = self._load(key, path, builder, fingerprint, reload, warm)
        self._loaded[key] = loaded
        while len(self._loaded) > self.config.max_models:
            evicted, _ = self._loaded.popitem(last=False)
            self.evictions += 1
            emit(self.telemetry, "model_evict", key=str(evicted))
        return loaded

    def _load(self, key: ModelKey, path: Path, builder, fingerprint,
              reload: bool,
              warm: Optional[Tuple[int, int]] = None) -> LoadedModel:
        start = time.perf_counter()
        try:
            model = builder()
            checkpoint = load_checkpoint(path)    # SHA-256 verified
            state = checkpoint.best_state or checkpoint.model_state
            model.load_state_dict(state)
        except Exception as exc:   # CheckpointCorruptError, bad state, ...
            self.errors += 1
            emit(self.telemetry, "model_error", key=str(key),
                 path=str(path), error=f"{type(exc).__name__}: {exc}")
            raise ModelUnavailableError(
                key, f"checkpoint rejected: {exc}") from exc
        model.eval()
        engine = None
        if self.config.engine != "eager":
            engine = InferenceEngine(
                model, lower=(self.config.engine == "lowered"))
            if warm is not None:
                self._warm(key, model, engine, warm)
        self.loads += 1
        self.reloads += int(reload)
        emit(self.telemetry, "model_reload" if reload else "model_load",
             key=str(key), path=str(path), epoch=checkpoint.epoch,
             seconds=time.perf_counter() - start)
        return LoadedModel(key=key, model=model, engine=engine,
                           epoch=checkpoint.epoch, fingerprint=fingerprint)

    def _warm(self, key: ModelKey, model: Module,
              engine: InferenceEngine,
              warm: Tuple[int, int]) -> None:
        """Capture the inference tape with a synthetic all-zeros window.

        Best-effort: a model whose architecture the zeros window does
        not fit must still load and serve, so failures are reported as
        telemetry, never raised."""
        s, horizon = warm
        start = time.perf_counter()
        try:
            shape = (1, int(s), model.n_origins, model.n_destinations,
                     model.n_buckets)
            engine.predict(np.zeros(shape), int(horizon))
        except Exception as exc:
            emit(self.telemetry, "model_warm_error", key=str(key),
                 error=f"{type(exc).__name__}: {exc}")
            return
        emit(self.telemetry, "model_warm", key=str(key), s=int(s),
             horizon=int(horizon),
             seconds=time.perf_counter() - start)

    def stats(self) -> Dict[str, int]:
        return {"registered": len(self._registered),
                "loaded": len(self._loaded), "loads": self.loads,
                "reloads": self.reloads, "evictions": self.evictions,
                "errors": self.errors}


# ----------------------------------------------------------------------
# response cache
# ----------------------------------------------------------------------
class ResponseCache:
    """LRU of served predictions, keyed (model key, signature, horizon).

    Stores and returns *copies*: a cached answer must stay bit-identical
    to the forward that produced it even if a caller mutates what it was
    handed.

    With ``interval_minutes`` set, entries carry an expiry aligned to
    the OD tensor interval clock: every entry cached inside one
    wall-clock interval dies at that interval's *end* — the first
    moment the next interval's data can exist and make the answer
    stale.  ``clock`` is injectable for tests (defaults to
    :func:`time.time`).
    """

    def __init__(self, max_entries: int = 256,
                 interval_minutes: Optional[float] = None,
                 clock: Callable[[], float] = time.time):
        if interval_minutes is not None and interval_minutes <= 0:
            raise ValueError("interval_minutes must be positive")
        self.max_entries = int(max_entries)
        self.interval_minutes = interval_minutes
        self.clock = clock
        self._entries: \
            "OrderedDict[tuple, Tuple[Optional[float], np.ndarray]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _expiry(self) -> Optional[float]:
        """End of the current wall-clock interval, or None (no TTL)."""
        if self.interval_minutes is None:
            return None
        period = self.interval_minutes * 60.0
        return (int(self.clock() // period) + 1) * period

    def get(self, key: tuple) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires_at, prediction = entry
        if expires_at is not None and self.clock() >= expires_at:
            del self._entries[key]
            self.expired += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return prediction.copy()

    def put(self, key: tuple, prediction: np.ndarray) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = (self._expiry(),
                              np.array(prediction, copy=True))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_model(self, model_key: ModelKey) -> int:
        """Drop every entry served by ``model_key`` (hot-reload)."""
        stale = [k for k in self._entries if k[0] == model_key]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "expired": self.expired}


# ----------------------------------------------------------------------
# requests / responses
# ----------------------------------------------------------------------
@dataclass
class ForecastRequest:
    """One "forecast now" query against a registered deployment."""

    key: ModelKey
    sequence: ODTensorSequence
    s: int
    horizon: int
    #: Absolute ``time.monotonic()`` seconds by which the caller needs
    #: the answer.  None = no deadline.  The worker pool sheds the
    #: request (:class:`~repro.serve_shm.ShedError`) when the deadline
    #: has passed or cannot be met given the queue depth and the
    #: observed per-forward latency EWMA; workers refuse to start a
    #: forward whose deadline already expired in flight.
    deadline: Optional[float] = None

    def tail(self) -> "ForecastRequest":
        """Same query over only the last ``s`` intervals — what a
        parent ships to a worker process (O(s) payload)."""
        return replace(self, sequence=tail_slice(self.sequence, self.s))


@dataclass
class ForecastResponse:
    """The answer plus how it was produced (for telemetry and SLAs)."""

    key: ModelKey
    horizon: int
    prediction: Optional[np.ndarray]
    cache: str = "miss"            # "hit" | "miss" | "stale"
    seconds: float = 0.0
    batch: int = 1                 # coalesced batch size for this forward
    degraded: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _Pending:
    """A submitted request waiting for the micro-batcher."""

    __slots__ = ("request", "event", "response")

    def __init__(self, request: ForecastRequest):
        self.request = request
        self.event = threading.Event()
        self.response: Optional[ForecastResponse] = None


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class ForecastService:
    """Registry + cache + micro-batching behind one ``forecast`` call.

    Thread-safe: concurrent callers (and the micro-batch thread) are
    serialized around the registry/cache; the win from batching is one
    model forward for many requests, not parallel forwards.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[ModelRegistry] = None,
                 telemetry: TelemetrySink = None,
                 policy: Optional[ContractPolicy] = None):
        self.config = config or ServeConfig()
        self.telemetry = telemetry
        self.policy = policy
        self.registry = registry or ModelRegistry(self.config, telemetry)
        self.cache = ResponseCache(
            self.config.cache_size,
            interval_minutes=self.config.cache_interval_minutes)
        self.requests = 0
        self._versions: Dict[ModelKey, tuple] = {}
        self._last: Dict[Tuple[ModelKey, int], np.ndarray] = {}
        self._lock = threading.RLock()
        self._batcher: Optional[_MicroBatcher] = None

    # ------------------------------------------------------------------
    def register(self, key: ModelKey, checkpoint_path,
                 builder: Callable[[], Module],
                 warm: Optional[Tuple[int, int]] = None) -> None:
        self.registry.register(key, checkpoint_path, builder, warm=warm)

    def forecast(self, key: ModelKey, sequence: ODTensorSequence, s: int,
                 horizon: int) -> np.ndarray:
        """``(horizon, N, N', K)`` forecast; raises on failure."""
        response = self.forecast_one(
            ForecastRequest(key, sequence, s, horizon))
        if not response.ok:
            raise ModelUnavailableError(key, response.error)
        return response.prediction

    def forecast_one(self, request: ForecastRequest) -> ForecastResponse:
        """One request -> one response (errors reported, not raised)."""
        return self.forecast_many([request])[0]

    def forecast_many(self, requests: List[ForecastRequest]
                      ) -> List[ForecastResponse]:
        """Serve a batch: same-model misses coalesce into one forward.

        Requests are grouped by (key, s, horizon, input shape/dtype);
        within a group, cache hits are answered immediately and the
        remaining histories are stacked into a single batched forward
        and split back per caller.  Response order matches request
        order.
        """
        with self._lock:
            return self._forecast_many(requests)

    def _forecast_many(self, requests: List[ForecastRequest]
                       ) -> List[ForecastResponse]:
        responses: List[Optional[ForecastResponse]] = [None] * len(requests)
        groups: Dict[tuple, List[tuple]] = {}
        for i, request in enumerate(requests):
            self.requests += 1
            start = time.perf_counter()
            try:
                history = latest_history(request.sequence, request.s,
                                         self.policy)[None]
            except (ValueError, ContractViolation) as exc:
                responses[i] = self._done(request, ForecastResponse(
                    request.key, request.horizon, None,
                    seconds=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}"))
                continue
            group = (request.key, request.s, request.horizon,
                     history.shape, history.dtype.str)
            groups.setdefault(group, []).append((i, start, history))
        for (key, s, horizon, _, _), members in groups.items():
            self._serve_group(key, s, horizon, members, requests,
                              responses)
        return responses

    def _serve_group(self, key: ModelKey, s: int, horizon: int,
                     members, requests, responses) -> None:
        try:
            loaded = self.registry.get(key)
        except ModelUnavailableError as exc:
            for i, start, history in members:
                responses[i] = self._degrade(
                    requests[i], window_signature(history), start,
                    str(exc))
            return
        # A hot-reload changed the weights: answers cached from the
        # previous instance must never be served again.
        if self._versions.get(key) != loaded.fingerprint:
            self.cache.invalidate_model(key)
            self._versions[key] = loaded.fingerprint
        misses: List[tuple] = []
        for i, start, history in members:
            signature = window_signature(history)
            cached = self.cache.get((key, signature, horizon))
            if cached is not None:
                responses[i] = self._done(requests[i], ForecastResponse(
                    key, horizon, cached, cache="hit",
                    seconds=time.perf_counter() - start))
            else:
                misses.append((i, start, history, signature))
        for chunk_start in range(0, len(misses), self.config.max_batch):
            chunk = misses[chunk_start:chunk_start + self.config.max_batch]
            self._forward_chunk(loaded, key, horizon, chunk, requests,
                                responses)

    def _forward_chunk(self, loaded: LoadedModel, key: ModelKey,
                       horizon: int, chunk, requests, responses) -> None:
        histories = np.concatenate([history for _, _, history, _ in chunk])
        try:
            batch = loaded.predict(histories, horizon)
            for row, (i, _, _, _) in enumerate(chunk):
                check_finite(batch[row], "prediction", "serve",
                             self.policy)
        except Exception as exc:    # noqa: BLE001 - degrade, don't die
            for i, start, history, signature in chunk:
                responses[i] = self._degrade(
                    requests[i], signature, start,
                    f"{type(exc).__name__}: {exc}")
            return
        for row, (i, start, history, signature) in enumerate(chunk):
            prediction = np.array(batch[row], copy=True)
            self.cache.put((key, signature, horizon), prediction)
            self._last[(key, horizon)] = prediction
            responses[i] = self._done(requests[i], ForecastResponse(
                key, horizon, prediction, cache="miss",
                seconds=time.perf_counter() - start, batch=len(chunk)))

    def _degrade(self, request: ForecastRequest, signature: str,
                 start: float, error: str) -> ForecastResponse:
        """Last rung before failing: a stale answer, clearly flagged."""
        if self.config.stale_ok:
            stale = self.cache.get(
                (request.key, signature, request.horizon))
            if stale is None:
                last = self._last.get((request.key, request.horizon))
                stale = None if last is None else last.copy()
            if stale is not None:
                return self._done(request, ForecastResponse(
                    request.key, request.horizon, stale, cache="stale",
                    seconds=time.perf_counter() - start, degraded=True))
        return self._done(request, ForecastResponse(
            request.key, request.horizon, None,
            seconds=time.perf_counter() - start, error=error))

    def _done(self, request: ForecastRequest,
              response: ForecastResponse) -> ForecastResponse:
        emit(self.telemetry, "serve_request", key=str(request.key),
             s=request.s, horizon=request.horizon, cache=response.cache,
             seconds=response.seconds, batch=response.batch,
             degraded=response.degraded, error=response.error)
        return response

    # ------------------------------------------------------------------
    def submit(self, request: ForecastRequest) -> _Pending:
        """Async entry: queue a request for micro-batched execution.

        Concurrent submissions for the same model landing within
        ``config.batch_window`` seconds run as one batched forward; the
        returned handle resolves via :meth:`result`.
        """
        with self._lock:
            if self._batcher is None:
                self._batcher = _MicroBatcher(self)
        return self._batcher.submit(request)

    def result(self, pending: _Pending,
               timeout: Optional[float] = None) -> ForecastResponse:
        """Block until a submitted request is answered."""
        if not pending.event.wait(timeout):
            raise TimeoutError("forecast not ready within timeout")
        return pending.response

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        engines: Dict[str, object] = {}
        for key, loaded in self.registry._loaded.items():
            if loaded.engine is not None:
                engines[str(key)] = loaded.engine.stats()
        return {"requests": self.requests, "cache": self.cache.stats(),
                "registry": self.registry.stats(), "engines": engines}

    def close(self) -> None:
        with self._lock:
            batcher, self._batcher = self._batcher, None
        if batcher is not None:
            batcher.close()


class _MicroBatcher:
    """Coalesces concurrent submissions into batched forwards.

    One daemon thread drains the submission queue: the first request
    opens a window of ``batch_window`` seconds; everything arriving
    before it closes (up to ``max_batch``) is served by a single
    :meth:`ForecastService.forecast_many` call.
    """

    def __init__(self, service: ForecastService):
        self.service = service
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True)
        self._thread.start()

    def submit(self, request: ForecastRequest) -> _Pending:
        pending = _Pending(request)
        self._queue.put(pending)
        return pending

    def close(self) -> None:
        self._queue.put(None)
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        config = self.service.config
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + config.batch_window
            stop = False
            while len(batch) < config.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            try:
                responses = self.service.forecast_many(
                    [p.request for p in batch])
            except Exception as exc:  # noqa: BLE001 - report, don't die
                responses = [ForecastResponse(
                    p.request.key, p.request.horizon, None,
                    error=f"{type(exc).__name__}: {exc}") for p in batch]
            for pending, response in zip(batch, responses):
                pending.response = response
                pending.event.set()
            if stop:
                return


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------
def _serve_request(service, request: ForecastRequest) -> ForecastResponse:
    """Serve one request inside a worker, deadline-checked, never raising."""
    if request.deadline is not None \
            and time.monotonic() >= request.deadline:
        return ForecastResponse(
            request.key, request.horizon, None,
            error="DeadlineExceeded: expired before the forward started")
    try:
        return service.forecast_one(request)
    except Exception as exc:  # noqa: BLE001 - workers must not die
        return ForecastResponse(
            request.key, request.horizon, None,
            error=f"{type(exc).__name__}: {exc}")


def _serve_shm_frame(service, ring, request_id, slot,
                     meta) -> ForecastResponse:
    """Rebuild a request from its ring slot (zero-copy) and serve it.

    Function-local on purpose: every view into the segment dies when
    this frame returns, so the ring can close cleanly at shutdown.
    """
    key, s, horizon, spec, interval_minutes, deadline = meta
    arrays, _ = ring.read(slot, request_id, copy=False)
    tensors, mask, counts = arrays
    sequence = ODTensorSequence(
        tensors=tensors, mask=mask, counts=counts, spec=spec,
        interval_minutes=interval_minutes, _validated=True)
    return _serve_request(service, ForecastRequest(
        key, sequence, s, horizon, deadline=deadline))


def _worker_loop(conn, service_factory, ring=None) -> None:
    """Body of one serving worker: recv control frame, serve, reply.

    Frames are ``("shm", id, slot, meta)`` — array bytes live in the
    shared-memory ring, the pipe carries only this control tuple — or
    ``("pickle", id, request)``, the legacy transport.  Responses go
    back through the request's slot when the histogram fits, else as a
    pickled frame.  The ``finally`` closes and best-effort-unlinks the
    ring so even a worker that outlives its parent leaves nothing in
    ``/dev/shm``.
    """
    service = service_factory()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            kind, request_id = message[0], message[1]
            if kind == "shm":
                slot, meta = message[2], message[3]
                try:
                    response = _serve_shm_frame(service, ring, request_id,
                                                slot, meta)
                except Exception as exc:  # noqa: BLE001 - bad frame
                    response = ForecastResponse(
                        meta[0], meta[2], None,
                        error=f"{type(exc).__name__}: {exc}")
                frame = None
                if response.ok and response.prediction is not None:
                    try:     # response histogram written once, in place
                        ring.write(slot, [response.prediction], request_id)
                        frame = ("shm", request_id, slot,
                                 replace(response, prediction=None))
                    except (SlotOverflowError, ValueError):
                        frame = None     # doesn't fit: pickle it instead
                if frame is None:
                    frame = ("pickle", request_id, response)
            else:
                request = message[2]
                response = _serve_request(service, request)
                frame = ("pickle", request_id, response)
            try:
                conn.send(frame)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
        if ring is not None:
            ring.close()
            ring.unlink()    # no-op if the parent already unlinked


class ForecastWorkerPool:
    """Process-isolated serving: crashes and hangs cannot take the
    parent down.

    Reuses the fork-pool fault-isolation pattern of
    ``experiments.runner``: each worker is a forked process owning a
    full :class:`ForecastService` (built by ``service_factory``).  With
    ``affinity`` on (the default), requests for one model key always
    land on ``crc32(key) % n_workers``, so each worker's registry,
    inference tape, and response cache stay hot for the keys it owns
    instead of every worker cold-loading every model; retries step to
    the next slot so a wedged owner cannot blackhole its keys.
    ``affinity=False`` restores round-robin dispatch.  Only the last
    ``s`` intervals of the sequence are shipped (O(s) payload).

    **Data plane** (``transport="shm"``, the default): each worker owns
    a :class:`~repro.serve_shm.ShmRing` — request windows are written
    once into a free slot by the parent, response histograms once by
    the worker, and the pipe carries only tiny control frames.  When
    shared memory is unavailable, or a payload exceeds ``slot_bytes``,
    the request falls back to the pickled pipe (bit-identical answer,
    one-shot :class:`~repro.serve_shm.TransportFallbackWarning`,
    ``transport_fallbacks`` counter, ``transport_fallback`` event).

    **Backpressure**: admission is checked against the key's owner
    worker before any dispatch — a queue already ``max_inflight`` deep,
    or a ``ForecastRequest.deadline`` that has passed or cannot be met
    given ``(queue depth + 1) x`` the observed per-forward latency
    EWMA, sheds the request with :class:`~repro.serve_shm.ShedError`
    (fast-fail: no worker touched, no retry consumed, no stale answer).

    A request that exceeds ``request_timeout`` or whose worker dies
    mid-flight gets the worker terminated, its shared-memory segment
    unlinked, a replacement spawned (fresh ring), and the request
    retried; when retries are exhausted the parent's stale-response
    mirror answers, flagged ``degraded`` — the ladder's last rung
    before :class:`ModelUnavailableError`.
    """

    def __init__(self, service_factory: Callable[[], ForecastService],
                 n_workers: int = 2,
                 request_timeout: Optional[float] = 30.0,
                 retries: int = 1, stale_ok: bool = True,
                 affinity: bool = True,
                 transport: str = "shm",
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 ring_slots: int = 2,
                 max_inflight: int = 8,
                 telemetry: TelemetrySink = None):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ForecastWorkerPool needs the fork start method")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if transport not in SERVE_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {SERVE_TRANSPORTS}, got "
                f"{transport!r}")
        self._factory = service_factory
        self._ctx = multiprocessing.get_context("fork")
        self.request_timeout = request_timeout
        self.retries = int(retries)
        self.stale_ok = bool(stale_ok)
        self.affinity = bool(affinity)
        self.slot_bytes = int(slot_bytes)
        self.ring_slots = int(ring_slots)
        self.telemetry = telemetry
        self.deaths = 0
        self.timeouts = 0
        self.degraded = 0
        self.sheds = 0
        self.transport_fallbacks = 0
        self._fallback_warned = False
        self.transport = transport
        if transport == "shm" and not shared_memory_available():
            self._note_fallback(-1, "multiprocessing.shared_memory "
                                    "unavailable on this platform")
            self.transport = "pickle"
        self._admission = AdmissionController(n_workers,
                                              max_inflight=max_inflight)
        self._last: Dict[Tuple[ModelKey, int], np.ndarray] = {}
        self._request_ids = itertools.count(1)
        self._next = 0
        self._workers: List[Optional[tuple]] = [None] * n_workers
        self._locks = [threading.Lock() for _ in range(n_workers)]
        self._closed = False
        for slot in range(n_workers):
            self._spawn(slot)

    # ------------------------------------------------------------------
    def _note_fallback(self, slot: int, reason: str,
                       direction: str = "request") -> None:
        """Count (and once, warn about) a pickled-transport fallback."""
        self.transport_fallbacks += 1
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                f"shm transport fell back to the pickled pipe: {reason} "
                f"(further fallbacks counted silently)",
                TransportFallbackWarning, stacklevel=3)
        emit(self.telemetry, "transport_fallback", slot=slot,
             reason=reason, direction=direction)

    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        ring = None
        if self.transport == "shm":
            try:
                ring = ShmRing(slot_bytes=self.slot_bytes,
                               n_slots=self.ring_slots)
            except (OSError, RuntimeError) as exc:
                self._note_fallback(
                    slot, f"ring creation failed: {exc}")
                self.transport = "pickle"
        proc = self._ctx.Process(
            target=_worker_loop, args=(child_conn, self._factory, ring),
            name=f"repro-serve-worker-{slot}", daemon=True)
        proc.start()
        child_conn.close()
        self._workers[slot] = (proc, parent_conn, ring)
        emit(self.telemetry, "worker_spawn", slot=slot, pid=proc.pid,
             transport="shm" if ring is not None else "pickle")

    def _kill(self, slot: int, reason: str) -> None:
        proc, conn, ring = self._workers[slot]
        self.deaths += 1
        emit(self.telemetry, "worker_death", slot=slot, pid=proc.pid,
             reason=reason)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():     # wedged (or stopped): escalate to SIGKILL
            proc.kill()
            proc.join(timeout=5.0)
        conn.close()
        # Unlink the dead worker's segment *before* forking the
        # replacement: a SIGKILLed worker never runs its cleanup, and
        # leaking one /dev/shm segment per respawn would eventually
        # exhaust shared memory.
        if ring is not None:
            ring.close()
            ring.unlink()
        self._spawn(slot)

    # ------------------------------------------------------------------
    def _slot_for(self, key: ModelKey, attempt: int) -> int:
        """Worker slot for ``key`` on the given retry attempt.

        crc32 (not ``hash``) so the mapping is stable across processes
        and runs — per-interpreter string-hash randomisation would
        reshuffle key ownership on every restart and defeat the warm
        caches affinity exists to protect.  Retries walk to the
        neighbouring slots."""
        n = len(self._workers)
        if not self.affinity:       # round-robin advances per attempt
            slot = self._next
            self._next = (self._next + 1) % n
            return slot
        base = zlib.crc32(str(key).encode()) % n
        return (base + attempt) % n

    def _shed(self, request: ForecastRequest, slot: int,
              exc: ShedError) -> None:
        """Record a shed (telemetry + counter) and re-raise it."""
        self.sheds += 1
        stats = self._admission.stats()
        emit(self.telemetry, "serve_shed", key=str(request.key),
             slot=slot, reason=exc.reason,
             queue_depth=self._admission.queue_depth(slot),
             max_inflight=self._admission.max_inflight,
             ewma_ms=stats["ewma_ms"])
        raise exc

    def forecast(self, request: ForecastRequest) -> ForecastResponse:
        """Serve one request through the pool (degrading, not raising —
        except :class:`~repro.serve_shm.ShedError`, the deliberate
        fast-fail when admission control refuses the request)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        request = request.tail()    # bound the data-plane payload to O(s)
        owner = self._slot_for(request.key, 0)
        try:
            depth, new_high = self._admission.admit(
                owner, request.key, request.deadline)
        except ShedError as exc:
            self._shed(request, owner, exc)
        if new_high:
            emit(self.telemetry, "serve_queue_depth", slot=owner,
                 depth=depth, max_inflight=self._admission.max_inflight)
        forward_seconds = None
        try:
            last_error = "no workers available"
            for attempt in range(1 + self.retries):
                if attempt and request.deadline is not None \
                        and time.monotonic() >= request.deadline:
                    self._admission.note_deadline_shed()
                    self._shed(request, owner, ShedError(
                        request.key, "deadline passed before retry "
                                     f"{attempt}"))
                slot = owner if attempt == 0 \
                    else self._slot_for(request.key, attempt)
                start = time.monotonic()
                response, error = self._roundtrip(slot, request)
                if response is None:
                    last_error = error
                    continue
                if response.ok and not response.degraded:
                    if response.cache == "miss":
                        forward_seconds = time.monotonic() - start
                    self._last[(request.key, request.horizon)] = \
                        response.prediction
                if response.ok:
                    return response
                last_error = response.error
            return self._degrade(request, last_error)
        finally:
            self._admission.done(owner, forward_seconds)

    def _roundtrip(self, slot: int, request: ForecastRequest
                   ) -> Tuple[Optional[ForecastResponse], Optional[str]]:
        """One send + await on one worker: ``(response, error)``.

        Serialized per worker slot so concurrent callers queue instead
        of interleaving frames on one pipe — the queue admission
        control bounds.  Array bytes go through the worker's ring when
        they fit; the pickled pipe is the per-request fallback.
        """
        with self._locks[slot]:
            proc, conn, ring = self._workers[slot]
            if not proc.is_alive():
                self._kill(slot, "found dead")
                proc, conn, ring = self._workers[slot]
            request_id = next(self._request_ids)
            ring_slot = None
            if ring is not None:
                ring_slot = ring.acquire()
                if ring_slot is None:
                    self._note_fallback(slot, "no free ring slot")
                else:
                    sequence = request.sequence
                    try:
                        ring.write(
                            ring_slot,
                            [sequence.tensors, sequence.mask,
                             sequence.counts],
                            request_id, request.deadline)
                    except (SlotOverflowError, ValueError) as exc:
                        ring.release(ring_slot)
                        ring_slot = None
                        self._note_fallback(
                            slot, f"{type(exc).__name__}: {exc}")
            try:
                if ring_slot is not None:
                    meta = (request.key, request.s, request.horizon,
                            request.sequence.spec,
                            request.sequence.interval_minutes,
                            request.deadline)
                    conn.send(("shm", request_id, ring_slot, meta))
                else:
                    conn.send(("pickle", request_id, request))
            except (BrokenPipeError, OSError) as exc:
                if ring_slot is not None:
                    ring.release(ring_slot)
                self._kill(slot, "send failed")
                return None, f"worker send failed: {exc}"
            try:
                return self._await(slot, request_id, ring,
                                   sent_shm=ring_slot is not None)
            finally:
                if ring_slot is not None:
                    ring.release(ring_slot)

    def _await(self, slot: int, request_id: int, ring, sent_shm: bool
               ) -> Tuple[Optional[ForecastResponse], Optional[str]]:
        """Wait for one worker's answer; ``(None, why)`` = timeout/death."""
        proc, conn, _ = self._workers[slot]
        deadline = None if self.request_timeout is None \
            else time.monotonic() + self.request_timeout
        timeout_error = (f"no answer within {self.request_timeout}s "
                         f"or worker died")
        while True:
            remaining = 1.0 if deadline is None \
                else deadline - time.monotonic()
            if remaining <= 0:
                self.timeouts += 1
                self._kill(slot, "request timeout")
                return None, timeout_error
            if not conn.poll(min(remaining, 0.05)):
                if not proc.is_alive() and not conn.poll(0):
                    self._kill(slot, "died mid-request")
                    return None, timeout_error
                continue
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                self._kill(slot, "pipe closed mid-request")
                return None, timeout_error
            kind, got_id = frame[0], frame[1]
            if got_id != request_id:
                # A stale answer from a request whose caller already
                # gave up (post-timeout drain): drop it, keep waiting.
                continue
            if kind == "shm":
                ring_slot, control = frame[2], frame[3]
                try:
                    arrays, _ = ring.read(ring_slot, got_id, copy=True)
                except Exception as exc:  # noqa: BLE001 - corrupt slot
                    return replace(
                        control, prediction=None,
                        error=f"shm response unreadable: {exc}"), None
                return replace(control, prediction=arrays[0]), None
            response = frame[2]
            if sent_shm and response.ok \
                    and response.prediction is not None:
                # The request went out through the ring but the answer
                # came back pickled: the histogram outgrew the slot.
                self._note_fallback(slot, "response exceeded slot_bytes",
                                    direction="response")
            return response, None

    def _degrade(self, request: ForecastRequest,
                 error: str) -> ForecastResponse:
        if self.stale_ok:
            stale = self._last.get((request.key, request.horizon))
            if stale is not None:
                self.degraded += 1
                emit(self.telemetry, "serve_degraded",
                     key=str(request.key), horizon=request.horizon,
                     error=error)
                return ForecastResponse(
                    request.key, request.horizon, stale.copy(),
                    cache="stale", degraded=True)
        return ForecastResponse(request.key, request.horizon, None,
                                error=error)

    # ------------------------------------------------------------------
    def segment_names(self) -> List[str]:
        """Names of the live shared-memory segments (for leak checks)."""
        return [ring.name for entry in self._workers
                if entry is not None and entry[2] is not None
                for ring in (entry[2],)]

    def stats(self) -> Dict[str, object]:
        alive = sum(1 for w in self._workers
                    if w is not None and w[0].is_alive())
        return {"workers": len(self._workers), "alive": alive,
                "deaths": self.deaths, "timeouts": self.timeouts,
                "degraded": self.degraded, "sheds": self.sheds,
                "transport": self.transport,
                "transport_fallbacks": self.transport_fallbacks,
                "queue": self._admission.stats()}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn, ring = entry
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn, ring = entry
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            conn.close()
            # The parent owns every segment: unlink here so a pool
            # shutdown (even one that had to terminate workers) leaves
            # nothing behind in /dev/shm.
            if ring is not None:
                ring.close()
                ring.unlink()

    def __enter__(self) -> "ForecastWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
