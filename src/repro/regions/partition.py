"""City partitioning into regions.

The paper exemplifies two partition styles (its Fig. 1): a uniform grid
and a main-road-based irregular partition.  We provide both:

* :class:`GridPartition` — uniform rows × cols cells over a bounding box
  (the NYC illustration).
* :class:`SeededPartition` — nearest-seed (Voronoi) cells, the planar
  analogue of taxizone/main-road partitions with irregular region shapes.

Both expose the same interface: region count, centroids, a vectorized
``assign(points)`` mapping coordinates to region ids, and region areas.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .geometry import BoundingBox


class Partition:
    """Interface shared by all partitions."""

    @property
    def n_regions(self) -> int:
        raise NotImplementedError

    @property
    def centroids(self) -> np.ndarray:
        """Region centroids, shape ``(n_regions, 2)`` in km."""
        raise NotImplementedError

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Map ``points (..., 2)`` to region ids (int array)."""
        raise NotImplementedError

    def centroid_distances(self) -> np.ndarray:
        """Pairwise centroid distance matrix (km)."""
        c = self.centroids
        deltas = c[:, None, :] - c[None, :, :]
        return np.sqrt((deltas ** 2).sum(axis=-1))


class GridPartition(Partition):
    """Uniform grid partition of a bounding box into rows × cols cells.

    Region ids increase column-first within each row, matching the
    left-to-right, top-to-bottom numbering of the paper's Fig. 1(a).
    """

    def __init__(self, box: BoundingBox, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.box = box
        self.rows = rows
        self.cols = cols
        xs = box.x_min + (np.arange(cols) + 0.5) * box.width / cols
        ys = box.y_min + (np.arange(rows) + 0.5) * box.height / rows
        grid_x, grid_y = np.meshgrid(xs, ys)
        self._centroids = np.column_stack([grid_x.ravel(), grid_y.ravel()])

    @property
    def n_regions(self) -> int:
        return self.rows * self.cols

    @property
    def centroids(self) -> np.ndarray:
        return self._centroids

    def assign(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        col = np.floor((points[..., 0] - self.box.x_min)
                       / self.box.width * self.cols).astype(np.int64)
        row = np.floor((points[..., 1] - self.box.y_min)
                       / self.box.height * self.rows).astype(np.int64)
        col = np.clip(col, 0, self.cols - 1)
        row = np.clip(row, 0, self.rows - 1)
        return row * self.cols + col

    def cell_area(self) -> float:
        return self.box.area / self.n_regions


class SeededPartition(Partition):
    """Voronoi-style partition: each point belongs to its nearest seed.

    Mimics irregular administrative partitions (taxizones, main-road
    cells).  Seeds can be given explicitly or sampled; an optional
    Lloyd-relaxation pass makes cells more evenly sized, as real
    administrative regions tend to be.
    """

    def __init__(self, seeds: np.ndarray, box: Optional[BoundingBox] = None):
        seeds = np.asarray(seeds, dtype=np.float64)
        if seeds.ndim != 2 or seeds.shape[1] != 2:
            raise ValueError(f"seeds must be (n, 2), got {seeds.shape}")
        if len(seeds) < 2:
            raise ValueError("need at least 2 seeds")
        self.seeds = seeds
        self.box = box
        self._centroids = seeds.copy()

    @classmethod
    def random(cls, box: BoundingBox, n_regions: int,
               rng: np.random.Generator,
               lloyd_iterations: int = 3) -> "SeededPartition":
        """Sample seeds uniformly and relax them with Lloyd iterations."""
        seeds = box.sample(rng, n_regions)
        for _ in range(lloyd_iterations):
            samples = box.sample(rng, max(4000, 60 * n_regions))
            owner = cls(seeds, box).assign(samples)
            for region in range(n_regions):
                mine = samples[owner == region]
                if len(mine):
                    seeds[region] = mine.mean(axis=0)
        return cls(seeds, box)

    @property
    def n_regions(self) -> int:
        return len(self.seeds)

    @property
    def centroids(self) -> np.ndarray:
        return self._centroids

    def assign(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        flat = points.reshape(-1, 2)
        d2 = ((flat[:, None, :] - self.seeds[None, :, :]) ** 2).sum(axis=-1)
        owner = np.argmin(d2, axis=1)
        return owner.reshape(points.shape[:-1])
