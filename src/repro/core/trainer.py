"""Training loop shared by BF, AF, and the deep-learning baselines.

Implements the paper's published optimization recipe (§VI-A5): Adam with
initial learning rate 0.001, decay ×0.8 every 5 epochs, dropout 0.2 in the
models, early stopping on validation loss with best-weight restoration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..autodiff.module import Module
from ..autodiff.optim import Adam, StepDecay, clip_grad_norm
from ..autodiff.tensor import Tensor
from ..histograms.windows import Split, WindowDataset
from .losses import masked_frobenius

LossFn = Callable[[Tensor, np.ndarray, np.ndarray,
                   Optional[Tensor], Optional[Tensor]], Tensor]


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (defaults follow the paper)."""

    epochs: int = 30
    batch_size: int = 16
    learning_rate: float = 1e-3
    decay_factor: float = 0.8
    decay_every: int = 5
    clip_norm: float = 5.0
    patience: int = 8
    seed: int = 0
    max_train_batches: Optional[int] = None
    max_val_batches: Optional[int] = None
    verbose: bool = False


@dataclass
class TrainResult:
    """Learning curves and timing returned by :meth:`Trainer.fit`."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    seconds: float = 0.0


class Trainer:
    """Fits a forecasting model on windowed OD tensor data.

    The model contract is ``model(history, horizon) -> (prediction,
    r_factors, c_factors)`` where the factor tensors may be ``None`` (as
    for the FC baseline); ``loss_fn(prediction, truth, mask, r, c)``
    builds the training objective.
    """

    def __init__(self, model: Module, loss_fn: LossFn,
                 config: TrainConfig = None):
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self.scheduler = StepDecay(self.optimizer,
                                   factor=self.config.decay_factor,
                                   every=self.config.decay_every)

    # ------------------------------------------------------------------
    def fit(self, dataset: WindowDataset, split: Split,
            horizon: int) -> TrainResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        best_state = self.model.state_dict()
        stall = 0
        start = time.time()
        for epoch in range(cfg.epochs):
            self.model.train()
            epoch_losses = []
            batches = dataset.batches(split.train, cfg.batch_size, rng=rng)
            for b, (histories, targets, masks) in enumerate(batches):
                if cfg.max_train_batches is not None \
                        and b >= cfg.max_train_batches:
                    break
                prediction, r, c = self.model(histories, horizon)
                loss = self.loss_fn(prediction, targets, masks, r, c)
                # optimizer.zero_grad clears the cached parameter list
                # directly instead of re-walking the module tree.
                self.optimizer.zero_grad()
                loss.backward()
                if cfg.clip_norm:
                    clip_grad_norm(self.model.parameters(), cfg.clip_norm)
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.scheduler.step()
            train_loss = float(np.mean(epoch_losses)) if epoch_losses \
                else float("nan")
            val_loss = self.evaluate(dataset, split.val, horizon,
                                     max_batches=cfg.max_val_batches)
            result.train_losses.append(train_loss)
            result.val_losses.append(val_loss)
            if cfg.verbose:
                print(f"epoch {epoch + 1:3d}  train {train_loss:.5f}  "
                      f"val {val_loss:.5f}  lr {self.optimizer.lr:.2e}")
            if val_loss < result.best_val_loss - 1e-7:
                result.best_val_loss = val_loss
                result.best_epoch = epoch
                best_state = self.model.state_dict()
                stall = 0
            else:
                stall += 1
                if stall >= cfg.patience:
                    break
        self.model.load_state_dict(best_state)
        result.seconds = time.time() - start
        return result

    # ------------------------------------------------------------------
    def evaluate(self, dataset: WindowDataset, indices: np.ndarray,
                 horizon: int, max_batches: Optional[int] = None) -> float:
        """Mean masked-Frobenius data loss over the given windows."""
        self.model.eval()
        losses = []
        batches = dataset.batches(indices, self.config.batch_size)
        for b, (histories, targets, masks) in enumerate(batches):
            if max_batches is not None and b >= max_batches:
                break
            prediction, _, _ = self.model(histories, horizon)
            losses.append(masked_frobenius(prediction, targets,
                                           masks).item())
        self.model.train()
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        """Forecast tensors for the given windows, ``(B, h, N, N', K)``."""
        self.model.eval()
        outputs = []
        for histories, _, _ in dataset.batches(indices,
                                               self.config.batch_size):
            prediction, _, _ = self.model(histories, horizon)
            outputs.append(prediction.numpy())
        self.model.train()
        return np.concatenate(outputs, axis=0)
