"""Lightweight per-op-kind profiler for the autodiff substrate.

:func:`profile` installs a process-wide hook (see
:mod:`repro.autodiff.tensor`) that times every op's forward thunk and
backward closure exactly — wall-clock around the call, nothing
attributed by inference — and aggregates by op kind (the enclosing
function name: ``matmul``, ``sigmoid``, ``fused_cnrnn_cell``, ...).
Works identically under eager execution, tape capture, and replay, so
``benchmarks/microbench.py`` uses it to show where each engine spends
its time (docs/AUTODIFF.md has an example table).

Overhead is two ``perf_counter`` calls plus one dict update per op
execution — fine for profiling runs, which is why it is opt-in rather
than always-on.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

from .tensor import _op_label, _set_profiler


class OpProfiler:
    """Cumulative forward/backward time and call counts per op kind."""

    __slots__ = ("_forward", "_backward")

    def __init__(self):
        # label -> [calls, seconds]
        self._forward: Dict[str, list] = {}
        self._backward: Dict[str, list] = {}

    # -- hooks called by tensor._run_forward / Tensor.backward ---------
    def _record_forward(self, run, seconds: float) -> None:
        entry = self._forward.setdefault(_op_label(run), [0, 0.0])
        entry[0] += 1
        entry[1] += seconds

    def _record_backward(self, backward, seconds: float) -> None:
        entry = self._backward.setdefault(_op_label(backward), [0, 0.0])
        entry[0] += 1
        entry[1] += seconds

    # -- reporting ------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-op-kind stats, sorted by total time (descending).

        Each value holds ``forward_calls``, ``forward_seconds``,
        ``backward_calls``, ``backward_seconds``.
        """
        merged: Dict[str, Dict[str, float]] = {}
        for label, (calls, seconds) in self._forward.items():
            entry = merged.setdefault(label, {
                "forward_calls": 0, "forward_seconds": 0.0,
                "backward_calls": 0, "backward_seconds": 0.0})
            entry["forward_calls"] += calls
            entry["forward_seconds"] += seconds
        for label, (calls, seconds) in self._backward.items():
            entry = merged.setdefault(label, {
                "forward_calls": 0, "forward_seconds": 0.0,
                "backward_calls": 0, "backward_seconds": 0.0})
            entry["backward_calls"] += calls
            entry["backward_seconds"] += seconds
        return dict(sorted(
            merged.items(),
            key=lambda kv: -(kv[1]["forward_seconds"]
                             + kv[1]["backward_seconds"])))

    def total_seconds(self) -> float:
        """Total time spent inside profiled op code (fwd + bwd)."""
        return (sum(s for _, s in self._forward.values())
                + sum(s for _, s in self._backward.values()))

    def format_table(self, limit: Optional[int] = None) -> str:
        """The docs/AUTODIFF.md-style per-op timing table."""
        rows = list(self.as_dict().items())
        if limit is not None:
            rows = rows[:limit]
        lines = [f"{'op':<24} {'fwd calls':>9} {'fwd ms':>9} "
                 f"{'bwd calls':>9} {'bwd ms':>9}"]
        for label, entry in rows:
            lines.append(
                f"{label:<24} {entry['forward_calls']:>9d} "
                f"{entry['forward_seconds'] * 1e3:>9.2f} "
                f"{entry['backward_calls']:>9d} "
                f"{entry['backward_seconds'] * 1e3:>9.2f}")
        return "\n".join(lines)


@contextlib.contextmanager
def profile(telemetry=None, event: str = "profile"):
    """Profile all autodiff ops executed inside the ``with`` block.

    Yields the :class:`OpProfiler`; read ``as_dict()`` /
    ``format_table()`` after (or inside) the block.  When ``telemetry``
    (a :mod:`repro.telemetry` sink) is given, one ``profile`` event with
    the aggregated stats is emitted as the block exits.  Nests safely —
    the previous profiler is restored on exit, and only the innermost
    one records.
    """
    profiler = OpProfiler()
    previous = _set_profiler(profiler)
    try:
        yield profiler
    finally:
        _set_profiler(previous)
        if telemetry is not None:
            from ..telemetry import emit
            emit(telemetry, event, ops=profiler.as_dict(),
                 total_seconds=profiler.total_seconds())
