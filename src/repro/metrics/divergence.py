"""Distribution dissimilarity metrics: KL, JS, and EMD (paper §VI-A4).

All functions are vectorized over leading axes: inputs of shape
``(..., K)`` produce outputs of shape ``(...,)``.  Conventions follow the
paper exactly:

* KL uses additive smoothing ``δ = 0.001`` inside the log to avoid zero
  probabilities (paper Eq. 13).
* JS is the symmetrized KL against the mixture ``(m + m̂)/2`` (Eq. 14).
* EMD is the first Wasserstein distance on the bucket grid with unit
  ground distance between adjacent buckets (Eq. 15); for 1-D histograms
  the optimal flow cost equals the L1 distance between CDFs.
"""

from __future__ import annotations

import numpy as np

PAPER_DELTA = 0.001


def kl_divergence(truth: np.ndarray, estimate: np.ndarray,
                  delta: float = PAPER_DELTA) -> np.ndarray:
    """Smoothed Kullback–Leibler divergence ``KL(m, m̂)``.

    Matches the paper's Eq. 13: ``sum_k m̂_k log((m̂_k + δ)/(m_k + δ))``
    with ``m`` the ground truth and ``m̂`` the estimate.
    """
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    ratio = (estimate + delta) / (truth + delta)
    return (estimate * np.log(ratio)).sum(axis=-1)


def js_divergence(truth: np.ndarray, estimate: np.ndarray,
                  delta: float = PAPER_DELTA) -> np.ndarray:
    """Jensen–Shannon divergence via the paper's Eq. 14."""
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    mixture = 0.5 * (truth + estimate)
    return 0.5 * (kl_divergence(mixture, truth, delta)
                  + kl_divergence(mixture, estimate, delta))


def emd(truth: np.ndarray, estimate: np.ndarray) -> np.ndarray:
    """Earth mover's distance between histograms on the bucket grid.

    With unit distance between adjacent buckets, the 1-D optimal
    transport cost reduces to ``sum_k |CDF(m)_k - CDF(m̂)_k|``.
    """
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    delta_cdf = np.cumsum(truth - estimate, axis=-1)
    # The final CDF entry is ~0 for normalized inputs; include it anyway
    # so unnormalized inputs surface as a visible cost.
    return np.abs(delta_cdf).sum(axis=-1)


def emd_flow(truth: np.ndarray, estimate: np.ndarray) -> np.ndarray:
    """Optimal flow matrix realizing :func:`emd` for a single pair.

    Returns ``F`` with ``F[i, j]`` = mass moved from bucket ``i`` of
    ``truth`` to bucket ``j`` of ``estimate``; the greedy north-west
    corner fill is optimal in 1-D with convex costs.  Mostly useful for
    diagnostics and tests (verifying ``sum F[i,j]*|i-j| == emd``).
    """
    truth = np.asarray(truth, dtype=np.float64).copy()
    estimate = np.asarray(estimate, dtype=np.float64).copy()
    if truth.ndim != 1 or estimate.shape != truth.shape:
        raise ValueError("emd_flow works on a single pair of histograms")
    k = len(truth)
    flow = np.zeros((k, k))
    i = j = 0
    supply, demand = truth.copy(), estimate.copy()
    while i < k and j < k:
        moved = min(supply[i], demand[j])
        flow[i, j] += moved
        supply[i] -= moved
        demand[j] -= moved
        if supply[i] <= 1e-15:
            i += 1
        if j < k and demand[j] <= 1e-15:
            j += 1
    return flow


METRICS = {
    "kl": kl_divergence,
    "js": js_divergence,
    "emd": emd,
}
