"""Tests for the tape-lowering pass (flat instruction plans).

The lowered engine's contract (docs/EXECUTION.md) is the replay
contract, one level further down: compiling a captured tape into a flat
instruction plan — preallocated arena buffers, fused elementwise chains,
a precomputed backward schedule — must stay *bit-for-bit* identical to
eager execution: same losses, same gradients, same RNG consumption, same
trained weights.  Everything here asserts exact equality, not allclose:
one ulp of drift means an instruction no longer performs eager's exact
arithmetic, which would silently break checkpoint determinism.
"""

import importlib.util
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.autodiff as autodiff
from repro.autodiff import (Adam, LoweringFallbackWarning, ReplayEngine,
                            ops)
from repro.autodiff import lowering
from repro.core import (AdvancedFramework, BasicFramework, TrainConfig,
                        Trainer, af_loss, bf_loss)

STEPS = 5


def _proximity(n, rng):
    w = rng.uniform(0.1, 1.0, size=(n, n))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


def _batch(rng, batch=4, s=3, n=8, k=7, horizon=2):
    return (rng.uniform(size=(batch, s, n, n, k)),
            rng.uniform(size=(batch, horizon, n, n, k)),
            (rng.uniform(size=(batch, horizon, n, n)) < 0.4).astype(float))


def _bf_parts(dropout=0.2):
    model = BasicFramework(8, 8, 7, np.random.default_rng(7), rank=3,
                           encoder_dim=8, hidden_dim=12, dropout=dropout)
    return model, bf_loss


def _af_parts(dropout=0.2):
    rng = np.random.default_rng(11)
    w = _proximity(8, rng)
    model = AdvancedFramework(w, w, 7, np.random.default_rng(7), rank=3,
                              rnn_hidden=8, rnn_order=2, dropout=dropout)

    def loss_fn(prediction, truth, mask, r, c):
        return af_loss(prediction, truth, mask, r, c, w, w)

    return model, loss_fn


def _train(parts_fn, engine_mode, steps=STEPS):
    """Losses, final grads, weights, model, and engine of a short run."""
    model, loss_fn = parts_fn()
    history, truth, mask = _batch(np.random.default_rng(0))
    if engine_mode == "eager":
        optimizer = Adam(model.parameters())
        engine = None
    else:
        optimizer = Adam(model.parameters(), flat=True)
        engine = ReplayEngine(model, loss_fn,
                              lower=(engine_mode == "lowered"))
    losses = []
    for _ in range(steps):
        if engine is not None:
            loss = engine.forward(history, truth, mask, 2)
            assert loss is not None
            optimizer.zero_grad()
            engine.backward(loss)
        else:
            prediction, r, c = model(history, 2)
            loss = loss_fn(prediction, truth, mask, r, c)
            optimizer.zero_grad()
            loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    grads = [p.grad.copy() for p in optimizer.parameters]
    weights = {k: v.copy() for k, v in model.state_dict().items()}
    return losses, grads, weights, model, engine


class TestBitForBitParity:
    """Lowered must equal eager exactly — losses, grads, and weights."""

    @pytest.mark.parametrize("parts_fn", [_bf_parts, _af_parts],
                             ids=["bf", "af"])
    def test_five_steps_dropout_on(self, parts_fn):
        eager_losses, eager_grads, eager_weights, _, _ = _train(
            parts_fn, "eager")
        low_losses, low_grads, low_weights, _, engine = _train(
            parts_fn, "lowered")
        assert eager_losses == low_losses
        for g_eager, g_low in zip(eager_grads, low_grads):
            assert np.array_equal(g_eager, g_low)
        for name in eager_weights:
            assert np.array_equal(eager_weights[name],
                                  low_weights[name]), name
        # One capture, then every reuse ran the compiled plan — the
        # steady state really is the flat instruction loop, and nothing
        # fell back to thunk-walking replay.
        stats = engine.stats()
        assert stats["captures"] == 1
        assert stats["lowered_steps"] == STEPS - 1
        assert stats["replays"] == 0
        assert stats["plan_fallbacks"] == 0
        assert stats["plans"] == 1
        assert stats["plan_instructions"] > 0

    @pytest.mark.parametrize("parts_fn", [_bf_parts, _af_parts],
                             ids=["bf", "af"])
    def test_parity_holds_in_float32(self, parts_fn):
        autodiff.set_default_dtype(np.float32)
        try:
            eager = _train(parts_fn, "eager")
            lowered = _train(parts_fn, "lowered")
        finally:
            autodiff.set_default_dtype(np.float64)
        assert eager[0] == lowered[0]
        for name in eager[2]:
            assert np.array_equal(eager[2][name], lowered[2][name]), name

    def test_rng_stream_matches_eager(self):
        """After N steps both engines leave dropout RNGs in the same
        state, so lowered runs stay on eager's exact random stream."""
        eager = _train(_bf_parts, "eager")[3]
        lowered = _train(_bf_parts, "lowered")[3]
        state_e = eager.drop_r._rng.bit_generator.state["state"]
        state_l = lowered.drop_r._rng.bit_generator.state["state"]
        assert state_e == state_l

    def test_fused_chains_present_and_identical_to_replay(self):
        """The plan actually exercises elementwise fusion, and a fused
        plan step equals an unfused replay step bitwise (fusion merges
        Python dispatch only, never arithmetic)."""
        replay = _train(_af_parts, "replay")
        lowered = _train(_af_parts, "lowered")
        assert lowered[4].plan_stats()["plan_fused_chains"] >= 1
        assert replay[0] == lowered[0]
        for name in replay[2]:
            assert np.array_equal(replay[2][name], lowered[2][name]), name

    def test_parity_with_fused_kernels_off(self):
        """A tape captured from the primitive-op reference path (mostly
        generic entries for the lowerer) still lowers or replays to
        eager's exact result."""
        with ops.use_fused(False):
            eager = _train(_bf_parts, "eager", steps=3)
            lowered = _train(_bf_parts, "lowered", steps=3)
        assert eager[0] == lowered[0]
        for name in eager[2]:
            assert np.array_equal(eager[2][name], lowered[2][name]), name


class TestPlanLifecycle:
    def test_shape_change_compiles_second_plan(self):
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn, lower=True)
        big = _batch(np.random.default_rng(0), batch=4)
        small = _batch(np.random.default_rng(1), batch=2)
        for batch in (big, big, small, small, big):
            loss = engine.forward(*batch, 2)
            engine.backward(loss)
        stats = engine.stats()
        assert stats["captures"] == 2
        assert stats["lowered_steps"] == 3
        assert stats["plans"] == 2          # one plan per signature

    def test_dtype_change_recaptures(self):
        """A default-dtype flip is a new signature: the old plan (whose
        arena buffers are the old dtype) must not be reused."""
        autodiff.set_default_dtype(np.float32)
        try:
            model, loss_fn = _bf_parts()
            engine = ReplayEngine(model, loss_fn, lower=True)
            history, truth, mask = _batch(np.random.default_rng(0))
            for _ in range(2):
                engine.backward(engine.forward(history, truth, mask, 2))
            autodiff.set_default_dtype(np.float64)
            loss = engine.forward(history, truth, mask, 2)
            engine.backward(loss)
        finally:
            autodiff.set_default_dtype(np.float64)
        stats = engine.stats()
        assert stats["captures"] == 2
        assert stats["lowered_steps"] == 1

    def test_invalidate_drops_plans_and_recompiles(self):
        """A checkpoint restore calls ``invalidate``: plans die with
        their tapes, and the next steps recapture and recompile."""
        model, loss_fn = _bf_parts()
        engine = ReplayEngine(model, loss_fn, lower=True)
        batch = _batch(np.random.default_rng(0))
        for _ in range(3):
            engine.backward(engine.forward(*batch, 2))
        assert engine.stats()["plans"] == 1
        engine.invalidate()
        assert engine.stats()["tapes"] == 0
        assert engine.stats()["plans"] == 0
        for _ in range(2):
            engine.backward(engine.forward(*batch, 2))
        stats = engine.stats()
        assert stats["captures"] == 2
        assert stats["plans"] == 1


class TestFallback:
    def test_unknown_op_falls_back_to_replay(self, monkeypatch):
        """A tape with an op the lowerer cannot prove safe must warn
        once, keep plain replay, and stay bit-identical to eager."""
        eager_losses = _train(_bf_parts, "eager", steps=3)[0]
        monkeypatch.setattr(
            lowering, "GENERIC_SAFE",
            frozenset(lowering.GENERIC_SAFE - {"matmul"}))
        model, loss_fn = _bf_parts()
        history, truth, mask = _batch(np.random.default_rng(0))
        optimizer = Adam(model.parameters(), flat=True)
        engine = ReplayEngine(model, loss_fn, lower=True)
        losses = []
        for step in range(3):
            if step == 1:           # first reuse triggers compilation
                with pytest.warns(LoweringFallbackWarning):
                    loss = engine.forward(history, truth, mask, 2)
            else:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    loss = engine.forward(history, truth, mask, 2)
            optimizer.zero_grad()
            engine.backward(loss)
            optimizer.step()
            losses.append(float(loss.data))
        stats = engine.stats()
        assert stats["plan_fallbacks"] == 1
        assert stats["lowered_steps"] == 0
        assert stats["replays"] == 2        # replay kept working
        assert losses == eager_losses


class TestTrainerIntegration:
    CFG = dict(batch_size=8, max_train_batches=4, patience=10, seed=3)

    def _fit(self, windows, split, epochs, engine, checkpoint_dir=None,
             resume=False, telemetry=None):
        model = BasicFramework(12, 12, 7, np.random.default_rng(7),
                               rank=3, encoder_dim=8, hidden_dim=12,
                               dropout=0.2)
        trainer = Trainer(model, bf_loss,
                          TrainConfig(epochs=epochs, engine=engine,
                                      **self.CFG))
        result = trainer.fit(windows, split, horizon=2,
                             checkpoint_dir=checkpoint_dir, resume=resume,
                             telemetry=telemetry)
        return trainer, result

    def test_lowered_fit_equals_eager_fit(self, windows, split):
        _, eager = self._fit(windows, split, 3, "eager")
        _, lowered = self._fit(windows, split, 3, "lowered")
        assert eager.train_losses == lowered.train_losses
        assert eager.val_losses == lowered.val_losses

    def test_checkpoint_resume_mid_run_with_lowered(self, tmp_path,
                                                    windows, split):
        """Kill after 2 of 4 epochs and resume under engine=lowered: the
        outcome must be bit-identical to the uninterrupted run (restore
        invalidates the tapes, so fresh plans are compiled)."""
        epochs = 4
        baseline, expected = self._fit(windows, split, epochs, "lowered")
        directory = tmp_path / "lowered_ckpt"
        self._fit(windows, split, 2, "lowered", checkpoint_dir=directory)
        resumed, result = self._fit(windows, split, epochs, "lowered",
                                    checkpoint_dir=directory, resume=True)
        assert result.train_losses == expected.train_losses
        assert result.val_losses == expected.val_losses
        state = resumed.model.state_dict()
        expected_state = baseline.model.state_dict()
        for name in expected_state:
            assert np.array_equal(state[name], expected_state[name]), name

    def test_lowering_telemetry_event(self, windows, split):
        events = []
        self._fit(windows, split, 2, "lowered",
                  telemetry=lambda event, fields: events.append(
                      (event, fields)))
        engine_events = [f for e, f in events if e == "engine"]
        assert len(engine_events) == 1
        assert engine_events[0]["mode"] == "lowered"
        assert engine_events[0]["lowered_steps"] >= 1
        lowering_events = [f for e, f in events if e == "lowering"]
        assert len(lowering_events) == 1
        stats = lowering_events[0]
        assert stats["plans"] >= 1
        assert stats["plan_instructions"] > 0
        assert stats["fallbacks"] == 0
        assert stats["arena_nbytes"] > 0


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SCALE") == "smoke",
    reason="perf guard skipped in smoke mode")
class TestLoweredPerfGuard:
    def test_lowered_af_step_not_slower_than_replay(self):
        # Tolerant guard: the microbench records the real margin, but CI
        # boxes are noisy — only fail when the plan is meaningfully
        # *slower* than the thunk walk it replaces.
        spec = importlib.util.spec_from_file_location(
            "repro_microbench",
            Path(__file__).resolve().parents[1] / "benchmarks"
            / "microbench.py")
        microbench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(microbench)
        sizes = microbench.SIZES["smoke"]

        step_replay, _ = microbench._replay_step(
            microbench._af_parts(sizes))
        step_lowered, engine = microbench._lowered_step(
            microbench._af_parts(sizes))
        for _ in range(3):          # capture, compile, steady state
            step_replay()
            step_lowered()
        assert engine.stats()["lowered_steps"] >= 1
        replay_s = lowered_s = float("inf")
        for _ in range(5):          # interleaved best-of
            start = time.perf_counter()
            step_replay()
            replay_s = min(replay_s, time.perf_counter() - start)
            start = time.perf_counter()
            step_lowered()
            lowered_s = min(lowered_s, time.perf_counter() - start)
        assert lowered_s <= replay_s * 1.25, (
            f"lowered AF step {lowered_s * 1e3:.1f}ms slower than replay "
            f"{replay_s * 1e3:.1f}ms")


class TestForwardOnlyPlans:
    """Inference-only compilation (the ``repro.serve`` fast path): the
    forward schedule must be byte-for-byte the training plan's, and the
    backward schedule must simply not exist."""

    def _tape(self):
        model, loss_fn = _bf_parts(dropout=0.0)
        engine = ReplayEngine(model, loss_fn)
        history, truth, mask = _batch(np.random.default_rng(0))
        engine.forward(history, truth, mask, 2)
        tape = next(iter(engine._tapes.values()))
        return tape, history, truth, mask

    def test_forward_only_matches_full_plan_forward(self):
        tape, history, truth, mask = self._tape()
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # no fallback allowed
            full = lowering.lower_tape(tape)
            forward_only = lowering.lower_tape(tape, forward_only=True)
        expected = np.array(full.run_forward(history, truth, mask).data,
                            copy=True)
        got = forward_only.run_forward(history, truth, mask)
        assert np.array_equal(got.data, expected)

    def test_forward_only_plan_has_no_backward(self):
        tape, history, truth, mask = self._tape()
        plan = lowering.lower_tape(tape, forward_only=True)
        plan.run_forward(history, truth, mask)
        with pytest.raises(RuntimeError, match="forward_only"):
            plan.run_backward()

    def test_full_plan_still_runs_backward(self):
        tape, history, truth, mask = self._tape()
        plan = lowering.lower_tape(tape)
        plan.run_forward(history, truth, mask)
        plan.run_backward()                     # must not raise
