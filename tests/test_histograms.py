"""Tests for histogram specs and histogram utilities."""

import numpy as np
import pytest

from repro.histograms import (HistogramSpec, is_valid_histogram,
                              normalize_histogram)


class TestHistogramSpec:
    def test_paper_default(self):
        spec = HistogramSpec.paper_default()
        assert spec.n_buckets == 7
        assert spec.edges[0] == 0.0
        assert np.isinf(spec.edges[-1])

    def test_edges_validation(self):
        with pytest.raises(ValueError):
            HistogramSpec(edges=(0.0,))
        with pytest.raises(ValueError):
            HistogramSpec(edges=(0.0, 2.0, 1.0))

    def test_finite_edges_caps_tail(self):
        spec = HistogramSpec.paper_default()
        finite = spec.finite_edges
        assert finite[-1] == pytest.approx(21.0)  # 18 + bucket width 3

    def test_centers(self):
        spec = HistogramSpec(edges=(0.0, 2.0, 4.0))
        assert np.allclose(spec.centers, [1.0, 3.0])

    def test_assign_bucket(self):
        spec = HistogramSpec.paper_default()
        speeds = np.array([0.0, 2.9, 3.0, 17.9, 18.0, 50.0])
        assert list(spec.assign_bucket(speeds)) == [0, 0, 1, 5, 6, 6]

    def test_assign_bucket_clamps_below(self):
        spec = HistogramSpec(edges=(1.0, 2.0, 3.0))
        assert spec.assign_bucket(np.array([0.0])) == 0

    def test_build_normalized(self, rng):
        spec = HistogramSpec.paper_default()
        hist = spec.build(rng.uniform(0, 25, size=1000))
        assert is_valid_histogram(hist)

    def test_build_empty_raises(self):
        with pytest.raises(ValueError):
            HistogramSpec.paper_default().build(np.array([]))

    def test_build_single_speed_is_one_hot(self):
        hist = HistogramSpec.paper_default().build(np.array([7.5]))
        assert hist[2] == 1.0 and hist.sum() == 1.0

    def test_mean_speed(self):
        spec = HistogramSpec(edges=(0.0, 2.0, 4.0))
        assert spec.mean_speed(np.array([0.5, 0.5])) == pytest.approx(2.0)


class TestValidation:
    def test_is_valid(self):
        assert is_valid_histogram(np.array([0.5, 0.3, 0.2]))
        assert not is_valid_histogram(np.array([0.5, 0.6]))
        assert not is_valid_histogram(np.array([1.2, -0.2]))

    def test_normalize_positive(self):
        raw = np.array([2.0, 2.0, 4.0])
        assert np.allclose(normalize_histogram(raw), [0.25, 0.25, 0.5])

    def test_normalize_clips_negatives(self):
        out = normalize_histogram(np.array([-1.0, 1.0, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 0.5])

    def test_normalize_zero_becomes_uniform(self):
        out = normalize_histogram(np.zeros(4))
        assert np.allclose(out, 0.25)

    def test_normalize_batched(self, rng):
        raw = rng.uniform(-0.5, 1.0, size=(5, 6, 3))
        out = normalize_histogram(raw)
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()


class TestRebinHistogram:
    def test_coarsening_exact(self):
        from repro.histograms.histogram import rebin_histogram
        old = HistogramSpec(edges=(0.0, 1.0, 2.0, 3.0, 4.0))
        new = HistogramSpec(edges=(0.0, 2.0, 4.0))
        hist = np.array([0.1, 0.2, 0.3, 0.4])
        out = rebin_histogram(hist, old, new)
        assert np.allclose(out, [0.3, 0.7])

    def test_mass_preserved_on_refinement(self):
        from repro.histograms.histogram import rebin_histogram
        old = HistogramSpec(edges=(0.0, 2.0, 4.0))
        new = HistogramSpec(edges=(0.0, 1.0, 2.0, 3.0, 4.0))
        out = rebin_histogram(np.array([0.6, 0.4]), old, new)
        assert out.sum() == pytest.approx(1.0)
        # Uniform-within-bucket assumption splits mass evenly.
        assert np.allclose(out, [0.3, 0.3, 0.2, 0.2])

    def test_open_tail_mapped(self):
        from repro.histograms.histogram import rebin_histogram
        old = HistogramSpec.paper_default()
        new = HistogramSpec(edges=(0.0, 9.0, np.inf))
        hist = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0])  # 18+ m/s
        out = rebin_histogram(hist, old, new)
        assert out[1] == pytest.approx(1.0)

    def test_batched(self, rng):
        from repro.histograms.histogram import rebin_histogram
        old = HistogramSpec.paper_default()
        new = HistogramSpec(edges=(0.0, 6.0, 12.0, np.inf))
        hists = rng.dirichlet(np.ones(7), size=(4, 5))
        out = rebin_histogram(hists, old, new)
        assert out.shape == (4, 5, 3)
        assert np.allclose(out.sum(-1), 1.0)

    def test_bucket_count_checked(self):
        from repro.histograms.histogram import rebin_histogram
        with pytest.raises(ValueError):
            rebin_histogram(np.ones(5) / 5, HistogramSpec.paper_default(),
                            HistogramSpec(edges=(0.0, 1.0)))
