"""Recovery stage: factor tensors → full OD stochastic speed tensors.

Paper §IV-D: for each future interval, the predicted factor tensors
``R̂ ∈ R^{N×β×K}`` and ``Ĉ ∈ R^{β×N'×K}`` are multiplied per speed bucket
and every OD cell's K raw scores are normalized with a softmax, yielding a
*full* tensor whose every cell is a valid histogram.
"""

from __future__ import annotations

from ..autodiff import ops
from ..autodiff.tensor import Tensor


def recover(r_factors: Tensor, c_factors: Tensor) -> Tensor:
    """Recover full OD tensors from factor tensors.

    Parameters
    ----------
    r_factors:
        ``(..., N, beta, K)`` origin-side factors.
    c_factors:
        ``(..., beta, N', K)`` destination-side factors.

    Returns
    -------
    ``(..., N, N', K)`` tensor; softmax over the bucket axis guarantees
    each cell is a probability histogram.
    """
    if r_factors.shape[-1] != c_factors.shape[-1]:
        raise ValueError(
            f"bucket axes differ: {r_factors.shape[-1]} vs "
            f"{c_factors.shape[-1]}")
    if r_factors.shape[-2] != c_factors.shape[-3]:
        raise ValueError(
            f"latent ranks differ: R has {r_factors.shape[-2]}, C has "
            f"{c_factors.shape[-3]}")
    # Move buckets in front of the matmul axes: (..., K, N, beta) @
    # (..., K, beta, N') -> (..., K, N, N').
    ndim_r = r_factors.ndim
    r_bucket_first = r_factors.transpose(
        list(range(ndim_r - 3)) + [ndim_r - 1, ndim_r - 3, ndim_r - 2])
    ndim_c = c_factors.ndim
    c_bucket_first = c_factors.transpose(
        list(range(ndim_c - 3)) + [ndim_c - 1, ndim_c - 3, ndim_c - 2])
    raw = r_bucket_first.matmul(c_bucket_first)
    ndim = raw.ndim
    scores = raw.transpose(
        list(range(ndim - 3)) + [ndim - 2, ndim - 1, ndim - 3])
    return ops.softmax(scores, axis=-1)
