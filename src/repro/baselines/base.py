"""Common interface for all forecasting methods.

Every method — the two frameworks, the deep baselines, and the classical
baselines — exposes the same two-call contract so the experiment harness
can sweep them uniformly: :meth:`fit` on the training/validation windows,
then :meth:`predict` full OD tensors for arbitrary window indices.
"""

from __future__ import annotations

import numpy as np

from ..histograms.windows import Split, WindowDataset


class Forecaster:
    """Abstract stochastic OD matrix forecaster."""

    #: short identifier used in result tables ("nh", "bf", "af", ...)
    name: str = "base"

    def fit(self, dataset: WindowDataset, split: Split,
            horizon: int) -> None:
        """Learn from the training (and validation) windows."""
        raise NotImplementedError

    def predict(self, dataset: WindowDataset, indices: np.ndarray,
                horizon: int) -> np.ndarray:
        """Forecast ``(len(indices), horizon, N, N', K)`` full tensors.

        Every cell of the output must be a valid probability histogram.
        """
        raise NotImplementedError


def training_interval_range(dataset: WindowDataset, split: Split) -> int:
    """Last interval index (exclusive) visible during training.

    Classical baselines that aggregate over "the training data" must not
    peek past the final training window's targets.
    """
    last_window = int(np.max(split.train))
    return last_window + dataset.s + dataset.h
