"""Tests for the Basic Framework."""

import numpy as np
import pytest

from repro.autodiff import Adam
from repro.core import BasicFramework, bf_loss


@pytest.fixture
def model(rng):
    return BasicFramework(n_origins=5, n_destinations=6, n_buckets=3,
                          rng=rng, rank=2, encoder_dim=8, hidden_dim=12)


class TestBasicFramework:
    def test_forward_shapes(self, model, rng):
        history = rng.uniform(size=(4, 3, 5, 6, 3))
        pred, r, c = model(history, horizon=2)
        assert pred.shape == (4, 2, 5, 6, 3)
        assert r.shape == (4, 2, 5, 2, 3)
        assert c.shape == (4, 2, 2, 6, 3)

    def test_predictions_are_histograms(self, model, rng):
        pred, _, _ = model(rng.uniform(size=(2, 3, 5, 6, 3)), horizon=3)
        data = pred.numpy()
        assert np.allclose(data.sum(axis=-1), 1.0)
        assert (data > 0).all()

    def test_rejects_bad_rank_arguments(self, rng):
        with pytest.raises(ValueError):
            BasicFramework(5, 6, 3, rng, rank=0)

    def test_rejects_wrong_input_ndim(self, model, rng):
        with pytest.raises(ValueError):
            model(rng.uniform(size=(3, 5, 6, 3)), horizon=1)

    def test_all_parameters_get_gradients(self, model, rng):
        history = rng.uniform(size=(2, 3, 5, 6, 3))
        truth = rng.uniform(size=(2, 2, 5, 6, 3))
        mask = np.ones((2, 2, 5, 6), dtype=bool)
        pred, r, c = model(history, horizon=2)
        bf_loss(pred, truth, mask, r, c, 1e-3, 1e-3).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_eval_mode_deterministic(self, model, rng):
        history = rng.uniform(size=(2, 3, 5, 6, 3))
        model.eval()
        a = model(history, horizon=1)[0].numpy()
        b = model(history, horizon=1)[0].numpy()
        assert np.allclose(a, b)

    def test_dropout_active_in_train_mode(self, rng):
        model = BasicFramework(5, 6, 3, rng, rank=2, encoder_dim=8,
                               hidden_dim=12, dropout=0.6)
        history = rng.uniform(size=(2, 3, 5, 6, 3))
        model.train()
        a = model(history, horizon=1)[0].numpy()
        b = model(history, horizon=1)[0].numpy()
        assert not np.allclose(a, b)

    def test_learns_stationary_pattern(self, rng):
        """BF should fit a fixed low-rank OD pattern quickly."""
        n, k = 4, 3
        model = BasicFramework(n, n, k, rng, rank=2, encoder_dim=8,
                               hidden_dim=12, dropout=0.0)
        # Fixed target: a smooth histogram pattern per cell.
        base = rng.uniform(0.2, 1.0, size=(n, n, k))
        base /= base.sum(-1, keepdims=True)
        history = np.broadcast_to(base, (8, 3, n, n, k)).copy()
        truth = np.broadcast_to(base, (8, 1, n, n, k)).copy()
        mask = np.ones((8, 1, n, n), dtype=bool)
        opt = Adam(model.parameters(), lr=3e-3)
        first = None
        for _ in range(60):
            pred, r, c = model(history, horizon=1)
            loss = bf_loss(pred, truth, mask, r, c, 0, 0)
            if first is None:
                first = loss.item()
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5
