"""Integration tests: full pipeline, trips → tensors → train → evaluate."""

import numpy as np
import pytest

from repro import prepare, run_comparison
from repro.experiments import MethodBudget, make_af, make_bf, make_fc, make_nh
from repro.histograms import build_od_tensors
from repro.metrics import evaluate_forecasts
from repro.trips import GpsSimulator, extract_trips, toy_dataset

BUDGET = MethodBudget(epochs=3, batch_size=8, max_train_batches=8,
                      max_val_batches=2, patience=3)


class TestEndToEnd:
    def test_trips_to_forecast_pipeline(self, dataset):
        """The full path: raw trips → tensors → windows → BF forecast."""
        data = prepare(dataset, s=3, h=2)
        forecaster = make_bf(data, BUDGET)
        forecaster.fit(data.windows, data.split, horizon=2)
        test = data.split.test[:8]
        pred = forecaster.predict(data.windows, test, horizon=2)
        _, truth, masks = data.windows.gather(test)
        result = evaluate_forecasts(truth, pred, masks)
        assert np.isfinite(result.overall("emd"))
        assert np.allclose(pred.sum(-1), 1.0)

    def test_af_beats_untrained_af(self, dataset):
        """Training must actually improve AF over its initialization."""
        data = prepare(dataset, s=3, h=1)
        test = data.split.test[:10]
        _, truth, masks = data.windows.gather(test)

        fresh = make_af(data, MethodBudget(epochs=0, batch_size=8))
        # epochs=0: fit() restores the initial weights without training
        fresh.fit(data.windows, data.split, horizon=1)
        fresh_score = evaluate_forecasts(
            truth, fresh.predict(data.windows, test, 1), masks)

        trained = make_af(data, MethodBudget(epochs=4, batch_size=8,
                                             max_train_batches=10))
        trained.fit(data.windows, data.split, horizon=1)
        trained_score = evaluate_forecasts(
            truth, trained.predict(data.windows, test, 1), masks)

        assert trained_score.overall("emd") < fresh_score.overall("emd")

    def test_deep_methods_beat_uniform_guess(self, dataset):
        """Any trained model must beat the uniform-histogram strawman."""
        data = prepare(dataset, s=3, h=1)
        test = data.split.test[:12]
        _, truth, masks = data.windows.gather(test)
        k = truth.shape[-1]
        uniform = np.full_like(truth, 1.0 / k)
        uniform_score = evaluate_forecasts(truth, uniform, masks)

        forecaster = make_bf(data, BUDGET)
        forecaster.fit(data.windows, data.split, horizon=1)
        pred = forecaster.predict(data.windows, test, 1)
        score = evaluate_forecasts(truth, pred, masks)
        assert score.overall("emd") < uniform_score.overall("emd")

    def test_gps_ingestion_path(self, dataset):
        """Chengdu-style ingestion: trips → GPS records → extracted trips
        → tensors, and the extracted tensors resemble the direct ones."""
        subset = dataset.trips[np.arange(0, len(dataset.trips), 10)]
        records = GpsSimulator(n_taxis=100, seed=0).simulate(subset)
        recovered = extract_trips(records)
        assert len(recovered) > 0.7 * len(subset)
        seq = build_od_tensors(recovered, dataset.city,
                               n_intervals=dataset.field.n_intervals)
        direct = build_od_tensors(subset, dataset.city,
                                  n_intervals=dataset.field.n_intervals)
        # Coverage from the GPS path should be close to the direct path.
        assert seq.mask.sum() > 0.6 * direct.mask.sum()

    def test_comparison_smoke_all_families(self, dataset):
        data = prepare(dataset, s=3, h=2)
        roster = {"nh": make_nh,
                  "fc": lambda d: make_fc(d, BUDGET),
                  "bf": lambda d: make_bf(d, BUDGET)}
        result = run_comparison(data, roster, max_test_windows=8)
        assert set(result.methods) == set(roster)
        for method in result.methods.values():
            for metric in ("kl", "js", "emd"):
                values = method.evaluation.per_step[metric]
                assert np.isfinite(values).all()

    def test_reproducibility_same_seed(self, dataset):
        """Same budget seed → identical predictions."""
        data = prepare(dataset, s=3, h=1)
        test = data.split.test[:4]
        preds = []
        for _ in range(2):
            f = make_bf(data, MethodBudget(epochs=1, batch_size=8,
                                           max_train_batches=3, seed=7))
            f.fit(data.windows, data.split, horizon=1)
            preds.append(f.predict(data.windows, test, 1))
        assert np.allclose(preds[0], preds[1])
