"""Model configurations, including the paper's Table I settings.

Table I of the paper lists, per dataset, the layer configuration and the
total weight count of the three deep models (FC baseline, BF, AF), the
headline being that AF — the most complex model — has the *fewest*
weights.  :func:`table1_configs` builds all three models at the paper's
sizes so ``benchmarks/test_table1_configs.py`` can regenerate the
comparison; the ``practical_*`` constructors are the slightly larger
settings the synthetic-data experiments default to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..contracts import (ContractPolicy, contract_policy,
                         get_contract_policy, set_contract_policy)
from .af import AdvancedFramework
from .bf import BasicFramework
from .spatial import GCNNBlock
from .trainer import ENGINE_MODES

__all__ = [
    "PaperHyperParameters", "PracticalHyperParameters",
    "paper_bf", "paper_af", "practical_bf", "practical_af",
    # Contract policy selection lives with the other model/run
    # configuration knobs; the implementation is repro.contracts.
    "ContractPolicy", "contract_policy", "get_contract_policy",
    "set_contract_policy",
    # Execution-engine selection (TrainConfig.engine / CLI --engine);
    # the implementation is repro.autodiff.replay.
    "ENGINE_MODES",
]


@dataclass(frozen=True)
class PaperHyperParameters:
    """Table I hyper-parameters shared by both datasets."""

    rank: int = 5                # factorization rank r
    n_buckets: int = 7           # histogram buckets K
    encoder_dim: int = 2         # FC bottleneck before the GRU
    gru_units: int = 3           # GRU state size
    gcnn_blocks: Tuple[GCNNBlock, ...] = (
        GCNNBlock(filters=32, order=8, pool_levels=2),
        GCNNBlock(filters=32, order=4, pool_levels=2),
    )
    cnrnn_hidden: int = 32       # graph filters per CNRNN gate
    cnrnn_order: int = 4
    dropout: float = 0.2
    learning_rate: float = 1e-3
    decay_factor: float = 0.8
    decay_every: int = 5


def paper_bf(n_regions: int, seed: int = 0,
             hp: PaperHyperParameters = PaperHyperParameters()
             ) -> BasicFramework:
    """BF at the paper's Table I size for a square OD matrix."""
    rng = np.random.default_rng(seed)
    return BasicFramework(n_regions, n_regions, hp.n_buckets, rng,
                          rank=hp.rank, encoder_dim=hp.encoder_dim,
                          hidden_dim=hp.gru_units, dropout=hp.dropout)


def paper_af(origin_weights: np.ndarray, dest_weights: np.ndarray,
             seed: int = 0,
             hp: PaperHyperParameters = PaperHyperParameters()
             ) -> AdvancedFramework:
    """AF at the paper's Table I size."""
    rng = np.random.default_rng(seed)
    return AdvancedFramework(origin_weights, dest_weights, hp.n_buckets,
                             rng, rank=hp.rank, blocks=hp.gcnn_blocks,
                             rnn_hidden=hp.cnrnn_hidden,
                             rnn_order=hp.cnrnn_order, dropout=hp.dropout)


# ----------------------------------------------------------------------
# Practical settings for the synthetic-data experiments: modestly larger
# bottlenecks train more reliably on short synthetic histories while
# preserving the architecture (and the FC > BF > AF weight ordering is
# still reported from the Table I sizes).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PracticalHyperParameters:
    rank: int = 5
    encoder_dim: int = 24
    gru_units: int = 48
    gcnn_blocks: Tuple[GCNNBlock, ...] = (
        GCNNBlock(filters=16, order=3, pool_levels=1),
        GCNNBlock(filters=12, order=3, pool_levels=1),
    )
    cnrnn_hidden: int = 16
    cnrnn_order: int = 2
    dropout: float = 0.2


def practical_bf(n_origins: int, n_destinations: int, n_buckets: int,
                 seed: int = 0,
                 hp: PracticalHyperParameters = PracticalHyperParameters()
                 ) -> BasicFramework:
    rng = np.random.default_rng(seed)
    return BasicFramework(n_origins, n_destinations, n_buckets, rng,
                          rank=hp.rank, encoder_dim=hp.encoder_dim,
                          hidden_dim=hp.gru_units, dropout=hp.dropout)


def practical_af(origin_weights: np.ndarray, dest_weights: np.ndarray,
                 n_buckets: int, seed: int = 0,
                 hp: PracticalHyperParameters = PracticalHyperParameters()
                 ) -> AdvancedFramework:
    rng = np.random.default_rng(seed)
    return AdvancedFramework(origin_weights, dest_weights, n_buckets, rng,
                             rank=hp.rank, blocks=hp.gcnn_blocks,
                             rnn_hidden=hp.cnrnn_hidden,
                             rnn_order=hp.cnrnn_order, dropout=hp.dropout)
