"""Tests for the Embedding layer."""

import numpy as np
import pytest

from repro.autodiff import Adam, Embedding, Tensor


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(10, 4, rng)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_matches_weight_rows(self, rng):
        table = Embedding(6, 3, rng)
        out = table(np.array([2, 5]))
        assert np.allclose(out.numpy()[0], table.weight.data[2])
        assert np.allclose(out.numpy()[1], table.weight.data[5])

    def test_repeated_ids_accumulate_grads(self, rng):
        table = Embedding(4, 2, rng)
        out = table(np.array([1, 1, 1]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], 3.0)
        assert np.allclose(table.weight.grad[0], 0.0)

    def test_out_of_range_rejected(self, rng):
        table = Embedding(4, 2, rng)
        with pytest.raises(IndexError):
            table(np.array([4]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_float_ids_rejected(self, rng):
        table = Embedding(4, 2, rng)
        with pytest.raises(TypeError):
            table(np.array([1.0]))

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            Embedding(0, 4, rng)

    def test_trains(self, rng):
        """Embeddings should separate classes under a simple objective."""
        table = Embedding(2, 2, rng)
        opt = Adam(table.parameters(), lr=0.05)
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        for _ in range(100):
            out = table(np.array([0, 1]))
            loss = ((out - Tensor(targets)) ** 2).sum()
            table.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(table.weight.data, targets, atol=0.05)
